"""Codec measurement utilities.

These helpers time real codecs on real data.  They have two consumers:

* ``benchmarks/bench_codecs.py`` — the per-codec micro-benchmark.
* ``repro.sim.calibration`` — sanity checks that the simulator's codec
  model (speed/ratio per level and compressibility class) stays within
  an order of magnitude of what the actual Python codecs achieve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from .base import Codec

#: Floor applied to measured durations when deriving rates.  A timed
#: section faster than the clock can resolve reads as 0 s, and dividing
#: by it yields ``float("inf")`` — which ``json`` happily serialises as
#: the *invalid* token ``Infinity``.  Clamping to the clock's own
#: resolution keeps the rate a finite "at least this fast" bound.
CLOCK_RESOLUTION_SECONDS = max(
    time.get_clock_info("perf_counter").resolution, 1e-9
)


@dataclass(frozen=True)
class CodecMeasurement:
    """One codec measured on one payload."""

    codec_name: str
    payload_bytes: int
    compress_seconds: float
    decompress_seconds: float
    compressed_bytes: int
    #: Did every timed repeat produce output of the same size?  True
    #: for all deterministic codecs; a False here means the ratio below
    #: is not a stable property of (codec, payload).
    ratio_stable: bool = True

    @property
    def ratio(self) -> float:
        """Compressed/original size (smaller is better; 1.0 incompressible)."""
        if self.payload_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.payload_bytes

    @property
    def compress_mb_per_s(self) -> float:
        seconds = max(self.compress_seconds, CLOCK_RESOLUTION_SECONDS)
        return self.payload_bytes / 1e6 / seconds

    @property
    def decompress_mb_per_s(self) -> float:
        seconds = max(self.decompress_seconds, CLOCK_RESOLUTION_SECONDS)
        return self.payload_bytes / 1e6 / seconds


def measure_codec(
    codec: Codec,
    payload: bytes,
    *,
    repeats: int = 3,
    clock: Callable[[], float] = time.perf_counter,
) -> CodecMeasurement:
    """Measure best-of-``repeats`` compress/decompress times on ``payload``."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    compressed = codec.compress(payload)
    best_c = float("inf")
    best_d = float("inf")
    ratio_stable = True
    for _ in range(repeats):
        t0 = clock()
        out = codec.compress(payload)
        best_c = min(best_c, clock() - t0)
        # Best-of-N ratio stability: only the length is compared, so
        # the check costs nothing beyond the compression already done.
        if len(out) != len(compressed):
            ratio_stable = False
        t0 = clock()
        codec.decompress(compressed)
        best_d = min(best_d, clock() - t0)
    return CodecMeasurement(
        codec_name=codec.name,
        payload_bytes=len(payload),
        compress_seconds=best_c,
        decompress_seconds=best_d,
        compressed_bytes=len(compressed),
        ratio_stable=ratio_stable,
    )


def measure_many(
    codecs: Sequence[Codec],
    payload: bytes,
    *,
    repeats: int = 3,
) -> list[CodecMeasurement]:
    """Measure several codecs on the same payload."""
    return [measure_codec(c, payload, repeats=repeats) for c in codecs]
