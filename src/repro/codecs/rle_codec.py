"""A dependency-free run-length codec written in pure Python.

This codec exists for three reasons:

1. It gives the test suite a codec whose behaviour is fully transparent
   (no C library involved), useful for property tests of the framing
   layer.
2. It is extremely fast on the HIGH-compressibility class (long runs,
   like the paper's ``ptt5`` fax bitmap) and near-useless on random
   data — a caricature of the LIGHT/QuickLZ trade-off that makes
   crossover behaviour easy to provoke in small tests.
3. It demonstrates that the level table is genuinely pluggable.

Wire format: a sequence of chunks.  A control byte ``c`` introduces each
chunk:

* ``c < 0x80`` — a literal chunk: the next ``c + 1`` bytes are copied
  verbatim (1..128 literals).
* ``c >= 0x80`` — a run chunk: the next single byte is repeated
  ``(c - 0x80) + MIN_RUN`` times (``MIN_RUN``..``MIN_RUN + 127``).

Runs shorter than ``MIN_RUN`` are not worth a control byte and are
emitted as literals.
"""

from __future__ import annotations

from .base import Codec, CodecInfo
from .errors import CorruptBlockError

MIN_RUN = 4
MAX_RUN = MIN_RUN + 127
MAX_LITERAL = 128


def rle_encode(data: bytes) -> bytes:
    """Encode ``data`` with the chunked RLE format described above."""
    out = bytearray()
    literals = bytearray()
    n = len(data)
    i = 0

    def flush_literals() -> None:
        # Emit pending literals in <=128-byte chunks.
        pos = 0
        while pos < len(literals):
            chunk = literals[pos : pos + MAX_LITERAL]
            out.append(len(chunk) - 1)
            out.extend(chunk)
            pos += len(chunk)
        literals.clear()

    while i < n:
        byte = data[i]
        run = 1
        while i + run < n and run < MAX_RUN and data[i + run] == byte:
            run += 1
        if run >= MIN_RUN:
            flush_literals()
            out.append(0x80 + (run - MIN_RUN))
            out.append(byte)
        else:
            literals.extend(data[i : i + run])
        i += run
    flush_literals()
    return bytes(out)


def rle_decode(data: bytes) -> bytes:
    """Invert :func:`rle_encode`."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        control = data[i]
        i += 1
        if control < 0x80:
            length = control + 1
            if i + length > n:
                raise CorruptBlockError("RLE literal chunk truncated")
            out.extend(data[i : i + length])
            i += length
        else:
            if i >= n:
                raise CorruptBlockError("RLE run chunk truncated")
            out.extend(bytes([data[i]]) * ((control - 0x80) + MIN_RUN))
            i += 1
    return bytes(out)


class RleCodec(Codec):
    """Pure-Python run-length codec (see module docstring)."""

    info = CodecInfo(codec_id=48, name="rle", description="pure-Python run-length encoding")

    def compress(self, data: bytes) -> bytes:
        return rle_encode(data)

    def decompress(self, data: bytes) -> bytes:
        return rle_decode(data)
