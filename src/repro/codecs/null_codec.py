"""The identity codec — compression level 0 ("NO") in the paper."""

from __future__ import annotations

from .base import Codec, CodecInfo


class NullCodec(Codec):
    """Pass bytes through unchanged.

    Represents the paper's compression level 0 (no compression).  Kept
    as a real codec so the block framing and the decision algorithm can
    treat all levels uniformly.
    """

    info = CodecInfo(codec_id=0, name="null", description="identity / no compression")

    def compress(self, data: bytes) -> bytes:
        # Identity without a defensive copy: the framing layer copies
        # the payload into the frame buffer exactly once, so returning
        # the input (possibly a memoryview) keeps level 0 zero-copy.
        # Callers must treat the result as borrowed until framed.
        return data

    def decompress(self, data: bytes) -> bytes:
        # bytes(x) is a no-op for bytes input; it materialises real
        # bytes when the reader hands us its reusable buffer or a view.
        return bytes(data)
