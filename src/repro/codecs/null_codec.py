"""The identity codec — compression level 0 ("NO") in the paper."""

from __future__ import annotations

from .base import Codec, CodecInfo


class NullCodec(Codec):
    """Pass bytes through unchanged.

    Represents the paper's compression level 0 (no compression).  Kept
    as a real codec so the block framing and the decision algorithm can
    treat all levels uniformly.
    """

    info = CodecInfo(codec_id=0, name="null", description="identity / no compression")

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, data: bytes) -> bytes:
        return bytes(data)
