"""Codec interface.

A :class:`Codec` turns a byte payload into a (hopefully smaller) byte
payload and back.  Codecs are the lowest layer of the adaptive
compression stack; everything above them — block framing, compression
levels, the decision algorithm — treats them as opaque, *self-contained*
transformations: every compressed payload must carry all state needed
for decompression (no shared dictionaries across blocks), mirroring the
paper's requirement that each 128 KB Nephele buffer be independently
decompressible (Section III-B).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class CodecInfo:
    """Static description of a codec.

    Attributes
    ----------
    codec_id:
        Stable one-byte identifier written into block headers.  Must be
        unique across the registry and never reused with different
        semantics.
    name:
        Human-readable name (``"zlib-1"``, ``"lzma"``, ...).
    description:
        One-line description of the algorithm and its trade-off position.
    """

    codec_id: int
    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.codec_id <= 255:
            raise ValueError(f"codec_id must fit in one byte, got {self.codec_id}")


class Codec(abc.ABC):
    """Abstract self-contained byte-payload compressor.

    Implementations must be stateless across calls (or at least
    re-entrant): two threads may call :meth:`compress` concurrently.
    """

    #: Filled in by subclasses.
    info: CodecInfo

    @abc.abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data`` into a self-contained payload."""

    @abc.abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`.

        Raises
        ------
        repro.codecs.errors.CorruptBlockError
            If the payload is not a valid output of :meth:`compress`.
        """

    @property
    def codec_id(self) -> int:
        return self.info.codec_id

    @property
    def name(self) -> str:
        return self.info.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} id={self.codec_id} name={self.name!r}>"
