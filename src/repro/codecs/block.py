"""Self-contained block framing.

Nephele "internally buffers data that is written to its file or network
channel in memory blocks of at most 128 KB size ... Each of these blocks
is passed independently to the [codec].  This means each block contains
all the information to be decompressed by the receiver, including meta
information about compression algorithm" (Section III-B).

Frame layout (little-endian)::

    offset  size  field
    0       2     magic  b"AB"
    2       1     format version (1)
    3       1     codec id
    4       1     flags
    5       3     reserved (zero)
    8       4     uncompressed length
    12      4     compressed payload length
    16      4     CRC32 of compressed payload
    20      n     payload

The CRC covers the payload as stored, so corruption is detected before
the codec runs.  ``FLAG_STORED_FALLBACK`` records that compression was
attempted but produced output not smaller than the input, in which case
the payload is stored raw under the null codec id.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator, Optional

from ..telemetry.events import BUS, BlockCompressed
from .base import Codec
from .errors import CorruptBlockError, TruncatedStreamError
from .registry import DEFAULT_REGISTRY, CodecRegistry

MAGIC = b"AB"
FORMAT_VERSION = 1
HEADER = struct.Struct("<2sBBB3xIII")
HEADER_SIZE = HEADER.size  # 20 bytes

#: Paper's default block payload size.
DEFAULT_BLOCK_SIZE = 128 * 1024

FLAG_STORED_FALLBACK = 0x01


@dataclass(frozen=True)
class BlockHeader:
    """Decoded block frame header."""

    codec_id: int
    flags: int
    uncompressed_len: int
    compressed_len: int
    crc32: int

    @property
    def stored_fallback(self) -> bool:
        return bool(self.flags & FLAG_STORED_FALLBACK)


@dataclass(frozen=True)
class EncodedBlock:
    """A fully framed block plus its bookkeeping numbers."""

    frame: bytes
    header: BlockHeader

    @property
    def frame_len(self) -> int:
        return len(self.frame)

    @property
    def ratio(self) -> float:
        """Compressed/uncompressed size ratio (1.0 == incompressible)."""
        if self.header.uncompressed_len == 0:
            return 1.0
        return self.header.compressed_len / self.header.uncompressed_len


def encode_block(data: bytes, codec: Codec, *, allow_stored_fallback: bool = True) -> EncodedBlock:
    """Compress ``data`` with ``codec`` and wrap it in a frame.

    If the codec expands the data and ``allow_stored_fallback`` is set,
    the block is stored raw (codec id 0) with ``FLAG_STORED_FALLBACK``
    so that incompressible data never costs more than the 20-byte
    header.
    """
    if BUS.active:
        t0 = BUS.now()
        payload = codec.compress(data)
        BUS.publish(
            BlockCompressed(
                ts=BUS.now(),
                codec=codec.name,
                direction="compress",
                uncompressed_bytes=len(data),
                compressed_bytes=len(payload),
                seconds=BUS.now() - t0,
            )
        )
    else:
        payload = codec.compress(data)
    codec_id = codec.codec_id
    flags = 0
    if allow_stored_fallback and codec_id != 0 and len(payload) >= len(data):
        payload = bytes(data)
        codec_id = 0
        flags |= FLAG_STORED_FALLBACK
    header = BlockHeader(
        codec_id=codec_id,
        flags=flags,
        uncompressed_len=len(data),
        compressed_len=len(payload),
        crc32=zlib.crc32(payload) & 0xFFFFFFFF,
    )
    frame = (
        HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            header.codec_id,
            header.flags,
            header.uncompressed_len,
            header.compressed_len,
            header.crc32,
        )
        + payload
    )
    return EncodedBlock(frame=frame, header=header)


def decode_header(raw: bytes) -> BlockHeader:
    """Parse and validate a 20-byte frame header."""
    if len(raw) < HEADER_SIZE:
        raise TruncatedStreamError(
            f"need {HEADER_SIZE} header bytes, got {len(raw)}"
        )
    magic, version, codec_id, flags, ulen, clen, crc = HEADER.unpack(raw[:HEADER_SIZE])
    if magic != MAGIC:
        raise CorruptBlockError(f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CorruptBlockError(f"unsupported format version {version}")
    return BlockHeader(
        codec_id=codec_id,
        flags=flags,
        uncompressed_len=ulen,
        compressed_len=clen,
        crc32=crc,
    )


def decode_block(frame: bytes, registry: CodecRegistry = DEFAULT_REGISTRY) -> bytes:
    """Decode one complete frame back to the original bytes."""
    header = decode_header(frame)
    payload = frame[HEADER_SIZE : HEADER_SIZE + header.compressed_len]
    if len(payload) != header.compressed_len:
        raise TruncatedStreamError(
            f"frame payload truncated: expected {header.compressed_len} bytes, "
            f"got {len(payload)}"
        )
    if (zlib.crc32(payload) & 0xFFFFFFFF) != header.crc32:
        raise CorruptBlockError("payload CRC mismatch")
    codec = registry.get(header.codec_id)
    if BUS.active:
        t0 = BUS.now()
        data = codec.decompress(payload)
        BUS.publish(
            BlockCompressed(
                ts=BUS.now(),
                codec=codec.name,
                direction="decompress",
                uncompressed_bytes=len(data),
                compressed_bytes=len(payload),
                seconds=BUS.now() - t0,
            )
        )
    else:
        data = codec.decompress(payload)
    if len(data) != header.uncompressed_len:
        raise CorruptBlockError(
            f"decompressed length {len(data)} != header claim "
            f"{header.uncompressed_len}"
        )
    return data


class BlockWriter:
    """Write framed blocks to a binary file-like object.

    The codec may change between blocks — this is exactly how the
    adaptive scheme switches compression levels mid-stream.
    """

    def __init__(self, sink: BinaryIO, *, allow_stored_fallback: bool = True) -> None:
        self._sink = sink
        self._allow_stored_fallback = allow_stored_fallback
        self.blocks_written = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def write_block(self, data: bytes, codec: Codec) -> EncodedBlock:
        block = encode_block(
            data, codec, allow_stored_fallback=self._allow_stored_fallback
        )
        self._sink.write(block.frame)
        self.blocks_written += 1
        self.bytes_in += block.header.uncompressed_len
        self.bytes_out += block.frame_len
        return block


class BlockReader:
    """Incrementally read framed blocks from a binary file-like object.

    Handles short reads (sockets) by looping until a full frame is
    available; distinguishes clean EOF (between frames) from truncation
    (mid-frame).
    """

    def __init__(self, source: BinaryIO, registry: CodecRegistry = DEFAULT_REGISTRY) -> None:
        self._source = source
        self._registry = registry
        self.blocks_read = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def _read_exact(self, n: int, *, allow_eof: bool) -> Optional[bytes]:
        chunks: list[bytes] = []
        remaining = n
        while remaining > 0:
            chunk = self._source.read(remaining)
            if not chunk:
                if not chunks and allow_eof:
                    return None
                raise TruncatedStreamError(
                    f"stream ended with {remaining} of {n} bytes outstanding"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def read_block(self) -> Optional[bytes]:
        """Return the next decoded block, or ``None`` at clean EOF."""
        raw_header = self._read_exact(HEADER_SIZE, allow_eof=True)
        if raw_header is None:
            return None
        header = decode_header(raw_header)
        payload = self._read_exact(header.compressed_len, allow_eof=False)
        assert payload is not None
        frame = raw_header + payload
        data = decode_block(frame, self._registry)
        self.blocks_read += 1
        self.bytes_in += len(frame)
        self.bytes_out += len(data)
        return data

    def __iter__(self) -> Iterator[bytes]:
        while True:
            block = self.read_block()
            if block is None:
                return
            yield block
