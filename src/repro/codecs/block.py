"""Self-contained block framing.

Nephele "internally buffers data that is written to its file or network
channel in memory blocks of at most 128 KB size ... Each of these blocks
is passed independently to the [codec].  This means each block contains
all the information to be decompressed by the receiver, including meta
information about compression algorithm" (Section III-B).

Frame layout (little-endian)::

    offset  size  field
    0       2     magic  b"AB"
    2       1     format version (1)
    3       1     codec id
    4       1     flags
    5       3     reserved (zero)
    8       4     uncompressed length
    12      4     compressed payload length
    16      4     CRC32 of compressed payload
    20      n     payload

The CRC covers the payload as stored, so corruption is detected before
the codec runs.  ``FLAG_STORED_FALLBACK`` records that compression was
attempted but produced output not smaller than the input, in which case
the payload is stored raw under the null codec id.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator, Optional, Union

from ..telemetry.events import BUS, BlockCompressed
from .base import Codec
from .errors import CorruptBlockError, OversizedBlockError, TruncatedStreamError
from .registry import DEFAULT_REGISTRY, CodecRegistry

MAGIC = b"AB"
FORMAT_VERSION = 1
HEADER = struct.Struct("<2sBBB3xIII")
HEADER_SIZE = HEADER.size  # 20 bytes

#: Paper's default block payload size.
DEFAULT_BLOCK_SIZE = 128 * 1024

FLAG_STORED_FALLBACK = 0x01

#: Sanity ceiling on header length fields: 16x the paper's block size.
#: Nothing the writers produce comes near it (payloads are bounded by
#: the block size plus codec overhead), so any larger claim is treated
#: as corruption before a single byte is allocated for it.
MAX_BLOCK_LEN = 16 * DEFAULT_BLOCK_SIZE

#: Block payloads are accepted as any C-contiguous byte buffer, so the
#: stream layer can hand us zero-copy ``memoryview`` slices of its
#: write buffer instead of materialising a ``bytes`` copy per block.
BlockData = Union[bytes, bytearray, memoryview]


def _nbytes(data: BlockData) -> int:
    """Byte length of a block payload buffer (memoryview-safe)."""
    return data.nbytes if isinstance(data, memoryview) else len(data)


@dataclass(frozen=True)
class BlockHeader:
    """Decoded block frame header."""

    codec_id: int
    flags: int
    uncompressed_len: int
    compressed_len: int
    crc32: int

    @property
    def stored_fallback(self) -> bool:
        return bool(self.flags & FLAG_STORED_FALLBACK)


@dataclass(frozen=True)
class EncodedBlock:
    """A fully framed block plus its bookkeeping numbers.

    ``frame`` is a bytes-like object (a ``bytearray`` on the hot path —
    assembled in a single preallocated buffer, never re-copied into an
    immutable ``bytes``); treat it as read-only.
    """

    frame: Union[bytes, bytearray]
    header: BlockHeader

    @property
    def frame_len(self) -> int:
        return len(self.frame)

    @property
    def ratio(self) -> float:
        """Compressed/uncompressed size ratio (1.0 == incompressible)."""
        if self.header.uncompressed_len == 0:
            return 1.0
        return self.header.compressed_len / self.header.uncompressed_len


def encode_block(
    data: BlockData, codec: Codec, *, allow_stored_fallback: bool = True
) -> EncodedBlock:
    """Compress ``data`` with ``codec`` and wrap it in a frame.

    ``data`` may be ``bytes``, a ``bytearray`` or a C-contiguous
    ``memoryview`` — the stream layer passes zero-copy views of its
    write buffer.  The frame is assembled in one preallocated buffer
    (header packed in place with ``pack_into``, payload copied in
    exactly once); the input is never copied to an intermediate object,
    so a ``memoryview`` input costs a single payload copy total.

    If the codec expands the data and ``allow_stored_fallback`` is set,
    the block is stored raw (codec id 0) with ``FLAG_STORED_FALLBACK``
    so that incompressible data never costs more than the 20-byte
    header.  The stored fallback borrows the input buffer directly — no
    defensive copy is taken.
    """
    data_len = _nbytes(data)
    if BUS.active:
        t0 = BUS.now()
        payload = codec.compress(data)
        BUS.publish(
            BlockCompressed(
                ts=BUS.now(),
                codec=codec.name,
                direction="compress",
                uncompressed_bytes=data_len,
                compressed_bytes=_nbytes(payload),
                seconds=BUS.now() - t0,
            )
        )
    else:
        payload = codec.compress(data)
    codec_id = codec.codec_id
    flags = 0
    if allow_stored_fallback and codec_id != 0 and _nbytes(payload) >= data_len:
        payload = data
        codec_id = 0
        flags |= FLAG_STORED_FALLBACK
    payload_len = _nbytes(payload)
    header = BlockHeader(
        codec_id=codec_id,
        flags=flags,
        uncompressed_len=data_len,
        compressed_len=payload_len,
        crc32=zlib.crc32(payload) & 0xFFFFFFFF,
    )
    frame = bytearray(HEADER_SIZE + payload_len)
    HEADER.pack_into(
        frame,
        0,
        MAGIC,
        FORMAT_VERSION,
        header.codec_id,
        header.flags,
        header.uncompressed_len,
        header.compressed_len,
        header.crc32,
    )
    frame[HEADER_SIZE:] = payload
    return EncodedBlock(frame=frame, header=header)


def decode_header(raw: BlockData, *, max_len: Optional[int] = None) -> BlockHeader:
    """Parse and validate a 20-byte frame header (any byte buffer).

    ``max_len`` bounds both length fields (default
    :data:`MAX_BLOCK_LEN`); a header claiming more raises
    :class:`~repro.codecs.errors.OversizedBlockError` so corrupted
    length bytes can never drive a multi-GB allocation downstream.
    Pass a larger bound explicitly for streams written with an
    unusually large block size.
    """
    if max_len is None:
        max_len = MAX_BLOCK_LEN
    if _nbytes(raw) < HEADER_SIZE:
        raise TruncatedStreamError(
            f"need {HEADER_SIZE} header bytes, got {len(raw)}"
        )
    magic, version, codec_id, flags, ulen, clen, crc = HEADER.unpack(raw[:HEADER_SIZE])
    if magic != MAGIC:
        raise CorruptBlockError(f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CorruptBlockError(f"unsupported format version {version}")
    if ulen > max_len:
        raise OversizedBlockError("uncompressed_len", ulen, max_len)
    if clen > max_len:
        raise OversizedBlockError("compressed_len", clen, max_len)
    return BlockHeader(
        codec_id=codec_id,
        flags=flags,
        uncompressed_len=ulen,
        compressed_len=clen,
        crc32=crc,
    )


def decode_payload(
    header: BlockHeader,
    payload: BlockData,
    registry: CodecRegistry = DEFAULT_REGISTRY,
) -> bytes:
    """CRC-check and decompress one frame's payload.

    The payload may be any byte buffer (``BlockReader`` passes its
    preallocated read buffer directly); it is handed to the codec
    without copying.
    """
    if (zlib.crc32(payload) & 0xFFFFFFFF) != header.crc32:
        raise CorruptBlockError("payload CRC mismatch")
    codec = registry.get(header.codec_id)
    if BUS.active:
        t0 = BUS.now()
        data = codec.decompress(payload)
        BUS.publish(
            BlockCompressed(
                ts=BUS.now(),
                codec=codec.name,
                direction="decompress",
                uncompressed_bytes=len(data),
                compressed_bytes=_nbytes(payload),
                seconds=BUS.now() - t0,
            )
        )
    else:
        data = codec.decompress(payload)
    if len(data) != header.uncompressed_len:
        raise CorruptBlockError(
            f"decompressed length {len(data)} != header claim "
            f"{header.uncompressed_len}"
        )
    return data


def decode_block(frame: BlockData, registry: CodecRegistry = DEFAULT_REGISTRY) -> bytes:
    """Decode one complete frame back to the original bytes."""
    header = decode_header(frame)
    with memoryview(frame) as view:
        payload = view[HEADER_SIZE : HEADER_SIZE + header.compressed_len]
        try:
            if len(payload) != header.compressed_len:
                raise TruncatedStreamError(
                    f"frame payload truncated: expected {header.compressed_len} "
                    f"bytes, got {len(payload)}"
                )
            return decode_payload(header, payload, registry)
        finally:
            payload.release()


class BlockWriter:
    """Write framed blocks to a binary file-like object.

    The codec may change between blocks — this is exactly how the
    adaptive scheme switches compression levels mid-stream.
    """

    def __init__(self, sink: BinaryIO, *, allow_stored_fallback: bool = True) -> None:
        self._sink = sink
        self._allow_stored_fallback = allow_stored_fallback
        self.blocks_written = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def write_block(self, data: BlockData, codec: Codec) -> EncodedBlock:
        block = encode_block(
            data, codec, allow_stored_fallback=self._allow_stored_fallback
        )
        self._sink.write(block.frame)
        self.blocks_written += 1
        self.bytes_in += block.header.uncompressed_len
        self.bytes_out += block.frame_len
        return block

    def flush(self) -> None:
        """No-op: every block is written synchronously.

        Present so the serial writer and the threaded
        :class:`~repro.core.pipeline.ParallelBlockEncoder` share one
        interface (the parallel encoder drains in-flight blocks here).
        """

    def close(self) -> None:
        """No-op counterpart of the parallel encoder's worker shutdown."""

    def abort(self) -> None:
        """No-op counterpart of the parallel encoder's error teardown.

        Error paths call this instead of :meth:`close` so teardown
        never writes to a sink that is already known to be broken.
        """


class BlockReader:
    """Incrementally read framed blocks from a binary file-like object.

    Handles short reads (sockets) by looping until a full frame is
    available; distinguishes clean EOF (between frames) from truncation
    (mid-frame).
    """

    def __init__(
        self,
        source: BinaryIO,
        registry: CodecRegistry = DEFAULT_REGISTRY,
        *,
        max_block_len: Optional[int] = None,
    ) -> None:
        self._source = source
        self._registry = registry
        self._max_block_len = max_block_len
        # Prefer scatter reads straight into our buffer; fall back to
        # read() for minimal sources (e.g. BoundedPipe-like objects).
        self._readinto = getattr(source, "readinto", None)
        self.blocks_read = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def _read_exact(self, n: int, *, allow_eof: bool) -> Optional[bytearray]:
        """Read exactly ``n`` bytes into one preallocated buffer.

        Returns ``None`` only when ``allow_eof`` is set and the stream
        ends *before the first byte* (clean EOF between frames); a
        stream that ends mid-read raises :class:`TruncatedStreamError`.
        """
        buf = bytearray(n)
        pos = 0
        if self._readinto is not None:
            with memoryview(buf) as view:
                while pos < n:
                    got = self._readinto(view[pos:])
                    if not got:
                        break
                    pos += got
        else:
            while pos < n:
                chunk = self._source.read(n - pos)
                if not chunk:
                    break
                buf[pos : pos + len(chunk)] = chunk
                pos += len(chunk)
        if pos < n:
            if pos == 0 and allow_eof:
                return None
            raise TruncatedStreamError(
                f"stream ended with {n - pos} of {n} bytes outstanding"
            )
        return buf

    def read_block(self) -> Optional[bytes]:
        """Return the next decoded block, or ``None`` at clean EOF."""
        raw_header = self._read_exact(HEADER_SIZE, allow_eof=True)
        if raw_header is None:
            return None
        header = decode_header(raw_header, max_len=self._max_block_len)
        payload = self._read_exact(header.compressed_len, allow_eof=False)
        assert payload is not None
        data = decode_payload(header, payload, self._registry)
        self.blocks_read += 1
        self.bytes_in += HEADER_SIZE + header.compressed_len
        self.bytes_out += len(data)
        return data

    def __iter__(self) -> Iterator[bytes]:
        while True:
            block = self.read_block()
            if block is None:
                return
            yield block
