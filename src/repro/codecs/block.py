"""Self-contained block framing.

Nephele "internally buffers data that is written to its file or network
channel in memory blocks of at most 128 KB size ... Each of these blocks
is passed independently to the [codec].  This means each block contains
all the information to be decompressed by the receiver, including meta
information about compression algorithm" (Section III-B).

Frame layout (little-endian)::

    offset  size  field
    0       2     magic  b"AB"
    2       1     format version (1)
    3       1     codec id
    4       1     flags
    5       3     reserved (zero)
    8       4     uncompressed length
    12      4     compressed payload length
    16      4     CRC32 of compressed payload
    20      n     payload

The CRC covers the payload as stored, so corruption is detected before
the codec runs.  ``FLAG_STORED_FALLBACK`` records that compression was
attempted but produced output not smaller than the input, in which case
the payload is stored raw under the null codec id.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator, Optional, Union

from ..telemetry.events import BUS, BlockCompressed
from .base import Codec
from .errors import CorruptBlockError, OversizedBlockError, TruncatedStreamError
from .registry import DEFAULT_REGISTRY, CodecRegistry

MAGIC = b"AB"
FORMAT_VERSION = 1
HEADER = struct.Struct("<2sBBB3xIII")
HEADER_SIZE = HEADER.size  # 20 bytes

#: Paper's default block payload size.
DEFAULT_BLOCK_SIZE = 128 * 1024

FLAG_STORED_FALLBACK = 0x01

#: Sanity ceiling on header length fields: 16x the paper's block size.
#: Nothing the writers produce comes near it (payloads are bounded by
#: the block size plus codec overhead), so any larger claim is treated
#: as corruption before a single byte is allocated for it.
MAX_BLOCK_LEN = 16 * DEFAULT_BLOCK_SIZE

#: Block payloads are accepted as any C-contiguous byte buffer, so the
#: stream layer can hand us zero-copy ``memoryview`` slices of its
#: write buffer instead of materialising a ``bytes`` copy per block.
BlockData = Union[bytes, bytearray, memoryview]


def _nbytes(data: BlockData) -> int:
    """Byte length of a block payload buffer (memoryview-safe)."""
    return data.nbytes if isinstance(data, memoryview) else len(data)


@dataclass(frozen=True)
class BlockHeader:
    """Decoded block frame header."""

    codec_id: int
    flags: int
    uncompressed_len: int
    compressed_len: int
    crc32: int

    @property
    def stored_fallback(self) -> bool:
        return bool(self.flags & FLAG_STORED_FALLBACK)


@dataclass(frozen=True)
class EncodedBlock:
    """A fully framed block plus its bookkeeping numbers.

    ``frame`` is a bytes-like object (a ``bytearray`` on the hot path —
    assembled in a single preallocated buffer, never re-copied into an
    immutable ``bytes`` — or a ``memoryview`` of a pool slab when the
    encoder runs with a :class:`~repro.core.buffers.BufferPool`); treat
    it as read-only.  Pool-backed frames must be :meth:`release`\\ d
    once written; ``release`` is a safe no-op for plain frames.
    """

    frame: Union[bytes, bytearray, memoryview]
    header: BlockHeader
    #: Pool buffer backing ``frame`` (None for plain allocations).
    buf: Optional[object] = None

    @property
    def frame_len(self) -> int:
        return len(self.frame)

    @property
    def ratio(self) -> float:
        """Compressed/uncompressed size ratio (1.0 == incompressible)."""
        if self.header.uncompressed_len == 0:
            return 1.0
        return self.header.compressed_len / self.header.uncompressed_len

    def release(self) -> None:
        """Return a pool-backed frame buffer to its pool.  Idempotent."""
        if self.buf is not None:
            self.buf.release()


@dataclass(frozen=True)
class EncodedParts:
    """A framed block kept as (header bytes, payload) — never assembled.

    The vectored-I/O counterpart of :class:`EncodedBlock`: a sink with
    ``writev`` (e.g. :class:`~repro.io.sockets.VectoredSocketWriter`)
    puts both parts on the wire in one ``sendmsg`` call, so the payload
    is never copied into a contiguous frame at all.  Concatenating
    ``header_bytes + payload`` yields exactly the bytes of the
    corresponding :class:`EncodedBlock.frame`.
    """

    header: BlockHeader
    header_bytes: bytes
    payload: BlockData

    @property
    def frame_len(self) -> int:
        return HEADER_SIZE + self.header.compressed_len

    @property
    def ratio(self) -> float:
        """Compressed/uncompressed size ratio (1.0 == incompressible)."""
        if self.header.uncompressed_len == 0:
            return 1.0
        return self.header.compressed_len / self.header.uncompressed_len

    def release(self) -> None:
        """No-op, mirroring :meth:`EncodedBlock.release`: parts never
        borrow pool buffers, so discard paths can release any encoded
        result without a type check."""


def _compress_payload(
    data: BlockData, codec: Codec, allow_stored_fallback: bool
) -> tuple:
    """Shared compress + stored-fallback step: (header, payload)."""
    data_len = _nbytes(data)
    if BUS.active:
        t0 = BUS.now()
        payload = codec.compress(data)
        BUS.publish(
            BlockCompressed(
                ts=BUS.now(),
                codec=codec.name,
                direction="compress",
                uncompressed_bytes=data_len,
                compressed_bytes=_nbytes(payload),
                seconds=BUS.now() - t0,
            )
        )
    else:
        payload = codec.compress(data)
    codec_id = codec.codec_id
    flags = 0
    if allow_stored_fallback and codec_id != 0 and _nbytes(payload) >= data_len:
        payload = data
        codec_id = 0
        flags |= FLAG_STORED_FALLBACK
    header = BlockHeader(
        codec_id=codec_id,
        flags=flags,
        uncompressed_len=data_len,
        compressed_len=_nbytes(payload),
        crc32=zlib.crc32(payload) & 0xFFFFFFFF,
    )
    return header, payload


def encode_block(
    data: BlockData,
    codec: Codec,
    *,
    allow_stored_fallback: bool = True,
    pool: Optional[object] = None,
) -> EncodedBlock:
    """Compress ``data`` with ``codec`` and wrap it in a frame.

    ``data`` may be ``bytes``, a ``bytearray`` or a C-contiguous
    ``memoryview`` — the stream layer passes zero-copy views of its
    write buffer.  The frame is assembled in one preallocated buffer
    (header packed in place with ``pack_into``, payload copied in
    exactly once); the input is never copied to an intermediate object,
    so a ``memoryview`` input costs a single payload copy total.
    ``pool`` (a :class:`~repro.core.buffers.BufferPool`) reuses frame
    buffers across blocks instead of allocating one per call; the
    caller must then ``release()`` the block after writing it.

    If the codec expands the data and ``allow_stored_fallback`` is set,
    the block is stored raw (codec id 0) with ``FLAG_STORED_FALLBACK``
    so that incompressible data never costs more than the 20-byte
    header.  The stored fallback borrows the input buffer directly — no
    defensive copy is taken.
    """
    header, payload = _compress_payload(data, codec, allow_stored_fallback)
    payload_len = header.compressed_len
    buf = None
    if pool is not None:
        buf = pool.acquire(HEADER_SIZE + payload_len)
        frame = buf.view
    else:
        frame = bytearray(HEADER_SIZE + payload_len)
    HEADER.pack_into(
        frame,
        0,
        MAGIC,
        FORMAT_VERSION,
        header.codec_id,
        header.flags,
        header.uncompressed_len,
        header.compressed_len,
        header.crc32,
    )
    frame[HEADER_SIZE:] = payload
    return EncodedBlock(frame=frame, header=header, buf=buf)


def encode_block_parts(
    data: BlockData, codec: Codec, *, allow_stored_fallback: bool = True
) -> EncodedParts:
    """Compress ``data`` but keep header and payload as separate parts.

    Same compression, fallback and CRC semantics as
    :func:`encode_block`; the only difference is that no contiguous
    frame is assembled, so the payload is **zero-copy** end to end when
    the sink supports vectored writes (``header_bytes`` and the payload
    go out in one ``sendmsg``).  Wire bytes are identical to the
    assembled frame.
    """
    header, payload = _compress_payload(data, codec, allow_stored_fallback)
    header_bytes = HEADER.pack(
        MAGIC,
        FORMAT_VERSION,
        header.codec_id,
        header.flags,
        header.uncompressed_len,
        header.compressed_len,
        header.crc32,
    )
    return EncodedParts(header=header, header_bytes=header_bytes, payload=payload)


def decode_header(raw: BlockData, *, max_len: Optional[int] = None) -> BlockHeader:
    """Parse and validate a 20-byte frame header (any byte buffer).

    ``max_len`` bounds both length fields (default
    :data:`MAX_BLOCK_LEN`); a header claiming more raises
    :class:`~repro.codecs.errors.OversizedBlockError` so corrupted
    length bytes can never drive a multi-GB allocation downstream.
    Pass a larger bound explicitly for streams written with an
    unusually large block size.
    """
    if max_len is None:
        max_len = MAX_BLOCK_LEN
    if _nbytes(raw) < HEADER_SIZE:
        raise TruncatedStreamError(
            f"need {HEADER_SIZE} header bytes, got {len(raw)}"
        )
    magic, version, codec_id, flags, ulen, clen, crc = HEADER.unpack(raw[:HEADER_SIZE])
    if magic != MAGIC:
        raise CorruptBlockError(f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CorruptBlockError(f"unsupported format version {version}")
    if ulen > max_len:
        raise OversizedBlockError("uncompressed_len", ulen, max_len)
    if clen > max_len:
        raise OversizedBlockError("compressed_len", clen, max_len)
    return BlockHeader(
        codec_id=codec_id,
        flags=flags,
        uncompressed_len=ulen,
        compressed_len=clen,
        crc32=crc,
    )


def verify_crc(header: BlockHeader, payload: BlockData) -> bool:
    """Does ``payload`` match the header's CRC32?

    Exposed so frame fetchers (resync scanning, the parallel decode
    pipeline) can validate payload integrity up front and let
    :func:`decode_payload` skip the re-check (``check_crc=False``).
    """
    return (zlib.crc32(payload) & 0xFFFFFFFF) == header.crc32


def decode_payload(
    header: BlockHeader,
    payload: BlockData,
    registry: CodecRegistry = DEFAULT_REGISTRY,
    *,
    check_crc: bool = True,
) -> bytes:
    """CRC-check and decompress one frame's payload.

    The payload may be any byte buffer (``BlockReader`` passes its
    preallocated read buffer directly); it is handed to the codec
    without copying.  ``check_crc=False`` skips the CRC pass for
    callers that already ran :func:`verify_crc` on this payload (the
    parallel decode pipeline's fetcher does, so its workers don't pay
    the checksum twice).

    Codec id 0 is the wire format's identity transform (the NO level
    and the stored fallback both use it), so stored payloads bypass the
    codec dispatch: the payload bytes are materialised **exactly once**
    — and not at all when the caller already holds immutable ``bytes``.
    """
    if check_crc and not verify_crc(header, payload):
        raise CorruptBlockError("payload CRC mismatch")
    if header.codec_id == 0:
        # Identity by wire-format contract: FLAG_STORED_FALLBACK frames
        # are written raw under codec id 0, so no registry lookup and no
        # slice-then-copy — one bytes() materialisation at most.
        data = payload if isinstance(payload, bytes) else bytes(payload)
        if BUS.active:
            BUS.publish(
                BlockCompressed(
                    ts=BUS.now(),
                    codec=registry.get(0).name,
                    direction="decompress",
                    uncompressed_bytes=len(data),
                    compressed_bytes=_nbytes(payload),
                    seconds=0.0,
                )
            )
    elif BUS.active:
        codec = registry.get(header.codec_id)
        t0 = BUS.now()
        data = codec.decompress(payload)
        BUS.publish(
            BlockCompressed(
                ts=BUS.now(),
                codec=codec.name,
                direction="decompress",
                uncompressed_bytes=len(data),
                compressed_bytes=_nbytes(payload),
                seconds=BUS.now() - t0,
            )
        )
    else:
        data = registry.get(header.codec_id).decompress(payload)
    if len(data) != header.uncompressed_len:
        raise CorruptBlockError(
            f"decompressed length {len(data)} != header claim "
            f"{header.uncompressed_len}"
        )
    return data


def decode_block(frame: BlockData, registry: CodecRegistry = DEFAULT_REGISTRY) -> bytes:
    """Decode one complete frame back to the original bytes."""
    header = decode_header(frame)
    with memoryview(frame) as view:
        payload = view[HEADER_SIZE : HEADER_SIZE + header.compressed_len]
        try:
            if len(payload) != header.compressed_len:
                raise TruncatedStreamError(
                    f"frame payload truncated: expected {header.compressed_len} "
                    f"bytes, got {len(payload)}"
                )
            return decode_payload(header, payload, registry)
        finally:
            payload.release()


class BlockWriter:
    """Write framed blocks to a binary file-like object.

    The codec may change between blocks — this is exactly how the
    adaptive scheme switches compression levels mid-stream.  A sink
    exposing ``writev(parts)`` (vectored writes, e.g.
    :class:`~repro.io.sockets.VectoredSocketWriter`) receives each
    frame as separate header/payload parts — same wire bytes, one
    payload copy fewer.
    """

    def __init__(self, sink: BinaryIO, *, allow_stored_fallback: bool = True) -> None:
        self._sink = sink
        self._allow_stored_fallback = allow_stored_fallback
        self._writev = getattr(sink, "writev", None)
        self.blocks_written = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def write_block(
        self, data: BlockData, codec: Codec
    ) -> Union[EncodedBlock, EncodedParts]:
        if self._writev is not None:
            block = encode_block_parts(
                data, codec, allow_stored_fallback=self._allow_stored_fallback
            )
            self._writev((block.header_bytes, block.payload))
        else:
            block = encode_block(
                data, codec, allow_stored_fallback=self._allow_stored_fallback
            )
            self._sink.write(block.frame)
        self.blocks_written += 1
        self.bytes_in += block.header.uncompressed_len
        self.bytes_out += block.frame_len
        return block

    def flush(self) -> None:
        """No-op: every block is written synchronously.

        Present so the serial writer and the threaded
        :class:`~repro.core.pipeline.ParallelBlockEncoder` share one
        interface (the parallel encoder drains in-flight blocks here).
        """

    def close(self) -> None:
        """No-op counterpart of the parallel encoder's worker shutdown."""

    def abort(self) -> None:
        """No-op counterpart of the parallel encoder's error teardown.

        Error paths call this instead of :meth:`close` so teardown
        never writes to a sink that is already known to be broken.
        """


class BlockReader:
    """Incrementally read framed blocks from a binary file-like object.

    Handles short reads (sockets) by looping until a full frame is
    available; distinguishes clean EOF (between frames) from truncation
    (mid-frame).  With a ``pool``
    (:class:`~repro.core.buffers.BufferPool`) the header lands in one
    persistent buffer and each payload in a reused pool slab, so steady
    -state decoding performs **zero per-block allocations** besides the
    decompressed output itself.
    """

    def __init__(
        self,
        source: BinaryIO,
        registry: CodecRegistry = DEFAULT_REGISTRY,
        *,
        max_block_len: Optional[int] = None,
        pool: Optional[object] = None,
    ) -> None:
        self._source = source
        self._registry = registry
        self._max_block_len = max_block_len
        self._pool = pool
        # Prefer scatter reads straight into our buffer; fall back to
        # read() for minimal sources (e.g. BoundedPipe-like objects).
        self._readinto = getattr(source, "readinto", None)
        self._header_buf = bytearray(HEADER_SIZE)
        self._header_view = memoryview(self._header_buf)
        self.blocks_read = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def _readinto_exact(self, view: memoryview, *, allow_eof: bool) -> bool:
        """Fill ``view`` completely from the source.

        Returns ``False`` only when ``allow_eof`` is set and the stream
        ends *before the first byte* (clean EOF between frames); a
        stream that ends mid-read raises :class:`TruncatedStreamError`.
        """
        n = view.nbytes
        pos = 0
        if self._readinto is not None:
            while pos < n:
                got = self._readinto(view[pos:])
                if not got:
                    break
                pos += got
        else:
            while pos < n:
                chunk = self._source.read(n - pos)
                if not chunk:
                    break
                view[pos : pos + len(chunk)] = chunk
                pos += len(chunk)
        if pos < n:
            if pos == 0 and allow_eof:
                return False
            raise TruncatedStreamError(
                f"stream ended with {n - pos} of {n} bytes outstanding"
            )
        return True

    def _read_exact(self, n: int, *, allow_eof: bool) -> Optional[bytearray]:
        """Read exactly ``n`` bytes into one freshly allocated buffer."""
        buf = bytearray(n)
        with memoryview(buf) as view:
            if not self._readinto_exact(view, allow_eof=allow_eof):
                return None
        return buf

    def read_frame(self) -> Optional[tuple]:
        """Fetch the next raw ``(header, payload buffer)`` pair.

        ``None`` at clean EOF.  The payload is a
        :class:`~repro.core.buffers.PooledBuffer` when the reader has a
        pool (the caller must ``release()`` it) or a ``bytearray``
        otherwise.  The CRC is **verified here**, so downstream decoders
        can pass ``check_crc=False``.  This is the fetch half of
        :meth:`read_block`, exposed for the parallel decode pipeline's
        read-ahead fetcher.
        """
        if not self._readinto_exact(self._header_view, allow_eof=True):
            return None
        header = decode_header(self._header_buf, max_len=self._max_block_len)
        if self._pool is not None:
            payload = self._pool.acquire(header.compressed_len)
            try:
                self._readinto_exact(payload.view, allow_eof=False)
                if not verify_crc(header, payload.view):
                    raise CorruptBlockError("payload CRC mismatch")
            except BaseException:
                payload.release()
                raise
        else:
            payload = self._read_exact(header.compressed_len, allow_eof=False)
            assert payload is not None
            if not verify_crc(header, payload):
                raise CorruptBlockError("payload CRC mismatch")
        self.bytes_in += HEADER_SIZE + header.compressed_len
        return header, payload

    def read_block(self) -> Optional[bytes]:
        """Return the next decoded block, or ``None`` at clean EOF."""
        frame = self.read_frame()
        if frame is None:
            return None
        header, payload = frame
        if self._pool is not None:
            try:
                data = decode_payload(
                    header, payload.view, self._registry, check_crc=False
                )
            finally:
                payload.release()
        else:
            data = decode_payload(header, payload, self._registry, check_crc=False)
        self.blocks_read += 1
        self.bytes_out += len(data)
        return data

    def close(self) -> None:
        """No-op: present so serial and parallel decoders share one
        interface (the :class:`~repro.core.pipeline.ParallelBlockDecoder`
        stops its threads here).  The source is left to the caller."""

    def abort(self) -> None:
        """No-op counterpart of the parallel decoder's error teardown."""

    def __iter__(self) -> Iterator[bytes]:
        while True:
            block = self.read_block()
            if block is None:
                return
            yield block
