"""Inspection of framed block streams without decompressing them.

Walks a stream's 20-byte headers (seeking over payloads) and aggregates
per-codec statistics — which codecs an adaptive transfer actually used,
with what ratios.  Backs the ``repro-compress info`` CLI and is usable
directly on any file-like object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import BinaryIO, Dict

from .block import HEADER_SIZE, decode_header
from .errors import TruncatedStreamError
from .registry import DEFAULT_REGISTRY, CodecRegistry


@dataclass
class CodecUsage:
    """Aggregate of all blocks that used one codec."""

    codec_name: str
    blocks: int = 0
    uncompressed_bytes: int = 0
    stream_bytes: int = 0  # compressed payloads + headers

    @property
    def ratio(self) -> float:
        if self.uncompressed_bytes == 0:
            return 1.0
        return self.stream_bytes / self.uncompressed_bytes


@dataclass
class StreamInfo:
    """Summary of a whole framed stream."""

    blocks: int = 0
    uncompressed_bytes: int = 0
    stream_bytes: int = 0
    fallback_blocks: int = 0
    per_codec: Dict[str, CodecUsage] = field(default_factory=dict)

    @property
    def ratio(self) -> float:
        if self.uncompressed_bytes == 0:
            return 1.0
        return self.stream_bytes / self.uncompressed_bytes

    @property
    def codecs_used(self) -> int:
        return len(self.per_codec)


def scan_block_stream(
    source: BinaryIO, registry: CodecRegistry = DEFAULT_REGISTRY
) -> StreamInfo:
    """Summarize a framed stream by reading headers only.

    ``source`` must be seekable.  Raises
    :class:`~repro.codecs.errors.TruncatedStreamError` on a stream that
    ends mid-frame, and propagates header validation errors.
    """
    info = StreamInfo()
    while True:
        raw = source.read(HEADER_SIZE)
        if not raw:
            return info
        if len(raw) < HEADER_SIZE:
            raise TruncatedStreamError(
                f"stream ended inside a header ({len(raw)} of {HEADER_SIZE} bytes)"
            )
        header = decode_header(raw)
        try:
            name = registry.get(header.codec_id).name
        except Exception:
            name = f"codec#{header.codec_id}"
        if header.stored_fallback:
            info.fallback_blocks += 1
            name += " (fallback)"
        usage = info.per_codec.setdefault(name, CodecUsage(codec_name=name))
        frame_bytes = HEADER_SIZE + header.compressed_len
        usage.blocks += 1
        usage.uncompressed_bytes += header.uncompressed_len
        usage.stream_bytes += frame_bytes
        info.blocks += 1
        info.uncompressed_bytes += header.uncompressed_len
        info.stream_bytes += frame_bytes
        source.seek(header.compressed_len, 1)
