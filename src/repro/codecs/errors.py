"""Exception hierarchy for the codec subsystem."""

from __future__ import annotations


class CodecError(Exception):
    """Base class for all codec-related failures."""


class UnknownCodecError(CodecError):
    """Raised when a codec id is not present in the registry."""

    def __init__(self, codec_id: int) -> None:
        super().__init__(f"unknown codec id {codec_id!r}")
        self.codec_id = codec_id


class CorruptBlockError(CodecError):
    """Raised when a framed block fails structural or checksum validation."""


class TruncatedStreamError(CorruptBlockError):
    """Raised when a block stream ends in the middle of a frame."""


class OversizedBlockError(CorruptBlockError):
    """Raised when a header claims a payload beyond the sanity bound.

    Four corrupted length bytes can claim a multi-GB payload; rejecting
    the header *before* the reader allocates keeps corruption from
    turning into an allocation bomb.
    """

    def __init__(self, field: str, value: int, bound: int) -> None:
        super().__init__(
            f"header {field} {value} exceeds sanity bound {bound} "
            "(corrupted length bytes?)"
        )
        self.field = field
        self.value = value
        self.bound = bound
