"""Exception hierarchy for the codec subsystem."""

from __future__ import annotations


class CodecError(Exception):
    """Base class for all codec-related failures."""


class UnknownCodecError(CodecError):
    """Raised when a codec id is not present in the registry."""

    def __init__(self, codec_id: int) -> None:
        super().__init__(f"unknown codec id {codec_id!r}")
        self.codec_id = codec_id


class CorruptBlockError(CodecError):
    """Raised when a framed block fails structural or checksum validation."""


class TruncatedStreamError(CorruptBlockError):
    """Raised when a block stream ends in the middle of a frame."""
