"""LZMA codec — the paper's HEAVY level (LZMA SDK in the original)."""

from __future__ import annotations

import lzma

from .base import Codec, CodecInfo
from .errors import CorruptBlockError


class LzmaCodec(Codec):
    """LZMA compression, the paper's level 3 (HEAVY).

    "Although LZMA is known to be significantly slower than QuickLZ, it
    generally offers a better compression ratio which might pay off if
    the available I/O bandwidth is low enough."  (Section III-B)

    ``preset`` maps onto xz presets 0–9; the default of 2 keeps HEAVY
    clearly slower than the zlib levels while remaining usable in tests.
    """

    _ID_BASE = 16

    def __init__(self, preset: int = 2) -> None:
        if not 0 <= preset <= 9:
            raise ValueError(f"lzma preset must be in 0..9, got {preset}")
        self.preset = preset
        self.info = CodecInfo(
            codec_id=self._ID_BASE + preset,
            name=f"lzma-{preset}",
            description=f"LZMA (xz container) at preset {preset}",
        )

    def compress(self, data: bytes) -> bytes:
        return lzma.compress(data, preset=self.preset)

    def decompress(self, data: bytes) -> bytes:
        try:
            return lzma.decompress(data)
        except lzma.LZMAError as exc:
            raise CorruptBlockError(f"lzma payload corrupt: {exc}") from exc
