"""Codec registry.

Maps stable one-byte codec ids to :class:`~repro.codecs.base.Codec`
instances so that a block header alone suffices to pick the right
decompressor — the paper's requirement that "each block contains all
the information to be decompressed by the receiver, including meta
information about compression algorithm" (Section III-B).
"""

from __future__ import annotations

from typing import Dict, Iterator

from .base import Codec
from .bz2_codec import Bz2Codec
from .errors import UnknownCodecError
from .lzma_codec import LzmaCodec
from .null_codec import NullCodec
from .rle_codec import RleCodec
from .zlib_codec import ZlibCodec


class CodecRegistry:
    """A mutable id → codec mapping with collision checking."""

    def __init__(self) -> None:
        self._codecs: Dict[int, Codec] = {}

    def register(self, codec: Codec) -> Codec:
        """Register ``codec``; idempotent for the same name, rejects id reuse."""
        existing = self._codecs.get(codec.codec_id)
        if existing is not None:
            if existing.name == codec.name:
                return existing
            raise ValueError(
                f"codec id {codec.codec_id} already bound to {existing.name!r}, "
                f"cannot rebind to {codec.name!r}"
            )
        self._codecs[codec.codec_id] = codec
        return codec

    def get(self, codec_id: int) -> Codec:
        try:
            return self._codecs[codec_id]
        except KeyError:
            raise UnknownCodecError(codec_id) from None

    def by_name(self, name: str) -> Codec:
        for codec in self._codecs.values():
            if codec.name == name:
                return codec
        raise KeyError(f"no codec named {name!r}")

    def __contains__(self, codec_id: int) -> bool:
        return codec_id in self._codecs

    def __iter__(self) -> Iterator[Codec]:
        return iter(self._codecs.values())

    def __len__(self) -> int:
        return len(self._codecs)


def build_default_registry() -> CodecRegistry:
    """All codecs shipped with the library, under their stable ids."""
    registry = CodecRegistry()
    registry.register(NullCodec())
    for level in range(1, 10):
        registry.register(ZlibCodec(level))
    for preset in range(0, 7):
        registry.register(LzmaCodec(preset))
    for level in (1, 9):
        registry.register(Bz2Codec(level))
    registry.register(RleCodec())
    return registry


#: Shared default registry.  Callers that need isolation should build
#: their own via :func:`build_default_registry`.
DEFAULT_REGISTRY = build_default_registry()
