"""zlib-backed codecs — stand-ins for the paper's QuickLZ levels.

The paper uses QuickLZ with a fast setting as level 1 (LIGHT) and a
better-ratio setting as level 2 (MEDIUM).  QuickLZ is not packaged for
Python; ``zlib`` at level 1 and level 6 occupies the same *ordering* on
the time/compression-ratio axis, which is all the decision algorithm
requires (levels "must be ordered by their respective time/compression
ratio", Section III-A).
"""

from __future__ import annotations

import zlib

from .base import Codec, CodecInfo
from .errors import CorruptBlockError


class ZlibCodec(Codec):
    """DEFLATE compression at a configurable zlib level (1–9)."""

    #: codec ids 1..9 are reserved for zlib levels 1..9.
    _ID_BASE = 0

    def __init__(self, level: int) -> None:
        if not 1 <= level <= 9:
            raise ValueError(f"zlib level must be in 1..9, got {level}")
        self.level = level
        self.info = CodecInfo(
            codec_id=self._ID_BASE + level,
            name=f"zlib-{level}",
            description=f"DEFLATE at zlib level {level}",
        )

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CorruptBlockError(f"zlib payload corrupt: {exc}") from exc


class LightZlibCodec(ZlibCodec):
    """LIGHT level: fastest DEFLATE setting (QuickLZ level-1 stand-in)."""

    def __init__(self) -> None:
        super().__init__(level=1)


class MediumZlibCodec(ZlibCodec):
    """MEDIUM level: default DEFLATE setting (QuickLZ level-3 stand-in)."""

    def __init__(self) -> None:
        super().__init__(level=6)
