"""bzip2 codec — an optional extra level between MEDIUM and HEAVY.

Not used by the paper's default four-level table, but the decision
algorithm supports an arbitrary number of ordered levels (Section III-A
explicitly allows "a fixed set of n compression levels"), so we provide
bzip2 for users who want a finer-grained ladder and for ablation
experiments with more levels.
"""

from __future__ import annotations

import bz2

from .base import Codec, CodecInfo
from .errors import CorruptBlockError


class Bz2Codec(Codec):
    """bzip2 compression at a configurable compresslevel (1–9)."""

    _ID_BASE = 32

    def __init__(self, level: int = 9) -> None:
        if not 1 <= level <= 9:
            raise ValueError(f"bz2 level must be in 1..9, got {level}")
        self.level = level
        self.info = CodecInfo(
            codec_id=self._ID_BASE + level,
            name=f"bz2-{level}",
            description=f"bzip2 at compresslevel {level}",
        )

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return bz2.decompress(data)
        except (OSError, ValueError) as exc:
            raise CorruptBlockError(f"bz2 payload corrupt: {exc}") from exc
