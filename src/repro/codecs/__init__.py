"""Compression substrate: codecs, registry, and self-contained block framing.

Stand-ins for the paper's QuickLZ (zlib levels 1/6) and LZMA codecs plus
the framing Nephele uses for its 128 KB channel buffers.
"""

from .base import Codec, CodecInfo
from .block import (
    DEFAULT_BLOCK_SIZE,
    HEADER_SIZE,
    MAX_BLOCK_LEN,
    BlockData,
    BlockHeader,
    BlockReader,
    BlockWriter,
    EncodedBlock,
    EncodedParts,
    decode_block,
    decode_header,
    decode_payload,
    encode_block,
    encode_block_parts,
    verify_crc,
)
from .bz2_codec import Bz2Codec
from .errors import (
    CodecError,
    CorruptBlockError,
    OversizedBlockError,
    TruncatedStreamError,
    UnknownCodecError,
)
from .inspect import CodecUsage, StreamInfo, scan_block_stream
from .lzma_codec import LzmaCodec
from .null_codec import NullCodec
from .registry import DEFAULT_REGISTRY, CodecRegistry, build_default_registry
from .rle_codec import RleCodec
from .stats import CodecMeasurement, measure_codec, measure_many
from .zlib_codec import LightZlibCodec, MediumZlibCodec, ZlibCodec

__all__ = [
    "Codec",
    "CodecInfo",
    "CodecError",
    "CorruptBlockError",
    "OversizedBlockError",
    "TruncatedStreamError",
    "UnknownCodecError",
    "NullCodec",
    "ZlibCodec",
    "LightZlibCodec",
    "MediumZlibCodec",
    "LzmaCodec",
    "Bz2Codec",
    "RleCodec",
    "CodecRegistry",
    "build_default_registry",
    "DEFAULT_REGISTRY",
    "BlockHeader",
    "BlockReader",
    "BlockWriter",
    "EncodedBlock",
    "EncodedParts",
    "encode_block",
    "encode_block_parts",
    "decode_block",
    "decode_header",
    "decode_payload",
    "verify_crc",
    "BlockData",
    "DEFAULT_BLOCK_SIZE",
    "HEADER_SIZE",
    "MAX_BLOCK_LEN",
    "CodecMeasurement",
    "measure_codec",
    "measure_many",
    "scan_block_stream",
    "StreamInfo",
    "CodecUsage",
]
