"""Pluggable fleet allocation policies.

A policy is a pure-ish function from a :class:`FleetView` (everything
the controller knows about the live flows and the shared substrate) to
per-flow :class:`Assignment`\\ s.  Assignments answer the two questions
ROADMAP item 2 poses: which level each flow should run (``level=None``
leaves the flow's own adaptive scheme in charge) and what share of the
shared codec workers it deserves (``weight``).

Three reference policies ship:

* :class:`FairSharePolicy` — the do-no-harm baseline: every flow keeps
  its adaptive scheme and an equal worker share.  The bench_serve
  contention gate pins this one to "never collapses aggregate
  throughput >5% vs uncontrolled".
* :class:`GreedyThroughputPolicy` — evidence-driven specialisation:
  flows whose *measured* wire ratio says "incompressible" are pinned to
  NO compression and handed a lean worker share, freeing CPU for flows
  that demonstrably benefit from compressing.  It only ever acts on
  observed ratios (a flow running at NO shows ratio 1.0 and therefore
  proves nothing — such flows are left adaptive until they probe).
* :class:`HillClimbPolicy` — ADARES-style trial-and-error: perturb one
  flow's worker share per control round, keep the move if aggregate
  goodput improved, revert and try the opposite direction if it
  regressed.  No model of the codecs at all.

Policies must be deterministic given the observation sequence — the
simulator replays them under seeded workloads and asserts who-wins
shape claims as ``[OK]/[FAIL]`` checks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "Assignment",
    "FlowSnapshot",
    "FleetView",
    "AllocationPolicy",
    "FairSharePolicy",
    "GreedyThroughputPolicy",
    "HillClimbPolicy",
    "POLICIES",
    "make_policy",
]


@dataclass(frozen=True)
class Assignment:
    """What the fleet wants one flow to do next control interval.

    ``level=None`` means "leave the flow's own adaptive scheme in
    charge"; an integer pins that level.  ``weight`` scales the flow's
    share of the shared codec workers (1.0 = full/default share; the
    actuator maps it onto its decode/encode window or cpu share).
    """

    level: Optional[int] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")


@dataclass(frozen=True)
class FlowSnapshot:
    """One flow's state as the controller last observed it."""

    flow_id: int
    level: int
    app_rate: float
    app_bytes: float
    #: Last *informative* wire/app ratio (measured at level > 0); None
    #: until the flow has compressed anything.
    observed_ratio: Optional[float]
    age_seconds: float
    weight: float = 1.0


@dataclass(frozen=True)
class FleetView:
    """Everything a policy may look at, once per control interval."""

    now: float
    flows: Tuple[FlowSnapshot, ...]
    n_levels: int
    codec_workers: int = 0
    codec_queue_depth: int = 0
    link_capacity: Optional[float] = None

    @property
    def aggregate_rate(self) -> float:
        return sum(f.app_rate for f in self.flows)


class AllocationPolicy(abc.ABC):
    """Map one fleet observation to per-flow assignments."""

    #: Registry/CLI name ("fair-share", ...).
    name: str

    @abc.abstractmethod
    def allocate(self, fleet: FleetView) -> Dict[int, Assignment]:
        """Return an :class:`Assignment` per flow id.

        Flows missing from the dict keep their previous assignment.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


class FairSharePolicy(AllocationPolicy):
    """Equal worker shares, adaptive levels — the do-no-harm baseline."""

    name = "fair-share"

    def allocate(self, fleet: FleetView) -> Dict[int, Assignment]:
        return {f.flow_id: Assignment(level=None, weight=1.0) for f in fleet.flows}


class GreedyThroughputPolicy(AllocationPolicy):
    """Starve proven-incompressible flows of CPU, feed the rest.

    Decision evidence is the flow's last measured wire ratio:

    * ``ratio >= incompressible_ratio`` — compression is buying
      (almost) nothing: pin the flow at level 0 and shrink its codec
      share to ``lean_weight`` (it barely needs workers at NO anyway).
    * ``ratio < incompressible_ratio`` — compression pays: full weight,
      level left adaptive so the paper's algorithm picks the depth.
    * no ratio yet — no evidence, no action (full weight, adaptive);
      the flow's own probing will produce evidence within epochs.
    """

    name = "greedy-throughput"

    def __init__(
        self,
        incompressible_ratio: float = 0.9,
        lean_weight: float = 0.25,
    ) -> None:
        if not 0 < incompressible_ratio <= 1.0:
            raise ValueError("incompressible_ratio must be in (0, 1]")
        if lean_weight <= 0:
            raise ValueError("lean_weight must be positive")
        self.incompressible_ratio = incompressible_ratio
        self.lean_weight = lean_weight

    def allocate(self, fleet: FleetView) -> Dict[int, Assignment]:
        out: Dict[int, Assignment] = {}
        for f in fleet.flows:
            if (
                f.observed_ratio is not None
                and f.observed_ratio >= self.incompressible_ratio
            ):
                out[f.flow_id] = Assignment(level=0, weight=self.lean_weight)
            else:
                out[f.flow_id] = Assignment(level=None, weight=1.0)
        return out


@dataclass
class _Move:
    flow_id: int
    direction: float  # multiplicative step applied
    prev_weight: float


class HillClimbPolicy(AllocationPolicy):
    """ADARES-style model-free hill climbing on worker shares.

    Each control round perturbs exactly one flow's weight by ``step``
    (multiplicatively, alternating through the fleet round-robin).  The
    next round compares aggregate goodput against the previous round:
    if it regressed, the move is reverted and the remembered direction
    for that flow flips.  Weights stay inside [min_weight, max_weight].

    Consecutive rejected moves back off exponentially (the same idea
    Algorithm 1 applies to level probes): after the k-th rejection in a
    row the policy sits out ``2^(k-1) - 1`` rounds, capped at
    ``max_backoff``, before trying again; an accepted move resets the
    streak.  Without this, a fleet whose equal split is already optimal
    pays a permanent exploration tax — every round perturbs, regresses
    and reverts, and the regressed interval is wall-clock lost.

    Levels are never pinned — this policy only redistributes CPU and
    lets each flow's scheme adapt to what its share allows, which is
    exactly the ADARES shape (reallocate resources, not decisions).
    """

    name = "hill-climb"

    def __init__(
        self,
        step: float = 1.25,
        min_weight: float = 0.2,
        max_weight: float = 4.0,
        tolerance: float = 0.02,
        max_backoff: int = 16,
    ) -> None:
        if step <= 1.0:
            raise ValueError("step must be > 1.0 (multiplicative)")
        if not 0 < min_weight <= 1.0 <= max_weight:
            raise ValueError("need min_weight <= 1.0 <= max_weight")
        if max_backoff < 1:
            raise ValueError("max_backoff must be >= 1")
        self.step = step
        self.min_weight = min_weight
        self.max_weight = max_weight
        self.tolerance = tolerance
        self.max_backoff = max_backoff
        self._weights: Dict[int, float] = {}
        self._directions: Dict[int, float] = {}
        self._last_rate: Optional[float] = None
        self._last_move: Optional[_Move] = None
        self._cursor = 0
        self._rejects = 0
        self._cooldown = 0

    def _clamp(self, w: float) -> float:
        return min(max(w, self.min_weight), self.max_weight)

    def allocate(self, fleet: FleetView) -> Dict[int, Assignment]:
        live = {f.flow_id for f in fleet.flows}
        # Forget flows that left; seed new arrivals at full share.
        self._weights = {fid: w for fid, w in self._weights.items() if fid in live}
        for f in fleet.flows:
            self._weights.setdefault(f.flow_id, 1.0)
            self._directions.setdefault(f.flow_id, self.step)

        rate = fleet.aggregate_rate
        if self._last_move is not None and self._last_rate is not None:
            move = self._last_move
            if move.flow_id in live and rate < self._last_rate * (1 - self.tolerance):
                # The experiment hurt: undo it and flip that flow's bias,
                # and wait exponentially longer before probing again.
                self._weights[move.flow_id] = move.prev_weight
                self._directions[move.flow_id] = (
                    1.0 / self.step
                    if move.direction > 1.0
                    else self.step
                )
                self._rejects += 1
                self._cooldown = min(2 ** (self._rejects - 1) - 1, self.max_backoff)
            else:
                self._rejects = 0
        self._last_rate = rate
        self._last_move = None

        if self._cooldown > 0:
            self._cooldown -= 1
            return {
                f.flow_id: Assignment(level=None, weight=self._weights[f.flow_id])
                for f in fleet.flows
            }

        # Perturb the next flow in round-robin order (only once the
        # fleet is actually moving data, so the first reading is real).
        order = sorted(live)
        if order and rate > 0:
            fid = order[self._cursor % len(order)]
            self._cursor += 1
            direction = self._directions[fid]
            prev = self._weights[fid]
            nxt = self._clamp(prev * direction)
            if nxt != prev:
                self._weights[fid] = nxt
                self._last_move = _Move(fid, direction, prev)

        return {
            f.flow_id: Assignment(level=None, weight=self._weights[f.flow_id])
            for f in fleet.flows
        }


#: CLI/registry names → constructors.
POLICIES = {
    FairSharePolicy.name: FairSharePolicy,
    GreedyThroughputPolicy.name: GreedyThroughputPolicy,
    HillClimbPolicy.name: HillClimbPolicy,
}


def make_policy(name: str) -> AllocationPolicy:
    """Instantiate a policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r} (have: {', '.join(sorted(POLICIES))})"
        ) from None
