"""repro.control — the cross-flow control plane (fleet-level decisions).

The paper's Algorithm 1 decides per flow in isolation; this package
decides *across* flows sharing one CPU budget, one codec pool and one
NIC (ROADMAP item 2, shaped after ADARES — see PAPERS.md).

* :mod:`~repro.control.policies` — :class:`AllocationPolicy` interface
  plus the fair-share / greedy-throughput / hill-climb references.
* :mod:`~repro.control.controller` — :class:`FleetController`, which
  turns telemetry (bus events or direct sim calls) into per-flow
  :class:`Assignment`\\ s via a host-provided actuator.

See docs/control.md for the architecture and how to add a policy.
"""

from .controller import FleetController, FlowState
from .policies import (
    POLICIES,
    AllocationPolicy,
    Assignment,
    FairSharePolicy,
    FleetView,
    FlowSnapshot,
    GreedyThroughputPolicy,
    HillClimbPolicy,
    make_policy,
)

__all__ = [
    "FleetController",
    "FlowState",
    "AllocationPolicy",
    "Assignment",
    "FleetView",
    "FlowSnapshot",
    "FairSharePolicy",
    "GreedyThroughputPolicy",
    "HillClimbPolicy",
    "POLICIES",
    "make_policy",
]
