"""The fleet controller: telemetry in, assignments out.

:class:`FleetController` is the cross-flow brain ROADMAP item 2 asks
for.  It maintains per-flow state from two ingestion paths:

* **Bus subscription** (:meth:`attach`): consumes ``FlowAccepted`` /
  ``FlowClosed`` / ``FlowRates`` / ``PipelineQueueDepth`` /
  ``BufferPoolStats`` events from the telemetry bus.  This is how the
  serve layer feeds it — and because attachment *is* the bus
  subscription, an unattached controller keeps the bus idle and every
  instrumented hot path stays zero-cost.
* **Direct calls** (:meth:`flow_opened` / :meth:`observe_flow` /
  :meth:`flow_closed`): how the simulator's fleet harness feeds the
  identical controller without a bus round-trip.

Each host-driven :meth:`on_tick` (the serve loop calls it once per
poll pass; the sim calls it from a clocked process) runs the pluggable
:class:`~repro.control.policies.AllocationPolicy` at most once per
``control_interval`` and pushes the resulting assignments through the
``actuator`` callback — ``actuator(flow_id, assignment)`` — which the
host maps onto whatever its substrate supports (level override + decode
window in serve, cpu share in the simulator).

Thread-safety: bus events may arrive from codec worker threads while
``on_tick`` runs on the host loop thread, so all flow state is behind
one lock.  The actuator is invoked *outside* the lock, on the tick
caller's thread.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from ..telemetry.events import (
    BUS,
    BufferPoolStats,
    EventBus,
    FleetRebalanced,
    FlowAccepted,
    FlowClosed,
    FlowRates,
    PipelineQueueDepth,
    TelemetryEvent,
)
from .policies import (
    AllocationPolicy,
    Assignment,
    FleetView,
    FlowSnapshot,
    make_policy,
)

__all__ = ["FlowState", "FleetController"]

Actuator = Callable[[int, Assignment], None]


@dataclass
class FlowState:
    """Mutable per-flow record behind the controller lock."""

    flow_id: int
    opened_at: float
    level: int = 0
    app_rate: float = 0.0
    app_bytes: float = 0.0
    #: Last informative compressibility evidence (wire/app measured at
    #: level > 0).  A flow running uncompressed produces ratio 1.0 by
    #: construction, which proves nothing — such samples never land here.
    observed_ratio: Optional[float] = None
    worker_weight: float = 1.0
    last_update: float = 0.0
    assignment: Assignment = Assignment()


class FleetController:
    """Cross-flow resource manager running one allocation policy."""

    def __init__(
        self,
        policy: Union[str, AllocationPolicy],
        *,
        n_levels: int = 4,
        actuator: Optional[Actuator] = None,
        control_interval: float = 1.0,
        bus: Optional[EventBus] = None,
        source: str = "control",
    ) -> None:
        if control_interval <= 0:
            raise ValueError("control_interval must be positive")
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.n_levels = n_levels
        self.actuator = actuator
        self.control_interval = control_interval
        self.bus = bus if bus is not None else BUS
        self.source = source
        self._lock = threading.Lock()
        self._flows: Dict[int, FlowState] = {}
        self._handle = None
        self.codec_workers = 0
        self.codec_queue_depth = 0
        #: Completed policy passes (telemetry + tests).
        self.rebalances = 0
        self._last_tick: Optional[float] = None

    # -- lifecycle ------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._handle is not None

    def attach(self) -> "FleetController":
        """Subscribe to the telemetry bus (idempotent)."""
        if self._handle is None:
            self._handle = self.bus.subscribe(self._on_event)
        return self

    def detach(self) -> None:
        """Unsubscribe; the bus returns to zero-cost idle if empty."""
        if self._handle is not None:
            self.bus.unsubscribe(self._handle)
            self._handle = None

    def __enter__(self) -> "FleetController":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- observation ingestion -----------------------------------------

    def _on_event(self, ev: TelemetryEvent) -> None:
        if isinstance(ev, FlowRates):
            self.observe_flow(
                ev.flow_id,
                now=ev.ts,
                level=ev.level,
                app_rate=ev.app_rate,
                app_bytes=ev.app_bytes,
                observed_ratio=ev.observed_ratio,
            )
        elif isinstance(ev, FlowAccepted):
            self.flow_opened(ev.flow_id, now=ev.ts)
        elif isinstance(ev, FlowClosed):
            self.flow_closed(ev.flow_id)
        elif isinstance(ev, PipelineQueueDepth):
            with self._lock:
                self.codec_queue_depth = ev.depth
                self.codec_workers = ev.workers
        elif isinstance(ev, BufferPoolStats):
            pass  # reserved: memory-pressure policies

    def flow_opened(self, flow_id: int, *, now: float) -> None:
        with self._lock:
            self._flows.setdefault(flow_id, FlowState(flow_id, opened_at=now))

    def flow_closed(self, flow_id: int) -> None:
        with self._lock:
            self._flows.pop(flow_id, None)

    def observe_flow(
        self,
        flow_id: int,
        *,
        now: float,
        level: int,
        app_rate: float,
        app_bytes: float = 0.0,
        observed_ratio: Optional[float] = None,
    ) -> None:
        """Ingest one per-flow rate sample (creates the flow if new).

        ``observed_ratio`` is only *kept* when it is informative: a
        measurement taken while the flow compressed (level > 0).  The
        last informative value survives level pins to 0, so a greedy
        policy's own actuation cannot erase the evidence it acted on.
        """
        with self._lock:
            st = self._flows.get(flow_id)
            if st is None:
                st = self._flows[flow_id] = FlowState(flow_id, opened_at=now)
            st.level = level
            st.app_rate = app_rate
            st.app_bytes = app_bytes
            st.last_update = now
            if observed_ratio is not None and level > 0:
                st.observed_ratio = observed_ratio

    # -- introspection --------------------------------------------------

    @property
    def flow_count(self) -> int:
        with self._lock:
            return len(self._flows)

    def fleet_view(self, now: float) -> FleetView:
        """Immutable snapshot of everything the policy may look at."""
        with self._lock:
            flows = tuple(
                FlowSnapshot(
                    flow_id=st.flow_id,
                    level=st.level,
                    app_rate=st.app_rate,
                    app_bytes=st.app_bytes,
                    observed_ratio=st.observed_ratio,
                    age_seconds=max(now - st.opened_at, 0.0),
                    weight=st.worker_weight,
                )
                for st in sorted(self._flows.values(), key=lambda s: s.flow_id)
            )
            return FleetView(
                now=now,
                flows=flows,
                n_levels=self.n_levels,
                codec_workers=self.codec_workers,
                codec_queue_depth=self.codec_queue_depth,
            )

    def assignment_for(self, flow_id: int) -> Assignment:
        with self._lock:
            st = self._flows.get(flow_id)
            return st.assignment if st is not None else Assignment()

    # -- control --------------------------------------------------------

    def on_tick(self, now: float) -> Optional[Dict[int, Assignment]]:
        """Run the policy if the control interval elapsed.

        Returns the assignments applied this pass, or ``None`` when the
        interval had not elapsed or no flows were live.  Hosts call this
        as often as they like — once per event-loop pass is fine.
        """
        if self._last_tick is not None and now - self._last_tick < self.control_interval:
            return None
        self._last_tick = now
        fleet = self.fleet_view(now)
        if not fleet.flows:
            return None
        assignments = self.policy.allocate(fleet)
        applied: List[tuple] = []
        with self._lock:
            for fid, asg in assignments.items():
                st = self._flows.get(fid)
                if st is None:
                    continue  # raced with a close
                st.assignment = asg
                st.worker_weight = asg.weight
                applied.append((fid, asg))
        if self.actuator is not None:
            for fid, asg in applied:
                self.actuator(fid, asg)
        self.rebalances += 1
        if self.bus.active:
            self.bus.publish(
                FleetRebalanced(
                    ts=now,
                    source=self.source,
                    policy=self.policy.name,
                    flows=len(applied),
                    pinned=sum(1 for _, a in applied if a.level is not None),
                    reweighted=sum(1 for _, a in applied if a.weight != 1.0),
                )
            )
        return dict(applied)
