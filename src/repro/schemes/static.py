"""Static compression levels — Table II's NO/LIGHT/MEDIUM/HEAVY rows."""

from __future__ import annotations

from .base import CompressionScheme, EpochObservation


class StaticScheme(CompressionScheme):
    """Always the same level, chosen before the job starts.

    "For comparison, the table also includes the average completion
    times when the compression level was chosen statically before the
    execution and was not determined by our adaptive compression scheme
    at runtime." (Section IV-A)
    """

    def __init__(self, n_levels: int, level: int, name: str | None = None) -> None:
        super().__init__(n_levels)
        if not 0 <= level < n_levels:
            raise ValueError(f"level {level} out of range 0..{n_levels - 1}")
        self._level = level
        self.name = name if name is not None else f"STATIC-{level}"

    @property
    def current_level(self) -> int:
        return self._level

    def on_epoch(self, obs: EpochObservation) -> int:
        return self._level
