"""Decision-scheme zoo: the paper's scheme, static levels, related work."""

from .base import CompressionScheme, EpochObservation, FlowDecision, FlowView
from .managed import ManagedScheme
from .memory import MemoryRateScheme
from .nctcsys import ThresholdScheme
from .queue_based import QueueBasedScheme
from .rate_based import RateBasedScheme
from .resource_based import ResourceBasedScheme, TrainedLevel
from .smoothed import SmoothedRateScheme
from .static import StaticScheme

__all__ = [
    "CompressionScheme",
    "EpochObservation",
    "FlowView",
    "FlowDecision",
    "ManagedScheme",
    "StaticScheme",
    "RateBasedScheme",
    "SmoothedRateScheme",
    "MemoryRateScheme",
    "ResourceBasedScheme",
    "TrainedLevel",
    "QueueBasedScheme",
    "ThresholdScheme",
]
