"""Resource-metric decision model (Krintz & Sucu style).

"Their decision model includes CPU utilization and network bandwidth as
well as data obtained from an offline training phase." (Section V)

The scheme carries a *training table* — per-level compression speed and
ratio measured during an offline calibration run on an (assumed)
unloaded machine — and each epoch predicts, for every level, the
throughput ``min(predicted compression rate on the idle CPU share,
displayed bandwidth / trained ratio)``, picking the argmax.

This is exactly the class of scheme Section II argues against: both of
its inputs (``displayed_cpu_util``, ``displayed_bandwidth``) come from
the virtualized OS.  When a paravirtualized VM displays ~7 % CPU while
the host burns a full core, the predicted compression rate is wildly
optimistic; when the displayed bandwidth rides a caching or fluctuation
artifact, the bandwidth term is garbage.  The `ablate-metrics`
experiment feeds this scheme skewed vs honest metrics to quantify the
damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .base import CompressionScheme, EpochObservation


@dataclass(frozen=True)
class TrainedLevel:
    """Offline-training entry for one level."""

    #: Compression speed measured during training (bytes/s at 100 % CPU).
    comp_speed: float
    #: Compression ratio measured during training.
    ratio: float


class ResourceBasedScheme(CompressionScheme):
    """Pick the level with the best *predicted* throughput each epoch."""

    name = "RESOURCE"

    def __init__(
        self,
        training: Sequence[TrainedLevel],
        initial_level: int = 0,
        smoothing: float = 0.5,
    ) -> None:
        super().__init__(len(training))
        if not 0 <= initial_level < len(training):
            raise ValueError("initial level out of range")
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.training = list(training)
        self._level = initial_level
        self.smoothing = smoothing
        self._bw_estimate: float | None = None
        self._last_app_rate = 0.0

    @property
    def current_level(self) -> int:
        return self._level

    def predicted_rate(self, level: int, cpu_available: float, bandwidth: float) -> float:
        """The model's throughput prediction for ``level``."""
        entry = self.training[level]
        if entry.comp_speed == float("inf"):
            comp = float("inf")
        else:
            comp = entry.comp_speed * max(cpu_available, 0.0)
        net = bandwidth / entry.ratio if entry.ratio > 0 else float("inf")
        return min(comp, net)

    def _cpu_available(self, obs: EpochObservation) -> float:
        """CPU fraction the scheme believes it can compress with.

        The displayed utilization includes the scheme's *own*
        compression work; like Krintz & Sucu's accounting, subtract the
        expected own share (from the training table) before treating
        the remainder as external load.
        """
        entry = self.training[self._level]
        own = (
            0.0
            if entry.comp_speed == float("inf") or entry.comp_speed <= 0
            else min(1.0, self._last_app_rate / entry.comp_speed)
        )
        external = max(0.0, obs.displayed_cpu_util / 100.0 - own)
        return max(0.0, 1.0 - external)

    def on_epoch(self, obs: EpochObservation) -> int:
        # Exponentially smoothed bandwidth estimate, as NWS-style
        # forecasters do.
        if self._bw_estimate is None:
            self._bw_estimate = obs.displayed_bandwidth
        else:
            self._bw_estimate = (
                self.smoothing * obs.displayed_bandwidth
                + (1 - self.smoothing) * self._bw_estimate
            )
        available = self._cpu_available(obs)
        self._last_app_rate = obs.app_rate
        best_level = 0
        best_rate = -1.0
        for level in range(self.n_levels):
            rate = self.predicted_rate(level, available, self._bw_estimate)
            if rate > best_rate:
                best_rate = rate
                best_level = level
        self._level = best_level
        return self._level
