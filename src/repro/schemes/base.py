"""Common interface for compression decision schemes.

The paper compares its rate-based model against static levels
(Table II) and discusses several related-work decision models
(Section V).  Everything that decides "which level next epoch" —
the paper's Algorithm 1, static baselines, and re-implementations of
the related-work models — implements :class:`CompressionScheme`, so the
simulator's transfer process can drive any of them interchangeably.

Each epoch the scheme receives a :class:`~repro.core.flowview.FlowView`
(historically named :data:`EpochObservation`; the old name remains a
first-class alias).  Note the epistemics encoded in its fields:
``app_rate`` is directly measured by the application and therefore
trustworthy; the ``displayed_*`` fields are whatever the (virtualized)
operating system shows, which Section II demonstrates can be wrong by
an order of magnitude.  Schemes that rely on displayed metrics inherit
that error — reproducing it is the point of the `ablate-metrics`
experiment.

Two entry points:

* :meth:`CompressionScheme.on_epoch` — the historical contract, returns
  the bare next level.  All concrete schemes implement this.
* :meth:`CompressionScheme.decide` — the uniform contract consumed by
  controllers and replay: wraps ``on_epoch`` and returns a full
  :class:`~repro.core.flowview.FlowDecision` record.  ``decide`` calls
  ``on_epoch`` exactly once with the unmodified view, so the two paths
  produce byte-for-byte identical level sequences.
"""

from __future__ import annotations

import abc
from typing import List

from ..core.flowview import FlowDecision, FlowView

#: Historical name for the per-epoch observation snapshot.  Kept as a
#: true alias (not a subclass) so isinstance checks and trace payloads
#: are interchangeable between the two names.
EpochObservation = FlowView

__all__ = ["CompressionScheme", "EpochObservation", "FlowView", "FlowDecision"]


class CompressionScheme(abc.ABC):
    """A policy choosing the compression level for the next epoch."""

    #: Human-readable name used in result tables ("DYNAMIC", "NO", ...).
    name: str

    def __init__(self, n_levels: int) -> None:
        if n_levels < 1:
            raise ValueError("need at least one level")
        self.n_levels = n_levels
        self._decision_epoch = 0

    @property
    @abc.abstractmethod
    def current_level(self) -> int:
        """Level to apply right now."""

    @abc.abstractmethod
    def on_epoch(self, obs: EpochObservation) -> int:
        """Consume one epoch's observation; return the next level."""

    def decide(self, view: FlowView) -> FlowDecision:
        """Consume one epoch's view; return the full decision record.

        Identical decision sequence to calling :meth:`on_epoch`
        directly — this wrapper only adds bookkeeping (epoch counter,
        before/after levels, flow identity) around the same single call.
        """
        level_before = self.current_level
        level_after = self.on_epoch(view)
        decision = FlowDecision(
            flow_id=view.flow_id,
            epoch=self._decision_epoch,
            level_before=level_before,
            level_after=level_after,
        )
        self._decision_epoch += 1
        return decision

    def backoff_snapshot(self) -> List[int]:
        """Per-level backoff counters, for traces (empty if stateless)."""
        return []

    def _clamp(self, level: int) -> int:
        return min(max(level, 0), self.n_levels - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} level={self.current_level}>"
