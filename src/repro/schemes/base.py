"""Common interface for compression decision schemes.

The paper compares its rate-based model against static levels
(Table II) and discusses several related-work decision models
(Section V).  Everything that decides "which level next epoch" —
the paper's Algorithm 1, static baselines, and re-implementations of
the related-work models — implements :class:`CompressionScheme`, so the
simulator's transfer process can drive any of them interchangeably.

Each epoch the scheme receives an :class:`EpochObservation`.  Note the
epistemics encoded in its fields: ``app_rate`` is directly measured by
the application and therefore trustworthy; the ``displayed_*`` fields
are whatever the (virtualized) operating system shows, which Section II
demonstrates can be wrong by an order of magnitude.  Schemes that rely
on displayed metrics inherit that error — reproducing it is the point
of the `ablate-metrics` experiment.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class EpochObservation:
    """Everything a decision scheme may look at, once per epoch."""

    #: Simulation/wall time at the end of the epoch (seconds).
    now: float
    #: Length of the epoch (the paper's ``t``).
    epoch_seconds: float
    #: Application data rate achieved during the epoch (bytes/s) —
    #: the *only* input of the paper's scheme.
    app_rate: float
    #: CPU utilization (percent, 0-100+) as displayed inside the VM.
    displayed_cpu_util: float
    #: Available I/O bandwidth (bytes/s) as estimated from inside the VM.
    displayed_bandwidth: float
    #: Growth rate of the compression→send queue (bytes/s; positive
    #: means compression outpaces the network).  For queue-based schemes.
    queue_slope: float = 0.0
    #: The compressibility ratio observed on the last blocks, if the
    #: scheme samples it (None when not measured).
    observed_ratio: Optional[float] = None


class CompressionScheme(abc.ABC):
    """A policy choosing the compression level for the next epoch."""

    #: Human-readable name used in result tables ("DYNAMIC", "NO", ...).
    name: str

    def __init__(self, n_levels: int) -> None:
        if n_levels < 1:
            raise ValueError("need at least one level")
        self.n_levels = n_levels

    @property
    @abc.abstractmethod
    def current_level(self) -> int:
        """Level to apply right now."""

    @abc.abstractmethod
    def on_epoch(self, obs: EpochObservation) -> int:
        """Consume one epoch's observation; return the next level."""

    def _clamp(self, level: int) -> int:
        return min(max(level, 0), self.n_levels - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} level={self.current_level}>"
