"""A scheme wrapper that accepts externally-pushed level overrides.

The fleet controller (:mod:`repro.control`) does not replace per-flow
adaptation — it *supervises* it.  ``ManagedScheme`` wraps any
:class:`~repro.schemes.base.CompressionScheme` and exposes
:meth:`set_override`:

* override unset → decisions pass through the inner scheme unchanged
  (byte-for-byte identical to running it unmanaged);
* override set → the pinned level is applied, while the inner scheme
  keeps observing epochs open-loop so its rate estimates and backoff
  state stay warm for the moment the controller releases the pin.

The open-loop learning matters: a controller that pins a flow at NO for
a minute must be able to hand control back without the inner scheme
re-learning from scratch.
"""

from __future__ import annotations

from typing import List, Optional

from .base import CompressionScheme, EpochObservation


class ManagedScheme(CompressionScheme):
    """Delegate to an inner scheme unless an override level is pinned."""

    def __init__(self, inner: CompressionScheme) -> None:
        super().__init__(inner.n_levels)
        self.inner = inner
        self.name = f"MANAGED({inner.name})"
        self._override: Optional[int] = None

    @property
    def override(self) -> Optional[int]:
        return self._override

    def set_override(self, level: Optional[int]) -> None:
        """Pin the level (clamped to the ladder), or ``None`` to release."""
        self._override = None if level is None else self._clamp(int(level))

    @property
    def current_level(self) -> int:
        if self._override is not None:
            return self._override
        return self.inner.current_level

    def on_epoch(self, obs: EpochObservation) -> int:
        inner_next = self.inner.on_epoch(obs)
        if self._override is not None:
            return self._override
        return inner_next

    def backoff_snapshot(self) -> List[int]:
        return self.inner.backoff_snapshot()
