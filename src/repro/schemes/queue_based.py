"""FIFO-queue decision model (Jeannot, Knutsson & Björkman / AdOC style).

"Its main idea is to split the process of sending a data package into a
compression thread, a sending thread, and a FIFO queue in the middle.
The decision to raise or lower the compression level depends on the
size of the FIFO queue.  If the size is decreasing (resp. increasing)
the compression level is lowered (resp. raised)." (Section V)

The paper also records the model's known blind spots, which this
implementation faithfully keeps: it assumes a higher level always means
a better ratio (false on incompressible data) and ignores that higher
levels cost more CPU.
"""

from __future__ import annotations

from .base import CompressionScheme, EpochObservation


class QueueBasedScheme(CompressionScheme):
    """Raise level when the send queue grows, lower when it drains."""

    name = "QUEUE"

    def __init__(
        self,
        n_levels: int,
        threshold: float = 1e6,
        initial_level: int = 0,
    ) -> None:
        """``threshold``: queue slope (bytes/s) treated as 'stable'."""
        super().__init__(n_levels)
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold = threshold
        self._level = self._clamp(initial_level)

    @property
    def current_level(self) -> int:
        return self._level

    def on_epoch(self, obs: EpochObservation) -> int:
        if obs.queue_slope > self.threshold:
            # Compression outpaces the network: compress harder.
            self._level = self._clamp(self._level + 1)
        elif obs.queue_slope < -self.threshold:
            # Network drains faster than we compress: back off.
            self._level = self._clamp(self._level - 1)
        return self._level
