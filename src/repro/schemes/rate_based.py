"""The paper's scheme (DYNAMIC) as a :class:`CompressionScheme`.

A thin adapter over :class:`repro.core.decision.DecisionModel` — the
same object that powers the real-I/O :class:`~repro.core.stream.AdaptiveBlockWriter` —
so the simulator evaluates the identical decision logic.
"""

from __future__ import annotations

from ..core.decision import DEFAULT_ALPHA, DecisionModel
from .base import CompressionScheme, EpochObservation


class RateBasedScheme(CompressionScheme):
    """Algorithm 1: decisions from the application data rate only."""

    name = "DYNAMIC"

    def __init__(
        self,
        n_levels: int,
        alpha: float = DEFAULT_ALPHA,
        initial_level: int = 0,
    ) -> None:
        super().__init__(n_levels)
        self.model = DecisionModel(n_levels, alpha=alpha, initial_level=initial_level)

    @property
    def current_level(self) -> int:
        return self.model.current_level

    def on_epoch(self, obs: EpochObservation) -> int:
        # Deliberately blind to every displayed metric.
        return self.model.observe(obs.app_rate)

    def backoff_snapshot(self) -> list:
        return self.model.state.bck.snapshot()
