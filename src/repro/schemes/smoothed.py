"""Extension (negative result): rate-based scheme with an EWMA pre-filter.

The paper's algorithm compares raw consecutive epoch rates, which works
on the local cloud's mild jitter but (as the `ablate-metrics`
experiment quantifies) breaks under EC2-grade on/off fluctuation.

``SmoothedRateScheme`` was the obvious first fix: feed Algorithm 1 an
exponentially weighted moving average of the rate instead of the raw
epoch value.  **Measurement shows it does not help** (see the
`ext-memory` experiment): the filter must reset at level changes (the
old average describes a different operating point), so exactly the
comparisons that misfire under fluctuation — the first epochs after a
level change — still see raw noise.  The structural fix is per-level
memory (:class:`repro.schemes.memory.MemoryRateScheme`); this class is
kept as the documented negative-result baseline.
"""

from __future__ import annotations

from ..core.decision import DEFAULT_ALPHA, DecisionModel
from .base import CompressionScheme, EpochObservation


class SmoothedRateScheme(CompressionScheme):
    """Algorithm 1 over an EWMA of the application data rate."""

    name = "DYNAMIC-EWMA"

    def __init__(
        self,
        n_levels: int,
        alpha: float = DEFAULT_ALPHA,
        smoothing: float = 0.35,
        initial_level: int = 0,
    ) -> None:
        """``smoothing``: EWMA weight of the newest epoch (1.0 = raw)."""
        super().__init__(n_levels)
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be in (0, 1]")
        self.model = DecisionModel(n_levels, alpha=alpha, initial_level=initial_level)
        self.smoothing = smoothing
        self._ewma: float | None = None
        self._last_measured_level: int | None = None

    @property
    def current_level(self) -> int:
        return self.model.current_level

    def on_epoch(self, obs: EpochObservation) -> int:
        # The rate in ``obs`` was achieved at the level chosen at the
        # end of the previous epoch — i.e. the model's current level on
        # entry.  Reset the filter whenever that measurement level
        # differs from the previous measurement's: the old average
        # describes a different operating point, and smearing it in
        # would hide exactly the change Algorithm 1 must react to.
        measured_level = self.model.current_level
        if self._ewma is None or measured_level != self._last_measured_level:
            self._ewma = obs.app_rate
        else:
            self._ewma = (
                self.smoothing * obs.app_rate + (1 - self.smoothing) * self._ewma
            )
        self._last_measured_level = measured_level
        return self.model.observe(self._ewma)

    def backoff_snapshot(self) -> list:
        return self.model.state.bck.snapshot()
