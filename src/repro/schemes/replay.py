"""Record and replay observation traces through decision schemes.

Answers the operational question "what would scheme X have decided on
this workload?" without rerunning the workload: epoch observations from
a simulated or real transfer are serialized to JSON-lines, and any
:class:`~repro.schemes.base.CompressionScheme` can be replayed over
them offline.

Replay is *open-loop*: the recorded rates were achieved under the
original scheme's levels, so a replayed scheme sees the environment's
signals but does not get to change them.  That makes replay exact for
analyzing what a scheme *would have seen and chosen* at each recorded
step, and a quick first-order screen before a full (closed-loop)
simulation.

Trace format versions
---------------------

* **v1** — one :class:`EpochObservation` dict per line (the original
  seven fields).  Still loads: missing :class:`FlowView` fleet fields
  fill from their lone-flow defaults.
* **v2** (current) — one record per line with the full ``FlowView``
  under the observation keys, plus an optional ``"decision"``
  sub-object (the :class:`~repro.core.flowview.FlowDecision` the
  original scheme took at that step).  Recording decisions alongside
  views makes postmortem traces self-contained: a replay can be
  checked against what actually happened, not just against another
  replay.
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields
from typing import IO, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.flowview import FlowDecision
from ..sim.transfer import TransferResult
from .base import CompressionScheme, EpochObservation

#: Format marker written as the first line of every trace file.
HEADER = {"format": "repro-observation-trace", "version": 2}

#: Trace versions :func:`load_trace` accepts.
SUPPORTED_VERSIONS = (1, 2)

_VIEW_FIELDS = frozenset(f.name for f in fields(EpochObservation))


class TraceFormatError(Exception):
    """Raised on malformed trace files."""


def observations_from_result(result: TransferResult) -> List[EpochObservation]:
    """Extract the observation sequence a scheme saw during a transfer."""
    return [
        EpochObservation(
            now=epoch.end,
            epoch_seconds=epoch.end - epoch.start,
            app_rate=epoch.app_rate,
            displayed_cpu_util=epoch.vm_cpu_util,
            displayed_bandwidth=epoch.displayed_bandwidth,
            level=epoch.level,
        )
        for epoch in result.epochs
    ]


def decisions_from_result(result: TransferResult, flow_id: int = 0) -> List[FlowDecision]:
    """Extract the decision sequence actually taken during a transfer."""
    return [
        FlowDecision(
            flow_id=flow_id,
            epoch=i,
            level_before=epoch.level,
            level_after=epoch.next_level,
        )
        for i, epoch in enumerate(result.epochs)
    ]


def records_from_epochs(
    epochs: Iterable, flow_id: int = 0
) -> Tuple[List[EpochObservation], List[FlowDecision]]:
    """Convert a live controller's epoch trace into replayable records.

    Takes the :class:`~repro.core.controller.EpochRecord` sequence an
    :class:`~repro.core.controller.AdaptiveController` accumulated and
    returns the aligned ``(observations, decisions)`` pair that
    :func:`dump_trace` serializes as a v2 trace.  The serve daemon uses
    this to persist one trace file per flow at close.  Epoch records
    only hold what the controller measured — ``app_rate``, the paper's
    sole trusted signal — so the displayed VM metrics are zero in the
    resulting views.
    """
    observations: List[EpochObservation] = []
    decisions: List[FlowDecision] = []
    for rec in epochs:
        observations.append(
            EpochObservation(
                now=rec.end,
                epoch_seconds=rec.end - rec.start,
                app_rate=rec.app_rate,
                displayed_cpu_util=0.0,
                displayed_bandwidth=0.0,
                flow_id=flow_id,
                level=rec.level_before,
                app_bytes=float(rec.app_bytes),
            )
        )
        decisions.append(
            FlowDecision(
                flow_id=flow_id,
                epoch=rec.epoch,
                level_before=rec.level_before,
                level_after=rec.level_after,
            )
        )
    return observations, decisions


def dump_trace(
    observations: Iterable[EpochObservation],
    fp: IO[str],
    decisions: Optional[Sequence[FlowDecision]] = None,
) -> int:
    """Write observations (and optionally the decisions taken on them)
    as JSON-lines; returns the number of records written.

    When ``decisions`` is given it must align index-for-index with the
    observations; each record then carries a ``"decision"`` sub-object.
    """
    fp.write(json.dumps(HEADER) + "\n")
    count = 0
    for i, obs in enumerate(observations):
        record = asdict(obs)
        if decisions is not None:
            try:
                record["decision"] = asdict(decisions[i])
            except IndexError:
                raise TraceFormatError(
                    f"decision sequence shorter than observations (at index {i})"
                ) from None
        fp.write(json.dumps(record) + "\n")
        count += 1
    return count


def _parse_record(payload: dict) -> Tuple[EpochObservation, Optional[FlowDecision]]:
    decision_payload = payload.pop("decision", None)
    unknown = set(payload) - _VIEW_FIELDS
    if unknown:
        raise TypeError(f"unknown observation fields {sorted(unknown)}")
    obs = EpochObservation(**payload)
    decision = FlowDecision(**decision_payload) if decision_payload else None
    return obs, decision


def load_records(fp: IO[str]) -> Iterator[Tuple[EpochObservation, Optional[FlowDecision]]]:
    """Stream ``(observation, decision-or-None)`` pairs from a trace.

    Accepts both v1 traces (observations only; decision is ``None``)
    and v2 traces (which may carry recorded decisions).
    """
    header_line = fp.readline()
    if not header_line:
        raise TraceFormatError("empty trace file")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"bad header: {exc}") from exc
    if header.get("format") != HEADER["format"]:
        raise TraceFormatError(f"not an observation trace: {header!r}")
    if header.get("version") not in SUPPORTED_VERSIONS:
        raise TraceFormatError(f"unsupported trace version {header.get('version')}")
    for lineno, line in enumerate(fp, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            yield _parse_record(payload)
        except (json.JSONDecodeError, TypeError) as exc:
            raise TraceFormatError(f"bad record on line {lineno}: {exc}") from exc


def load_trace(fp: IO[str]) -> Iterator[EpochObservation]:
    """Stream observations back from a JSON-lines trace file (v1 or v2)."""
    for obs, _decision in load_records(fp):
        yield obs


def replay(
    observations: Sequence[EpochObservation] | Iterable[EpochObservation],
    scheme: CompressionScheme,
) -> List[int]:
    """Feed a trace through ``scheme``; return its level per epoch."""
    return [scheme.on_epoch(obs) for obs in observations]


def replay_decisions(
    observations: Sequence[EpochObservation] | Iterable[EpochObservation],
    scheme: CompressionScheme,
) -> List[FlowDecision]:
    """Feed a trace through ``scheme`` via the uniform ``decide`` path.

    Returns the full decision records; ``[d.level_after for d in ...]``
    equals :func:`replay` on a fresh scheme instance — the parity the
    hypothesis suite pins down.
    """
    return [scheme.decide(obs) for obs in observations]


def replay_many(
    observations: Sequence[EpochObservation],
    schemes: Sequence[CompressionScheme],
) -> dict[str, List[int]]:
    """Replay the same trace through several schemes (fresh decisions
    each; pass newly constructed scheme instances)."""
    observations = list(observations)
    return {scheme.name: replay(observations, scheme) for scheme in schemes}
