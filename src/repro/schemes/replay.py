"""Record and replay observation traces through decision schemes.

Answers the operational question "what would scheme X have decided on
this workload?" without rerunning the workload: epoch observations from
a simulated or real transfer are serialized to JSON-lines, and any
:class:`~repro.schemes.base.CompressionScheme` can be replayed over
them offline.

Replay is *open-loop*: the recorded rates were achieved under the
original scheme's levels, so a replayed scheme sees the environment's
signals but does not get to change them.  That makes replay exact for
analyzing what a scheme *would have seen and chosen* at each recorded
step, and a quick first-order screen before a full (closed-loop)
simulation.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import IO, Iterable, Iterator, List, Sequence

from ..sim.transfer import TransferResult
from .base import CompressionScheme, EpochObservation

#: Format marker written as the first line of every trace file.
HEADER = {"format": "repro-observation-trace", "version": 1}


class TraceFormatError(Exception):
    """Raised on malformed trace files."""


def observations_from_result(result: TransferResult) -> List[EpochObservation]:
    """Extract the observation sequence a scheme saw during a transfer."""
    return [
        EpochObservation(
            now=epoch.end,
            epoch_seconds=epoch.end - epoch.start,
            app_rate=epoch.app_rate,
            displayed_cpu_util=epoch.vm_cpu_util,
            displayed_bandwidth=epoch.displayed_bandwidth,
        )
        for epoch in result.epochs
    ]


def dump_trace(observations: Iterable[EpochObservation], fp: IO[str]) -> int:
    """Write observations as JSON-lines; returns the number written."""
    fp.write(json.dumps(HEADER) + "\n")
    count = 0
    for obs in observations:
        fp.write(json.dumps(asdict(obs)) + "\n")
        count += 1
    return count


def load_trace(fp: IO[str]) -> Iterator[EpochObservation]:
    """Stream observations back from a JSON-lines trace file."""
    header_line = fp.readline()
    if not header_line:
        raise TraceFormatError("empty trace file")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"bad header: {exc}") from exc
    if header.get("format") != HEADER["format"]:
        raise TraceFormatError(f"not an observation trace: {header!r}")
    if header.get("version") != HEADER["version"]:
        raise TraceFormatError(f"unsupported trace version {header.get('version')}")
    for lineno, line in enumerate(fp, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            yield EpochObservation(**payload)
        except (json.JSONDecodeError, TypeError) as exc:
            raise TraceFormatError(f"bad record on line {lineno}: {exc}") from exc


def replay(
    observations: Sequence[EpochObservation] | Iterable[EpochObservation],
    scheme: CompressionScheme,
) -> List[int]:
    """Feed a trace through ``scheme``; return its level per epoch."""
    return [scheme.on_epoch(obs) for obs in observations]


def replay_many(
    observations: Sequence[EpochObservation],
    schemes: Sequence[CompressionScheme],
) -> dict[str, List[int]]:
    """Replay the same trace through several schemes (fresh decisions
    each; pass newly constructed scheme instances)."""
    observations = list(observations)
    return {scheme.name: replay(observations, scheme) for scheme in schemes}
