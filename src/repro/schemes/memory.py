"""Extension: rate-based scheme with per-level rate memory.

Algorithm 1 compares the current epoch's rate against the *previous*
epoch's — across a level change that means comparing two different
levels under two different (possibly fluctuating) link states.  Under
EC2-grade fluctuation this misattributes link dips to level changes:
a transient dip at LIGHT makes a probe to MEDIUM look like an
improvement, MEDIUM's backoff grows, and the scheme ratchets into
over-compression (quantified in ``ablate-metrics``/``ext-memory``).

``MemoryRateScheme`` keeps an exponentially weighted estimate of the
application data rate *per level*, refreshed whenever the level is
visited, and moves only when a *fresh* neighbouring estimate beats the
current level's estimate by the margin.  Probing of stale neighbours
reuses the paper's exponential backoff.  The design goals are
preserved: no training phase, no displayed metrics — only measured
application data rates, now remembered per level instead of compared
pairwise.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..core.backoff import BackoffTable
from .base import CompressionScheme, EpochObservation


class MemoryRateScheme(CompressionScheme):
    """Move to the neighbouring level with the best remembered rate."""

    name = "DYNAMIC-MEM"

    def __init__(
        self,
        n_levels: int,
        margin: float = 0.1,
        ema_weight: float = 0.4,
        estimate_ttl_epochs: int = 12,
        initial_level: int = 0,
    ) -> None:
        """``margin``: relative advantage a neighbour needs to win.

        ``estimate_ttl_epochs``: estimates older than this (in epochs)
        are treated as unknown and must be re-probed before trusting.
        """
        super().__init__(n_levels)
        if margin < 0:
            raise ValueError("margin must be >= 0")
        if not 0 < ema_weight <= 1:
            raise ValueError("ema_weight must be in (0, 1]")
        if estimate_ttl_epochs < 1:
            raise ValueError("estimate_ttl_epochs must be >= 1")
        self.margin = margin
        self.ema_weight = ema_weight
        self.ttl = estimate_ttl_epochs
        self._level = initial_level
        self._epoch = 0
        self._estimate: Dict[int, float] = {}
        self._last_seen: Dict[int, int] = {}
        self._bck = BackoffTable(n_levels)
        self._stable_epochs = 0
        self._probe_up = True  # alternate probe direction, like `inc`

    @property
    def current_level(self) -> int:
        return self._level

    def backoff_snapshot(self) -> List[int]:
        return self._bck.snapshot()

    # -- estimate bookkeeping -----------------------------------------

    #: Maximum relative movement of an estimate per epoch.  A single
    #: outlier epoch (link outage) can then damage a level's estimate
    #: by at most 30 % instead of poisoning it outright; genuine
    #: changes still track within a few epochs.
    MAX_STEP = 0.3

    def _update_estimate(self, level: int, rate: float) -> None:
        old = self._estimate.get(level)
        if old is None or self._epoch - self._last_seen.get(level, -10**9) > self.ttl:
            self._estimate[level] = rate
        else:
            w = self.ema_weight
            candidate = w * rate + (1 - w) * old
            lo = old * (1.0 - self.MAX_STEP)
            hi = old * (1.0 + self.MAX_STEP)
            self._estimate[level] = min(max(candidate, lo), hi)
        self._last_seen[level] = self._epoch

    def _fresh_estimate(self, level: int) -> Optional[float]:
        if level not in self._estimate:
            return None
        if self._epoch - self._last_seen[level] > self.ttl:
            return None
        return self._estimate[level]

    def _neighbours(self) -> List[int]:
        return [
            lvl for lvl in (self._level - 1, self._level + 1) if 0 <= lvl < self.n_levels
        ]

    # -- decision -------------------------------------------------------

    def on_epoch(self, obs: EpochObservation) -> int:
        self._epoch += 1
        self._update_estimate(self._level, obs.app_rate)
        here = self._estimate[self._level]

        # 1. A fresh neighbour that clearly wins takes over immediately.
        best_level = self._level
        best_value = here * (1.0 + self.margin)
        for lvl in self._neighbours():
            value = self._fresh_estimate(lvl)
            if value is not None and value > best_value:
                best_level = lvl
                best_value = value
        if best_level != self._level:
            self._stable_epochs = 0
            self._level = best_level
            return self._level

        # 2. A fresh neighbour that clearly *loses* grows this level's
        #    backoff (it has just been checked; probe it less often).
        losing_neighbours = [
            lvl
            for lvl in self._neighbours()
            if (v := self._fresh_estimate(lvl)) is not None
            and v < here * (1.0 - self.margin)
        ]

        # 3. Otherwise stay, and occasionally probe a stale/unknown
        #    neighbour — the paper's optimistic switch, backoff-paced.
        self._stable_epochs += 1
        if self._stable_epochs >= self._bck.threshold(self._level):
            stale = [
                lvl for lvl in self._neighbours() if self._fresh_estimate(lvl) is None
            ]
            if stale:
                # Alternate direction among the stale candidates.
                stale.sort(reverse=self._probe_up)
                self._probe_up = not self._probe_up
                self._stable_epochs = 0
                self._level = stale[0]
                return self._level
            # Nothing stale to learn: every neighbour was recently
            # measured and lost — reward this level's backoff.
            if losing_neighbours:
                self._bck.reward(self._level)
            self._stable_epochs = 0
        return self._level
