"""Threshold decision model (Motgi & Mukherjee's NCTCSys style).

"The compression algorithm is chosen by evaluating a set of parameters
(e.g. network bandwidth, server load, number of clients connected),
which are gained from sensor modules." (Section V)

Reduced to its decision core: fixed bandwidth bands, tuned offline, map
the *displayed* available bandwidth to a level — fast links get light
compression, slow links get heavy compression.  Like the resource-based
scheme it inherits whatever error the displayed bandwidth carries, and
unlike the paper's scheme it never checks whether its choice helped.
"""

from __future__ import annotations

from typing import Sequence

from .base import CompressionScheme, EpochObservation


class ThresholdScheme(CompressionScheme):
    """Map displayed bandwidth onto levels via fixed cut-offs."""

    name = "THRESHOLD"

    def __init__(self, cutoffs: Sequence[float], initial_level: int = 0) -> None:
        """``cutoffs``: descending bandwidth boundaries (bytes/s).

        ``len(cutoffs) + 1`` levels: bandwidth above ``cutoffs[0]`` maps
        to level 0 (no compression), below ``cutoffs[-1]`` to the
        heaviest level.
        """
        if not cutoffs:
            raise ValueError("need at least one cutoff")
        if list(cutoffs) != sorted(cutoffs, reverse=True):
            raise ValueError("cutoffs must be strictly descending")
        if len(set(cutoffs)) != len(cutoffs):
            raise ValueError("cutoffs must be strictly descending")
        super().__init__(len(cutoffs) + 1)
        self.cutoffs = list(cutoffs)
        self._level = self._clamp(initial_level)

    @property
    def current_level(self) -> int:
        return self._level

    def on_epoch(self, obs: EpochObservation) -> int:
        level = len(self.cutoffs)  # slowest band -> heaviest level
        for i, cutoff in enumerate(self.cutoffs):
            if obs.displayed_bandwidth >= cutoff:
                level = i
                break
        self._level = level
        return self._level
