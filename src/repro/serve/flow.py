"""Per-connection transfer state machine for the serve event loop.

One :class:`Flow` instance tracks one accepted client connection from
handshake to teardown::

    HANDSHAKING --hello parsed--> STREAMING --client half-close-->
    DRAINING --codec jobs drained, trailer flushed--> CLOSED

A flow owns **no threads**.  All of its methods run on the server's
single event-loop thread, except the codec job bodies, which a codec
*executor* runs elsewhere: :class:`ThreadCodecExecutor` on the shared
:class:`~repro.core.pipeline.CodecThreadPool` (the default), or
:class:`ProcessCodecExecutor` on a
:class:`~repro.core.procpool.CodecProcessPool` shard whose worker
process compresses on another core entirely.  Either way completions
only touch the result dictionaries under the flow's lock and then call
the server's ``notify`` callback, so the loop thread remains the only
place where state advances.  The loop calls :meth:`handle_read` /
:meth:`handle_write` on selector readiness and :meth:`pump` after any
readiness or job completion; ``pump`` is idempotent and drives every
transition.

Ordering mirrors the pipelines in :mod:`repro.core.pipeline`: decode
and re-encode jobs complete on whatever worker frees up first, and the
flow reassembles both strictly in submission order, so the plaintext
CRC and (in echo mode) the response stream are deterministic
regardless of scheduling.  Backpressure is two-sided and per flow: the
flow stops reading its socket while ``decode_in_flight`` exceeds the
block window or the pending write queue exceeds the byte cap, which
lets TCP push back on a client outrunning the shared codec pool
without stalling anybody else's flow.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from enum import Enum
from typing import Callable, Deque, Dict, Optional, Tuple

from ..codecs.block import (
    FORMAT_VERSION,
    HEADER,
    HEADER_SIZE,
    MAGIC,
    EncodedBlock,
    decode_header,
    decode_payload,
    encode_block,
)
from ..codecs.errors import CodecError
from ..codecs.registry import DEFAULT_REGISTRY
from ..core.buffers import BufferPool
from ..core.controller import AdaptiveController
from ..core.levels import CompressionLevelTable
from ..core.pipeline import CodecThreadPool
from ..core.procpool import CodecProcessPool
from ..telemetry.events import BUS, TransferProgress
from ..telemetry.spans import span
from .protocol import (
    MODE_ECHO,
    MODE_SINK,
    ProtocolError,
    encode_control,
    parse_hello,
)

__all__ = ["Flow", "FlowState", "ProcessCodecExecutor", "ThreadCodecExecutor"]

#: Decoded application bytes between per-flow TransferProgress events.
PROGRESS_EVERY_BYTES = 8 * 1024 * 1024

#: Upper bound a client may request as the echo re-encode block size.
MAX_CLIENT_BLOCK_SIZE = 4 * 1024 * 1024


class FlowState(Enum):
    """Lifecycle of a served flow (see module docstring)."""

    HANDSHAKING = "handshaking"
    STREAMING = "streaming"
    DRAINING = "draining"
    CLOSED = "closed"


class ThreadCodecExecutor:
    """Run flows' codec jobs on a shared :class:`CodecThreadPool`.

    The default executor: jobs are closures over the flow's own
    ``_decode_job``/``_encode_job`` bodies, exactly the thread-pool
    contract the serve loop has always used.  ``owns_pool`` marks a
    pool this executor created (and must close) rather than one the
    caller shares across servers.
    """

    backend = "thread"

    def __init__(self, pool: CodecThreadPool, *, owns_pool: bool = False) -> None:
        self._pool = pool
        self._owns_pool = owns_pool

    @property
    def pool(self) -> CodecThreadPool:
        return self._pool

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def in_flight(self) -> int:
        return self._pool.in_flight

    def qsize(self) -> int:
        return self._pool.qsize()

    def stats(self) -> dict:
        stats = self._pool.stats()
        stats["backend"] = self.backend
        return stats

    def submit_decode(self, flow: "Flow", seq: int, header, payload) -> None:
        self._pool.submit(
            lambda index, seq=seq, header=header, payload=payload: flow._decode_job(
                index, seq, header, payload
            )
        )

    def submit_encode(self, flow: "Flow", seq: int, data, codec) -> None:
        self._pool.submit(
            lambda index, seq=seq, data=data, codec=codec: flow._encode_job(
                index, seq, data, codec
            )
        )

    def close(self) -> None:
        if self._owns_pool:
            self._pool.close()


class ProcessCodecExecutor:
    """Run flows' codec jobs on a :class:`CodecProcessPool` shard.

    The serve loop shards flows across several of these — one worker
    process each — so many concurrent flows compress and decompress on
    separate cores instead of time-slicing one GIL.  Results arrive
    on the pool's collector thread and complete into the owning flow
    exactly like thread-pool jobs (store under the flow lock, poke the
    loop's waker), so the flow state machine cannot tell the backends
    apart.

    A submission that the pool refuses (broken worker, closed pool)
    completes the job with the error instead of raising into the loop
    thread: the one flow fails with ``decode-error``/``encode-error``
    while every other flow keeps running.
    """

    backend = "process"

    def __init__(
        self,
        workers: int = 1,
        *,
        buffer_pool: BufferPool,
        name: str = "repro-serve-codec-proc",
    ) -> None:
        self._pool = CodecProcessPool(workers, name=name)
        self._buffer_pool = buffer_pool

    @property
    def pool(self) -> CodecProcessPool:
        return self._pool

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def in_flight(self) -> int:
        return self._pool.in_flight

    def qsize(self) -> int:
        return self._pool.qsize()

    def stats(self) -> dict:
        return self._pool.stats()

    def submit_decode(self, flow: "Flow", seq: int, header, payload) -> None:
        def on_done(exc, data, flow=flow, seq=seq):
            if exc is not None:
                flow._complete_decode(seq, exc)
            else:
                # The slab view dies with this callback; materialise.
                flow._complete_decode(
                    seq, data if isinstance(data, bytes) else bytes(data)
                )

        try:
            # check_crc=True: the flow parses raw frames itself, so
            # unlike the BlockReader path nothing upstream has CRC'd
            # this payload yet.
            self._pool.submit_decompress(
                header, payload.view, check_crc=True, on_done=on_done
            )
        except BaseException as exc:  # noqa: BLE001 - complete, don't raise
            flow._complete_decode(seq, exc)
        finally:
            # submit_decompress stages the payload into shared memory
            # synchronously, so the pool buffer can go back right away.
            payload.release()

    def submit_encode(self, flow: "Flow", seq: int, data, codec) -> None:
        def on_done(exc, header, payload, flow=flow, seq=seq):
            if exc is not None:
                flow._complete_encode(seq, exc)
            else:
                flow._complete_encode(seq, self._assemble(header, payload))

        try:
            self._pool.submit_compress(data, codec, on_done=on_done)
        except BaseException as exc:  # noqa: BLE001 - complete, don't raise
            flow._complete_encode(seq, exc)

    def _assemble(self, header, payload) -> EncodedBlock:
        """Frame a worker result into a pool-backed outgoing block.

        Runs on the collector thread while the slab view is still
        valid; the payload is copied exactly once, into the frame.
        """
        plen = header.compressed_len
        buf = self._buffer_pool.acquire(HEADER_SIZE + plen)
        frame = buf.view
        HEADER.pack_into(
            frame,
            0,
            MAGIC,
            FORMAT_VERSION,
            header.codec_id,
            header.flags,
            header.uncompressed_len,
            plen,
            header.crc32,
        )
        frame[HEADER_SIZE:] = payload
        return EncodedBlock(frame=frame, header=header, buf=buf)

    def close(self) -> None:
        self._pool.close()

    def terminate(self) -> None:
        self._pool.terminate()


class Flow:
    """State machine for one accepted connection (loop thread only)."""

    def __init__(
        self,
        flow_id: int,
        sock,
        peer: str,
        *,
        levels: CompressionLevelTable,
        codec_pool: CodecThreadPool,
        buffer_pool: BufferPool,
        notify: Callable[["Flow"], None],
        default_level: Optional[int] = None,
        default_block_size: int = 128 * 1024,
        epoch_seconds: float = 0.25,
        alpha: float = 0.2,
        max_inflight_blocks: int = 4,
        max_write_buffer: int = 1 << 20,
        max_block_len: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.flow_id = flow_id
        self.sock = sock
        self.peer = peer
        self.state = FlowState.HANDSHAKING
        self.mode = ""
        self._levels = levels
        self._registry = DEFAULT_REGISTRY
        # ``codec_pool`` may be a bare CodecThreadPool (the historical
        # contract, kept for callers and tests) or an executor that
        # already speaks submit_decode/submit_encode.
        if hasattr(codec_pool, "submit_decode"):
            self._executor = codec_pool
        else:
            self._executor = ThreadCodecExecutor(codec_pool)
        self._buffer_pool = buffer_pool
        self._notify = notify
        self._default_level = default_level
        self._default_block_size = default_block_size
        self._epoch_seconds = epoch_seconds
        self._alpha = alpha
        self._max_inflight = max_inflight_blocks
        self._base_max_inflight = max_inflight_blocks
        self._max_write_buffer = max_write_buffer
        self._max_block_len = max_block_len
        self._clock = clock

        self._lock = threading.Lock()
        self._rx = bytearray()
        self._eof = False
        #: seq -> bytes | BaseException (decode), filled by pool workers.
        self._decode_results: Dict[int, object] = {}
        self._decode_submitted = 0
        self._decode_emitted = 0
        #: seq -> EncodedBlock | BaseException (echo re-encode).
        self._encode_results: Dict[int, object] = {}
        self._encode_submitted = 0
        self._encode_emitted = 0
        #: (buffer, releasable-owner-or-None) pairs awaiting send.
        self._out: Deque[Tuple[object, Optional[object]]] = deque()
        self._out_offset = 0
        self._out_bytes = 0
        self._trailer_queued = False

        # Echo mode: per-flow adaptive scheme instance, created when
        # the hello names the mode (see _apply_hello).
        self.controller: Optional[AdaptiveController] = None
        self._echo_static_level: Optional[int] = None
        self._echo_block_size = default_block_size
        #: True once the hello carried an explicit ``level`` parameter;
        #: such flows keep the client's choice across config reloads.
        self._level_from_client = False

        # Fleet-control plane (server actuates via apply_control).
        self.control_weight = 1.0
        self._ctl_level: Optional[int] = None

        # Counters (loop thread only).
        self.wire_bytes_in = 0
        self.bytes_out = 0
        self.app_bytes = 0
        self.blocks_in = 0
        self.blocks_out = 0
        self.crc32 = 0
        self.opened_at = clock()
        self.last_activity = self.opened_at
        self._next_progress = PROGRESS_EVERY_BYTES
        # Rate-sample baseline for the control plane (loop thread only).
        self._rate_ts = self.opened_at
        self._rate_app = 0
        self._rate_wire = 0
        # Last closed rate window, for live gauges (/metrics, /flows).
        self.last_app_rate = 0.0
        self.last_ratio: Optional[float] = None

        self.failure: Optional[str] = None

    # -- readiness ---------------------------------------------------

    @property
    def decode_in_flight(self) -> int:
        return self._decode_submitted - self._decode_emitted

    @property
    def encode_in_flight(self) -> int:
        return self._encode_submitted - self._encode_emitted

    @property
    def wants_read(self) -> bool:
        if self._eof or self.state not in (FlowState.HANDSHAKING, FlowState.STREAMING):
            return False
        return (
            self.decode_in_flight < self._max_inflight
            and self._out_bytes < self._max_write_buffer
        )

    @property
    def wants_write(self) -> bool:
        return bool(self._out) and self.state is not FlowState.CLOSED

    @property
    def ok(self) -> bool:
        return self.failure is None

    # -- fleet control plane (loop thread) ---------------------------

    @property
    def echo_level(self) -> int:
        """The level this flow currently re-encodes at (0 for sink)."""
        if self._echo_static_level is not None:
            return self._echo_static_level
        return self.controller.current_level if self.controller is not None else 0

    def sample_rates(
        self, now: float, min_interval: float
    ) -> Optional[Tuple[float, Optional[float]]]:
        """Close one rate-sample window; ``(app_rate, wire_ratio)``.

        Returns ``None`` while less than ``min_interval`` has elapsed
        since the previous sample, and a ``None`` ratio when no
        application bytes moved in the window (nothing to measure).
        """
        dt = now - self._rate_ts
        if dt < min_interval:
            return None
        d_app = self.app_bytes - self._rate_app
        d_wire = self.wire_bytes_in - self._rate_wire
        self._rate_ts = now
        self._rate_app = self.app_bytes
        self._rate_wire = self.wire_bytes_in
        ratio = (d_wire / d_app) if d_app > 0 else None
        self.last_app_rate = d_app / dt
        self.last_ratio = ratio
        return self.last_app_rate, ratio

    def apply_control(self, level: Optional[int], weight: float) -> bool:
        """Apply a fleet assignment to this flow; True when it changed.

        ``level`` pins the echo re-encode level through the per-flow
        controller's override (``None`` returns it to adaptive);
        ``weight`` scales the decode window — the per-flow share of the
        shared codec substrate — around its configured baseline.  A
        change during STREAMING is announced to the client as an
        in-band ``{"ctl": "rebalance", ...}`` control frame.
        """
        changed = False
        if level != self._ctl_level:
            self._ctl_level = level
            if self.controller is not None:
                self.controller.set_level_override(level)
            changed = True
        if weight != self.control_weight:
            self.control_weight = weight
            self._max_inflight = max(1, round(self._base_max_inflight * weight))
            changed = True
        if changed and self.state is FlowState.STREAMING:
            self._queue(
                encode_control({"ctl": "rebalance", "level": level, "weight": weight})
            )
        return changed

    def reload_level(self, level: Optional[int]) -> bool:
        """Retune this live flow to a reloaded server default level.

        ``None`` means adaptive.  Flows whose hello named an explicit
        level keep the client's choice, and sink flows never encode —
        both return ``False``.  Echo flows are retuned through the
        per-flow controller's ``set_level_override`` (the same lever
        the fleet control plane actuates), so the adaptive scheme keeps
        learning open-loop and a later return to adaptive is seamless —
        the connection itself is never touched.
        """
        self._default_level = level
        if self._level_from_client or self.mode != MODE_ECHO:
            return False
        was_adaptive = self._echo_static_level is None and (
            self.controller is None or self.controller.level_override is None
        )
        before = None if was_adaptive else self.echo_level
        self._echo_static_level = None
        if self.controller is not None:
            self.controller.set_level_override(level)
        else:  # defensive: echo flows always carry a controller
            self._echo_static_level = level
        now_adaptive = level is None
        return (was_adaptive != now_adaptive) or (
            not now_adaptive and before != level
        )

    def status(self) -> Dict[str, object]:
        """Operational snapshot for the admin endpoint (best effort).

        All fields are scalar attribute reads, so calling this from the
        admin thread while the loop thread advances the flow yields a
        slightly torn but always well-formed picture.
        """
        controller = self.controller
        last_decision = None
        if controller is not None and controller.trace:
            rec = controller.trace[-1]
            last_decision = {
                "epoch": rec.epoch,
                "level_before": rec.level_before,
                "level_after": rec.level_after,
                "app_rate": rec.app_rate,
            }
        return {
            "flow_id": self.flow_id,
            "peer": self.peer,
            "mode": self.mode,
            "state": self.state.value,
            "ok": self.ok,
            "failure": self.failure,
            "level": self.echo_level,
            "adaptive": controller is not None and self._echo_static_level is None,
            "level_override": controller.level_override if controller else None,
            "worker_weight": self.control_weight,
            "app_rate": self.last_app_rate,
            "observed_ratio": self.last_ratio,
            "app_bytes": self.app_bytes,
            "wire_bytes_in": self.wire_bytes_in,
            "bytes_out": self.bytes_out,
            "blocks_in": self.blocks_in,
            "blocks_out": self.blocks_out,
            "decode_in_flight": self.decode_in_flight,
            "encode_in_flight": self.encode_in_flight,
            "write_queue_bytes": self._out_bytes,
            "age_seconds": self._clock() - self.opened_at,
            "epochs": len(controller.trace) if controller else 0,
            "last_decision": last_decision,
        }

    # -- socket side (loop thread) -----------------------------------

    def handle_read(self, chunk_bytes: int = 256 * 1024) -> None:
        """Pull available bytes off the socket into the parse buffer.

        Parsing happens in :meth:`pump` (which the loop always calls
        after readiness), so a burst of reads can never submit past the
        per-flow decode window, and an EOF with complete-but-unparsed
        frames still buffered is not mistaken for truncation.
        """
        if self._eof or self.state in (FlowState.DRAINING, FlowState.CLOSED):
            return
        try:
            data = self.sock.recv(chunk_bytes)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            self.fail(f"recv-error: {exc}")
            return
        self.last_activity = self._clock()
        if not data:
            self._eof = True
            if self.state is FlowState.HANDSHAKING:
                self.fail("eof-during-handshake")
            return
        self.wire_bytes_in += len(data)
        self._rx.extend(data)

    def handle_write(self, quantum: int = 256 * 1024) -> int:
        """Send up to ``quantum`` queued bytes; returns bytes sent.

        The quantum is the fairness unit: the server loop gives every
        writable flow one bounded turn per iteration, so a fat flow
        with a fast consumer cannot monopolise the loop thread.
        """
        sent_total = 0
        while self._out and sent_total < quantum:
            buf, owner = self._out[0]
            with memoryview(buf) as whole:
                view = whole[self._out_offset :]
                budget = min(view.nbytes, quantum - sent_total)
                try:
                    sent = self.sock.send(view[:budget])
                except (BlockingIOError, InterruptedError):
                    break
                except OSError as exc:
                    self.fail(f"send-error: {exc}")
                    return sent_total
                self._out_offset += sent
                sent_total += sent
                self.bytes_out += sent
                done = self._out_offset == whole.nbytes
            if done:
                self._out.popleft()
                self._out_offset = 0
                if owner is not None:
                    owner.release()
            if sent < budget:
                break
        if sent_total:
            self.last_activity = self._clock()
            self._out_bytes -= sent_total
        return sent_total

    # -- handshake ---------------------------------------------------

    def _parse_hello(self) -> None:
        parsed = parse_hello(self._rx)
        if parsed is None:
            return
        hello, consumed = parsed
        del self._rx[:consumed]
        self._apply_hello(hello.mode, hello.params)
        self._queue(encode_control({"ok": True, "flow_id": self.flow_id, "mode": self.mode}))
        self.state = FlowState.STREAMING

    def _apply_hello(self, mode: str, params: dict) -> None:
        self.mode = mode
        block_size = params.get("block_size", self._default_block_size)
        if not isinstance(block_size, int) or not 1 <= block_size <= MAX_CLIENT_BLOCK_SIZE:
            raise ProtocolError(f"bad block_size {block_size!r}")
        self._echo_block_size = block_size
        level = params.get("level", None)
        self._level_from_client = level is not None
        if level is None:
            self._echo_static_level = self._default_level
        elif level == "adaptive":
            self._echo_static_level = None
        elif isinstance(level, str):
            try:
                self._echo_static_level = self._levels.index_of(level)
            except (KeyError, ValueError) as exc:
                raise ProtocolError(f"unknown level {level!r}") from exc
        else:
            raise ProtocolError(f"bad level {level!r}")
        if mode == MODE_ECHO:
            # The per-flow adaptive scheme instance: each flow re-decides
            # its own re-encode level from its own achieved rate.
            self.controller = AdaptiveController(
                n_levels=len(self._levels),
                epoch_seconds=self._epoch_seconds,
                alpha=self._alpha,
                clock_start=self._clock(),
            )

    def _reject_handshake(self, reason: str) -> None:
        """Best-effort error control frame, then fail the flow."""
        try:
            self.sock.send(encode_control({"ok": False, "error": reason}))
        except OSError:
            pass
        self.fail(f"handshake-rejected: {reason}")

    # -- frame parsing / decode submission ---------------------------

    def _parse_frames(self) -> None:
        while True:
            if self.decode_in_flight >= self._max_inflight:
                return
            have = len(self._rx)
            if have < HEADER_SIZE:
                if have and not MAGIC.startswith(bytes(self._rx[: len(MAGIC)])):
                    raise ProtocolError(f"bad block magic {bytes(self._rx[:2])!r}")
                return
            header = decode_header(self._rx, max_len=self._max_block_len)
            need = HEADER_SIZE + header.compressed_len
            if have < need:
                return
            payload = self._buffer_pool.acquire(header.compressed_len)
            payload.view[:] = memoryview(self._rx)[HEADER_SIZE:need]
            del self._rx[:need]
            seq = self._decode_submitted
            self._decode_submitted += 1
            self._executor.submit_decode(self, seq, header, payload)

    # -- codec job bodies (pool worker threads) ----------------------

    def _decode_job(self, index: int, seq: int, header, payload) -> None:
        try:
            if BUS.active:
                codec = self._registry.get(header.codec_id).name
                with span("serve.decode", worker=index, codec=codec):
                    data = decode_payload(header, payload.view, self._registry)
            else:
                data = decode_payload(header, payload.view, self._registry)
        except BaseException as exc:  # noqa: BLE001 - latched into the flow
            result: object = exc
        else:
            result = data
        finally:
            payload.release()
        self._complete_decode(seq, result)

    def _encode_job(self, index: int, seq: int, data: bytes, codec) -> None:
        try:
            if BUS.active:
                with span("serve.encode", worker=index, codec=codec.name):
                    block = encode_block(data, codec, pool=self._buffer_pool)
            else:
                block = encode_block(data, codec, pool=self._buffer_pool)
        except BaseException as exc:  # noqa: BLE001 - latched into the flow
            result: object = exc
        else:
            result = block
        self._complete_encode(seq, result)

    # -- job completion (any worker/collector thread) ----------------

    def _complete_decode(self, seq: int, result: object) -> None:
        """Record one decode outcome (bytes or exception) and wake the loop."""
        with self._lock:
            self._decode_results[seq] = result
        self._notify(self)

    def _complete_encode(self, seq: int, result: object) -> None:
        """Record one encode outcome (block or exception) and wake the loop."""
        with self._lock:
            self._encode_results[seq] = result
        self._notify(self)

    # -- state advancement (loop thread) -----------------------------

    def pump(self) -> None:
        """Drain completed codec jobs in order and advance the state.

        Idempotent; called by the server loop after socket readiness
        and after every job-completion notification.
        """
        if self.state is FlowState.CLOSED:
            self._discard_results()
            return
        self._drain_decodes()
        if self.state is FlowState.CLOSED:
            return
        self._parse_buffered()
        if self.state is FlowState.CLOSED:
            return
        self._drain_encodes()
        if self.state is FlowState.CLOSED:
            return
        if (
            self.state is FlowState.DRAINING
            and not self._trailer_queued
            and self.decode_in_flight == 0
            and self.encode_in_flight == 0
        ):
            self._queue(encode_control(self._trailer_body()))
            self._trailer_queued = True
        if self._trailer_queued and not self._out:
            self.state = FlowState.CLOSED

    def _parse_buffered(self) -> None:
        """Parse buffered bytes as far as state and the window allow."""
        try:
            if self.state is FlowState.HANDSHAKING:
                self._parse_hello()
            if self.state is FlowState.STREAMING:
                self._parse_frames()
        except ProtocolError as exc:
            if self.state is FlowState.HANDSHAKING:
                self._reject_handshake(str(exc))
            else:
                self.fail(f"bad-frame: {exc}")
            return
        except CodecError as exc:
            self.fail(f"bad-frame: {exc}")
            return
        if self.state is FlowState.STREAMING and self._eof:
            if not self._rx:
                self.state = FlowState.DRAINING
            elif self.decode_in_flight < self._max_inflight:
                # Parsing stopped for lack of bytes, not backpressure:
                # the peer half-closed mid-frame.
                self.fail(f"truncated-frame-at-eof ({len(self._rx)} bytes)")

    def _drain_decodes(self) -> None:
        while True:
            with self._lock:
                if self._decode_emitted not in self._decode_results:
                    return
                result = self._decode_results.pop(self._decode_emitted)
            self._decode_emitted += 1
            if isinstance(result, BaseException):
                self.fail(f"decode-error: {result!r}")
                return
            data: bytes = result  # type: ignore[assignment]
            self.blocks_in += 1
            self.app_bytes += len(data)
            self.crc32 = zlib.crc32(data, self.crc32) & 0xFFFFFFFF
            if self.controller is not None:
                self.controller.record(len(data))
                self.controller.poll(self._clock())
            if BUS.active and self.app_bytes >= self._next_progress:
                self._next_progress = self.app_bytes + PROGRESS_EVERY_BYTES
                BUS.publish(
                    TransferProgress(
                        ts=BUS.now(),
                        source=f"serve.flow{self.flow_id}",
                        bytes_in=self.wire_bytes_in,
                        bytes_out=self.bytes_out,
                        ratio=self.wire_bytes_in / self.app_bytes
                        if self.app_bytes
                        else 1.0,
                    )
                )
            if self.mode == MODE_ECHO:
                self._submit_echo(data)

    def _submit_echo(self, data: bytes) -> None:
        if self._echo_static_level is not None:
            level = self._echo_static_level
        else:
            level = self.controller.current_level if self.controller else 0
        codec = self._levels.codec(level)
        seq = self._encode_submitted
        self._encode_submitted += 1
        self._executor.submit_encode(self, seq, data, codec)

    def _drain_encodes(self) -> None:
        while True:
            with self._lock:
                if self._encode_emitted not in self._encode_results:
                    return
                result = self._encode_results.pop(self._encode_emitted)
            self._encode_emitted += 1
            if isinstance(result, BaseException):
                self.fail(f"encode-error: {result!r}")
                return
            block = result
            self.blocks_out += 1
            self._queue(block.frame, owner=block)

    def _trailer_body(self) -> dict:
        return {
            "ok": True,
            "flow_id": self.flow_id,
            "mode": self.mode,
            "app_bytes": self.app_bytes,
            "wire_bytes_in": self.wire_bytes_in,
            "blocks_in": self.blocks_in,
            "blocks_out": self.blocks_out,
            "crc32": self.crc32,
            "epochs": len(self.controller.trace) if self.controller else 0,
        }

    # -- teardown ----------------------------------------------------

    def fail(self, reason: str) -> None:
        """Mark the flow failed and drop everything still queued."""
        if self.failure is None:
            self.failure = reason
        self.state = FlowState.CLOSED
        while self._out:
            _, owner = self._out.popleft()
            if owner is not None:
                owner.release()
        self._out_offset = 0
        self._out_bytes = 0
        self._discard_results()

    def _discard_results(self) -> None:
        """Release pool-backed results that will never be emitted."""
        with self._lock:
            decode_results, self._decode_results = self._decode_results, {}
            encode_results, self._encode_results = self._encode_results, {}
        self._decode_emitted += len(decode_results)
        self._encode_emitted += len(encode_results)
        for result in encode_results.values():
            if hasattr(result, "release"):
                result.release()

    # -- helpers -----------------------------------------------------

    def _queue(self, buf, owner: Optional[object] = None) -> None:
        self._out.append((buf, owner))
        self._out_bytes += memoryview(buf).nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Flow {self.flow_id} {self.mode or '?'} {self.state.value}"
            f" in={self.app_bytes} out={self.bytes_out}>"
        )
