"""Wire protocol of the transfer service.

A served flow speaks three frame kinds on one TCP connection:

* **Hello** (client → server, once): fixed 8-byte header followed by a
  small JSON parameter blob — ``<4sBBH`` packing magic ``b"RSRV"``,
  protocol version, mode id and the JSON length.  Parameters configure
  the *server* side of the flow (the echo re-encode level and block
  size); the client's own compression choices never need announcing
  because every block frame names its codec.
* **Control** (server → client): ``<4sI`` packing magic ``b"RCTL"``
  and a JSON body length.  Sent twice per flow: the admission ack
  right after the hello (``{"ok": true, "flow_id": n}`` or ``{"ok":
  false, "error": ...}``) and the final trailer carrying the server's
  byte/block counters and the CRC32 of the decoded plaintext — the
  client checks that CRC against its own to prove per-flow byte
  identity end to end.
* **Block frames**: the stock self-contained block format of
  :mod:`repro.codecs.block`, unchanged — the serve layer adds no
  per-block overhead, so a packed file, a ``run_socket_transfer``
  stream and a served flow all carry identical wire bytes for the same
  data and level schedule.

Frame parsers here are *incremental*: they take whatever bytes have
arrived, return ``None`` while the frame is incomplete, and
``(value, consumed)`` once it is — the shape an event-loop reader
needs.  Malformed input raises :class:`ProtocolError` immediately; a
server must be able to reject garbage without waiting for more of it.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

__all__ = [
    "HELLO_MAGIC",
    "CONTROL_MAGIC",
    "PROTOCOL_VERSION",
    "MODE_SINK",
    "MODE_ECHO",
    "HELLO",
    "CONTROL",
    "MAX_CONTROL_LEN",
    "Hello",
    "ProtocolError",
    "encode_hello",
    "parse_hello",
    "encode_control",
    "parse_control",
]

HELLO_MAGIC = b"RSRV"
CONTROL_MAGIC = b"RCTL"
PROTOCOL_VERSION = 1

#: The client streams blocks, the server decodes, counts and discards.
MODE_SINK = "sink"
#: The server re-encodes every decoded block (through the flow's own
#: adaptive scheme) and streams the frames back.
MODE_ECHO = "echo"

_MODE_IDS = {MODE_SINK: 1, MODE_ECHO: 2}
_MODE_NAMES = {v: k for k, v in _MODE_IDS.items()}

HELLO = struct.Struct("<4sBBH")
CONTROL = struct.Struct("<4sI")

#: Sanity bound on control-frame bodies; trailers are a few hundred
#: bytes, so anything bigger is a corrupt or hostile length field.
MAX_CONTROL_LEN = 1 << 20

Buf = Union[bytes, bytearray, memoryview]


class ProtocolError(RuntimeError):
    """The peer sent bytes that cannot be part of a valid frame."""


@dataclass(frozen=True)
class Hello:
    """A parsed client hello."""

    mode: str
    params: Dict[str, object] = field(default_factory=dict)


def encode_hello(mode: str, params: Optional[Dict[str, object]] = None) -> bytes:
    """Serialize a hello frame for ``mode`` with optional parameters."""
    if mode not in _MODE_IDS:
        raise ValueError(f"unknown mode {mode!r}")
    body = json.dumps(params or {}, separators=(",", ":")).encode()
    if len(body) > 0xFFFF:
        raise ValueError("hello parameters exceed 64 KiB")
    return HELLO.pack(HELLO_MAGIC, PROTOCOL_VERSION, _MODE_IDS[mode], len(body)) + body


def parse_hello(buf: Buf) -> Optional[Tuple[Hello, int]]:
    """Parse a hello from the head of ``buf``.

    Returns ``None`` while more bytes are needed, ``(hello,
    bytes_consumed)`` once complete; raises :class:`ProtocolError` for
    anything that can never become a valid hello.
    """
    view = memoryview(buf)
    if view.nbytes < HELLO.size:
        _check_magic_prefix(view, HELLO_MAGIC)
        return None
    magic, version, mode_id, body_len = HELLO.unpack_from(view, 0)
    if magic != HELLO_MAGIC:
        raise ProtocolError(f"bad hello magic {bytes(magic)!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    mode = _MODE_NAMES.get(mode_id)
    if mode is None:
        raise ProtocolError(f"unknown mode id {mode_id}")
    if view.nbytes < HELLO.size + body_len:
        return None
    params = _parse_json(view[HELLO.size : HELLO.size + body_len], "hello parameters")
    if not isinstance(params, dict):
        raise ProtocolError("hello parameters must be a JSON object")
    return Hello(mode=mode, params=params), HELLO.size + body_len


def encode_control(body: Dict[str, object]) -> bytes:
    """Serialize a control frame (admission ack or final trailer)."""
    payload = json.dumps(body, separators=(",", ":")).encode()
    if len(payload) > MAX_CONTROL_LEN:
        raise ValueError("control body too large")
    return CONTROL.pack(CONTROL_MAGIC, len(payload)) + payload


def parse_control(buf: Buf) -> Optional[Tuple[Dict[str, object], int]]:
    """Incremental counterpart of :func:`encode_control`.

    Same contract as :func:`parse_hello`: ``None`` while incomplete,
    ``(body, consumed)`` once whole, :class:`ProtocolError` on garbage.
    """
    view = memoryview(buf)
    if view.nbytes < CONTROL.size:
        _check_magic_prefix(view, CONTROL_MAGIC)
        return None
    magic, body_len = CONTROL.unpack_from(view, 0)
    if magic != CONTROL_MAGIC:
        raise ProtocolError(f"bad control magic {bytes(magic)!r}")
    if body_len > MAX_CONTROL_LEN:
        raise ProtocolError(f"control body claims {body_len} bytes")
    if view.nbytes < CONTROL.size + body_len:
        return None
    body = _parse_json(view[CONTROL.size : CONTROL.size + body_len], "control body")
    if not isinstance(body, dict):
        raise ProtocolError("control body must be a JSON object")
    return body, CONTROL.size + body_len


def _check_magic_prefix(view: memoryview, magic: bytes) -> None:
    """Fail fast on a partial frame whose first bytes already disagree.

    Without this, a peer that opens with garbage shorter than a header
    would park the connection in "need more bytes" forever.
    """
    prefix = view[: len(magic)].tobytes()
    if prefix and not magic.startswith(prefix):
        raise ProtocolError(f"bad frame prefix {prefix!r}")


def _parse_json(view: memoryview, what: str):
    try:
        return json.loads(view.tobytes().decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable {what}: {exc}") from exc
