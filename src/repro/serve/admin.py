"""Embedded admin/observability HTTP endpoint for the serve daemon.

:class:`AdminServer` wraps a running
:class:`~repro.serve.server.TransferServer` with a tiny stdlib
``http.server`` endpoint on a *separate* port, so operators can probe a
live daemon without speaking the block protocol:

* ``GET /metrics`` — Prometheus text exposition: every metric in the
  attached :class:`~repro.telemetry.metrics.MetricsRegistry` (when one
  is attached), plus server lifetime counters and one labelled gauge
  set per open flow (app-byte rate, observed ratio, level, worker
  weight, queue depths).  Label values go through
  :func:`~repro.telemetry.exporters.prom_label_escape`, so a hostile
  peer string cannot corrupt the exposition.
* ``GET /healthz`` — readiness/liveness JSON; HTTP 200 while the loop
  is live and accepting, 503 once draining/stopped or when a codec
  executor reports a broken worker.  The body carries the suppressed
  internal-error tallies (see ``TransferServer._internal_error``).
* ``GET /flows`` — JSON snapshot of every flow's state machine and its
  controller's last decision.
* ``POST /reload`` — hot config reload: a JSON body of reloadable keys
  is validated and handed to ``TransferServer.request_reload``; an
  empty body re-reads the daemon's config file when one was given
  (``config_source``).  400 on invalid input, nothing applied.

The endpoint runs request handlers on daemon threads
(``ThreadingHTTPServer``), and everything it reads from the transfer
server is a snapshot-style accessor designed for cross-thread reads —
a scrape never blocks the event loop.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional

from ..telemetry.exporters import (
    PrometheusTextExporter,
    prom_label_escape,
    prom_number,
)
from ..telemetry.metrics import MetricsRegistry

__all__ = ["AdminServer"]

logger = logging.getLogger("repro.serve.admin")

#: (metric suffix, flow-status key, help) for the per-flow gauge set.
FLOW_GAUGES = (
    ("flow_app_rate_bytes_per_second", "app_rate", "decoded app-byte rate"),
    ("flow_observed_ratio", "observed_ratio", "wire/app ratio, last window"),
    ("flow_level", "level", "current echo re-encode level"),
    ("flow_worker_weight", "worker_weight", "fleet codec share"),
    ("flow_decode_in_flight", "decode_in_flight", "decode jobs in flight"),
    ("flow_encode_in_flight", "encode_in_flight", "encode jobs in flight"),
    ("flow_write_queue_bytes", "write_queue_bytes", "bytes queued to send"),
)


class AdminServer:
    """Admin HTTP endpoint bound to one :class:`TransferServer`.

    Usage::

        admin = AdminServer(server, port=9100, registry=session.registry)
        admin.start()
        ...
        admin.close()

    ``registry`` is optional: without one, ``/metrics`` still exposes
    the server- and flow-level series derived from live state.
    ``config_source`` (a callable returning a change dict) backs the
    empty-body ``POST /reload`` — typically a closure re-reading the
    daemon's ``--config`` file.
    """

    def __init__(
        self,
        server,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[MetricsRegistry] = None,
        config_source: Optional[Callable[[], Dict[str, object]]] = None,
    ) -> None:
        self._server = server
        self.registry = registry
        self._config_source = config_source
        admin = self

        class Handler(BaseHTTPRequestHandler):
            # One daemon, one admin endpoint: close over the AdminServer
            # instead of threading state through ThreadingHTTPServer.
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                admin._get(self)

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                admin._post(self)

            def log_message(self, format: str, *args) -> None:
                logger.debug("%s %s", self.address_string(), format % args)

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.address = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------

    def start(self) -> "AdminServer":
        if self._thread is not None:
            raise RuntimeError("admin server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-admin",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "AdminServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- rendering ---------------------------------------------------

    def render_metrics(self) -> str:
        """The full ``/metrics`` payload (exposition text format)."""
        parts: List[str] = []
        if self.registry is not None:
            parts.append(PrometheusTextExporter(self.registry).render())
        parts.append(self._render_server_metrics())
        parts.append(self._render_flow_metrics())
        return "".join(part for part in parts if part)

    def _render_server_metrics(self) -> str:
        status = self._server.status()
        lines: List[str] = []

        def counter(name: str, value) -> None:
            lines.append(f"# TYPE repro_serve_{name} counter")
            lines.append(f"repro_serve_{name} {prom_number(value)}")

        def gauge(name: str, value) -> None:
            lines.append(f"# TYPE repro_serve_{name} gauge")
            lines.append(f"repro_serve_{name} {prom_number(value)}")

        gauge("up", 0.0 if status["closed"] else 1.0)
        gauge("uptime_seconds", status["uptime_seconds"])
        gauge("draining", 1.0 if status["draining"] else 0.0)
        gauge("active_flows", status["active_flows"])
        counter("flows_accepted_total", status["flows_accepted"])
        counter("flows_rejected_total", status["flows_rejected"])
        counter("flows_completed_total", status["flows_completed"])
        counter("flows_failed_total", status["flows_failed"])
        counter("reloads_total", status["reloads"])
        counter("internal_errors_total", status["internal_errors"])
        sites: Dict[str, int] = status["internal_error_sites"]  # type: ignore[assignment]
        if sites:
            lines.append("# TYPE repro_serve_internal_errors counter")
            for site, count in sorted(sites.items()):
                lines.append(
                    f'repro_serve_internal_errors{{site="{prom_label_escape(site)}"}}'
                    f" {prom_number(count)}"
                )
        codec: Dict[str, object] = status["codec"]  # type: ignore[assignment]
        gauge("codec_queue_depth", codec["queued"])
        gauge("codec_workers", codec["workers"])
        counter("codec_jobs_submitted_total", codec["jobs_submitted"])
        counter("codec_jobs_completed_total", codec["jobs_completed"])
        counter("codec_job_failures_total", codec["job_failures"])
        return "\n".join(lines) + "\n"

    def _render_flow_metrics(self) -> str:
        flows = self._server.flows_snapshot()
        if not flows:
            return ""
        lines: List[str] = []
        for suffix, key, help_text in FLOW_GAUGES:
            lines.append(f"# HELP repro_serve_{suffix} {help_text}")
            lines.append(f"# TYPE repro_serve_{suffix} gauge")
            for flow in flows:
                value = flow.get(key)
                if value is None:
                    continue  # e.g. no ratio window closed yet
                labels = (
                    f'flow_id="{flow["flow_id"]}"'
                    f',peer="{prom_label_escape(flow["peer"])}"'
                    f',mode="{prom_label_escape(flow["mode"])}"'
                )
                lines.append(
                    f"repro_serve_{suffix}{{{labels}}} {prom_number(value)}"
                )
        return "\n".join(lines) + "\n"

    # -- request handling (admin endpoint threads) -------------------

    def _get(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.render_metrics().encode("utf-8")
            self._respond(
                request, 200, body, "text/plain; version=0.0.4; charset=utf-8"
            )
        elif path == "/healthz":
            ready, detail = self._server.healthz()
            self._respond_json(request, 200 if ready else 503, detail)
        elif path == "/flows":
            flows = self._server.flows_snapshot()
            self._respond_json(request, 200, {"count": len(flows), "flows": flows})
        elif path in ("/", "/status"):
            self._respond_json(request, 200, self._server.status())
        else:
            self._respond_json(request, 404, {"error": f"no such path {path!r}"})

    def _post(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path != "/reload":
            self._respond_json(request, 404, {"error": f"no such path {path!r}"})
            return
        length = int(request.headers.get("Content-Length") or 0)
        raw = request.rfile.read(length) if length else b""
        try:
            if raw.strip():
                changes = json.loads(raw)
                if not isinstance(changes, dict):
                    raise ValueError("reload body must be a JSON object")
            elif self._config_source is not None:
                changes = self._config_source()
            else:
                raise ValueError(
                    "empty reload body and no config file to re-read"
                )
            normalized = self._server.request_reload(changes)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            self._respond_json(request, 400, {"ok": False, "error": str(exc)})
            return
        self._respond_json(request, 200, {"ok": True, "queued": normalized})

    def _respond_json(
        self, request: BaseHTTPRequestHandler, code: int, payload: dict
    ) -> None:
        body = json.dumps(payload, indent=2, default=str).encode("utf-8")
        self._respond(request, code, body, "application/json")

    def _respond(
        self,
        request: BaseHTTPRequestHandler,
        code: int,
        body: bytes,
        content_type: str,
    ) -> None:
        try:
            request.send_response(code)
            request.send_header("Content-Type", content_type)
            request.send_header("Content-Length", str(len(body)))
            request.end_headers()
            request.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # scraper went away mid-response; nothing to salvage
