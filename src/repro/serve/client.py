"""Client helper for the transfer service.

:class:`ServeClient` speaks the :mod:`repro.serve.protocol` handshake
and then reuses the stock stream writers
(:class:`~repro.core.stream.AdaptiveBlockWriter` /
:class:`~repro.core.stream.StaticBlockWriter`) over a
:class:`~repro.io.sockets.VectoredSocketWriter`, so a served upload
puts byte-identical frames on the wire as any other transport in this
repo.  Two verbs map to the two server modes:

* :meth:`ServeClient.upload` — stream data to the server's sink and
  check the trailer's plaintext CRC32 against the locally computed one
  (end-to-end byte-identity proof without the server storing a byte).
* :meth:`ServeClient.echo` — stream data up while the server re-encodes
  every decoded block through the flow's own adaptive scheme and
  streams it back; the client decodes the return stream and verifies
  both directions.

Admission rejections surface as :class:`FlowRejectedError`; anything
malformed on the wire as :class:`ServeProtocolError`.
"""

from __future__ import annotations

import socket
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple, Union

from ..codecs.block import HEADER_SIZE, MAGIC, decode_header, decode_payload
from ..codecs.registry import DEFAULT_REGISTRY
from ..core.levels import CompressionLevelTable, default_level_table
from ..core.stream import AdaptiveBlockWriter, StaticBlockWriter
from ..io.sockets import VectoredSocketWriter
from .protocol import (
    CONTROL_MAGIC,
    MODE_ECHO,
    MODE_SINK,
    ProtocolError,
    encode_hello,
    parse_control,
)

__all__ = [
    "ServeClient",
    "FlowResult",
    "ServeError",
    "FlowRejectedError",
    "ServeProtocolError",
]

_CHUNK = 256 * 1024


class ServeError(RuntimeError):
    """Base class for client-visible serve failures."""


class FlowRejectedError(ServeError):
    """The server refused admission (capacity, draining, bad hello)."""


class ServeProtocolError(ServeError):
    """The server sent bytes that violate the protocol or the CRC."""


@dataclass
class FlowResult:
    """Outcome of one client-side flow, both directions verified."""

    flow_id: int
    mode: str
    app_bytes: int  #: plaintext bytes streamed up
    wire_bytes_sent: int  #: framed bytes put on the socket
    wire_bytes_received: int  #: framed bytes read back (echo mode)
    seconds: float
    trailer: Dict[str, object] = field(default_factory=dict)
    data: Optional[bytes] = None  #: echoed plaintext (echo mode only)
    #: In-band ``{"ctl": ...}`` frames the server pushed mid-flow
    #: (fleet-controller rebalances), in arrival order.
    controls: list = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        """Upload wire bytes over plaintext bytes (≤ 1 when it helped)."""
        return self.wire_bytes_sent / self.app_bytes if self.app_bytes else 1.0


class _SocketBuf:
    """Tiny buffered reader over a blocking socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buf = bytearray()
        self.total_read = 0

    def _fill(self) -> bool:
        chunk = self._sock.recv(_CHUNK)
        if not chunk:
            return False
        self._buf.extend(chunk)
        self.total_read += len(chunk)
        return True

    def peek(self, n: int) -> bytes:
        while len(self._buf) < n:
            if not self._fill():
                break
        return bytes(self._buf[:n])

    def read_exact(self, n: int, what: str) -> bytes:
        while len(self._buf) < n:
            if not self._fill():
                raise ServeProtocolError(
                    f"connection closed mid-{what} ({len(self._buf)}/{n} bytes)"
                )
        out = bytes(self._buf[:n])
        del self._buf[:n]
        return out

    def read_control(self, what: str) -> Dict[str, object]:
        while True:
            try:
                parsed = parse_control(self._buf)
            except ProtocolError as exc:
                raise ServeProtocolError(f"bad {what}: {exc}") from exc
            if parsed is not None:
                body, consumed = parsed
                del self._buf[:consumed]
                return body
            if not self._fill():
                raise ServeProtocolError(f"connection closed before {what}")


def _iter_chunks(source: Union[bytes, bytearray, memoryview, Iterable[bytes]]):
    if isinstance(source, (bytes, bytearray, memoryview)):
        view = memoryview(source)
        for offset in range(0, view.nbytes, _CHUNK):
            yield view[offset : offset + _CHUNK]
    elif hasattr(source, "read"):
        while True:
            chunk = source.read(_CHUNK)
            if not chunk:
                return
            yield chunk
    else:
        yield from source


class ServeClient:
    """Connect-per-flow client for a :class:`~repro.serve.TransferServer`.

    One :class:`ServeClient` is cheap and stateless between calls; it
    can drive any number of sequential flows, and independent instances
    (or threads) drive concurrent ones.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        levels: Optional[CompressionLevelTable] = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.levels = levels or default_level_table()
        self.timeout = timeout

    # -- public verbs ------------------------------------------------

    def upload(
        self,
        source,
        *,
        level: Union[str, int] = "adaptive",
        block_size: int = 128 * 1024,
        workers: int = 1,
        epoch_seconds: float = 0.25,
    ) -> FlowResult:
        """Stream ``source`` to the server sink; verify the trailer CRC."""
        t0 = time.monotonic()
        sock = self._connect()
        try:
            buf, ack = self._handshake(sock, MODE_SINK, {})
            crc, app_bytes, sent = self._stream_up(
                sock, source, level, block_size, workers, epoch_seconds
            )
            trailer, controls = self._read_trailer(buf)
            self._check_trailer(trailer, crc, app_bytes)
            return FlowResult(
                flow_id=int(ack.get("flow_id", 0)),
                mode=MODE_SINK,
                app_bytes=app_bytes,
                wire_bytes_sent=sent,
                wire_bytes_received=buf.total_read,
                seconds=time.monotonic() - t0,
                trailer=trailer,
                controls=controls,
            )
        finally:
            sock.close()

    def echo(
        self,
        source,
        *,
        server_level: Optional[str] = None,
        server_block_size: Optional[int] = None,
        level: Union[str, int] = "adaptive",
        block_size: int = 128 * 1024,
        workers: int = 1,
        epoch_seconds: float = 0.25,
        collect: bool = True,
    ) -> FlowResult:
        """Round-trip ``source`` through the server's re-encode path.

        The upload runs on a helper thread while this thread decodes
        the return stream, so both directions make progress and the
        server's per-flow write backpressure never deadlocks the
        client.  With ``collect=False`` the echoed plaintext is CRC
        checked but not accumulated (for large soak runs).
        """
        params: Dict[str, object] = {}
        if server_level is not None:
            params["level"] = server_level
        if server_block_size is not None:
            params["block_size"] = server_block_size
        t0 = time.monotonic()
        sock = self._connect()
        try:
            buf, ack = self._handshake(sock, MODE_ECHO, params)
            up: Dict[str, object] = {}
            failures: list = []

            def _sender() -> None:
                try:
                    up["result"] = self._stream_up(
                        sock, source, level, block_size, workers, epoch_seconds
                    )
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    failures.append(exc)

            sender = threading.Thread(target=_sender, name="repro-serve-echo-up")
            sender.start()
            try:
                echoed, echo_crc, trailer, controls = self._read_echo(buf, collect)
            finally:
                sender.join()
            if failures:
                raise failures[0]
            crc, app_bytes, sent = up["result"]  # type: ignore[misc]
            self._check_trailer(trailer, crc, app_bytes)
            if echo_crc != crc:
                raise ServeProtocolError(
                    f"echoed plaintext CRC {echo_crc:#010x} != sent {crc:#010x}"
                )
            return FlowResult(
                flow_id=int(ack.get("flow_id", 0)),
                mode=MODE_ECHO,
                app_bytes=app_bytes,
                wire_bytes_sent=sent,
                wire_bytes_received=buf.total_read,
                seconds=time.monotonic() - t0,
                trailer=trailer,
                data=echoed,
                controls=controls,
            )
        finally:
            sock.close()

    # -- plumbing ----------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        sock.settimeout(self.timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        return sock

    def _handshake(
        self, sock: socket.socket, mode: str, params: Dict[str, object]
    ) -> Tuple[_SocketBuf, Dict[str, object]]:
        sock.sendall(encode_hello(mode, params))
        buf = _SocketBuf(sock)
        try:
            ack = buf.read_control("admission ack")
        except ServeProtocolError as exc:
            # A close/reset before the ack is the observable shape of a
            # reject that lost the race with our hello bytes.
            raise FlowRejectedError(f"no admission ack: {exc}") from exc
        except ConnectionError as exc:
            raise FlowRejectedError(f"connection dropped during handshake: {exc}") from exc
        if not ack.get("ok", False):
            raise FlowRejectedError(str(ack.get("error", "rejected")))
        return buf, ack

    def _resolve_level(self, level: Union[str, int]) -> Optional[int]:
        """``None`` means adaptive; an int is a static level index."""
        if level == "adaptive":
            return None
        if isinstance(level, str):
            return self.levels.index_of(level)
        if not 0 <= int(level) < len(self.levels):
            raise ValueError(f"level {level} out of range")
        return int(level)

    def _stream_up(
        self,
        sock: socket.socket,
        source,
        level: Union[str, int],
        block_size: int,
        workers: int,
        epoch_seconds: float,
    ) -> Tuple[int, int, int]:
        """Stream source as framed blocks; returns (crc, app_bytes, wire)."""
        static_level = self._resolve_level(level)
        sink = VectoredSocketWriter(sock)
        if static_level is None:
            writer = AdaptiveBlockWriter(
                sink,
                self.levels,
                block_size=block_size,
                epoch_seconds=epoch_seconds,
                workers=workers,
            )
        else:
            writer = StaticBlockWriter(
                sink, static_level, self.levels, block_size=block_size, workers=workers
            )
        crc = 0
        app_bytes = 0
        try:
            for chunk in _iter_chunks(source):
                crc = zlib.crc32(chunk, crc) & 0xFFFFFFFF
                app_bytes += len(chunk)
                writer.write(chunk)
            writer.close()
        except BaseException:
            writer.abort()
            raise
        sock.shutdown(socket.SHUT_WR)
        return crc, app_bytes, writer.bytes_out

    def _read_echo(
        self, buf: _SocketBuf, collect: bool
    ) -> Tuple[Optional[bytes], int, Dict[str, object], list]:
        """Decode interleaved block frames until the trailer control.

        Mid-flow ``{"ctl": ...}`` control frames (fleet rebalances) are
        collected, not treated as the trailer.
        """
        chunks: list = []
        controls: list = []
        crc = 0
        while True:
            prefix = buf.peek(len(CONTROL_MAGIC))
            if not prefix:
                raise ServeProtocolError("connection closed before trailer")
            if prefix.startswith(MAGIC):
                raw = buf.read_exact(HEADER_SIZE, "block header")
                header = decode_header(raw)
                payload = buf.read_exact(header.compressed_len, "block payload")
                data = decode_payload(header, payload, DEFAULT_REGISTRY)
                crc = zlib.crc32(data, crc) & 0xFFFFFFFF
                if collect:
                    chunks.append(data)
            elif prefix == CONTROL_MAGIC:
                body = buf.read_control("control frame")
                if "ctl" in body:
                    controls.append(body)
                    continue
                return (b"".join(chunks) if collect else None), crc, body, controls
            else:
                raise ServeProtocolError(f"unexpected frame prefix {prefix!r}")

    @staticmethod
    def _read_trailer(buf: _SocketBuf) -> Tuple[Dict[str, object], list]:
        """Read control frames until the trailer, collecting ctl pushes."""
        controls: list = []
        while True:
            body = buf.read_control("trailer")
            if "ctl" not in body:
                return body, controls
            controls.append(body)

    @staticmethod
    def _check_trailer(trailer: Dict[str, object], crc: int, app_bytes: int) -> None:
        if not trailer.get("ok", False):
            raise ServeProtocolError(f"server reported failure: {trailer!r}")
        if trailer.get("app_bytes") != app_bytes:
            raise ServeProtocolError(
                f"server decoded {trailer.get('app_bytes')} bytes, sent {app_bytes}"
            )
        if trailer.get("crc32") != crc:
            raise ServeProtocolError(
                f"server CRC {trailer.get('crc32')} != local {crc:#010x}"
            )
