"""repro.serve — high-concurrency transfer service for adaptive flows.

The paper's scenario is many tenants pushing compressed streams through
one shared, fluctuating I/O bottleneck.  ``run_socket_transfer`` serves
exactly one flow with dedicated threads; this package is the *many
flows, one daemon* counterpart:

* :mod:`~repro.serve.server` — :class:`TransferServer`, a
  selector-based event loop that accepts, reads and writes every
  concurrent flow on one thread, with admission control, per-flow
  fairness and graceful drain.  All flows share one
  :class:`~repro.core.pipeline.CodecThreadPool` and one
  :class:`~repro.core.buffers.BufferPool`; accepting another flow
  never creates another thread.  ``codec_backend="process"`` shards
  flows across single-worker
  :class:`~repro.core.procpool.CodecProcessPool` executors instead, so
  concurrent flows compress on separate cores.
* :mod:`~repro.serve.flow` — :class:`Flow`, the per-connection state
  machine (handshaking → streaming → draining → closed), each with its
  own :class:`~repro.core.controller.AdaptiveController` instance in
  echo mode.
* :mod:`~repro.serve.protocol` — the hello/control wire framing around
  the stock block frames of :mod:`repro.codecs.block`.
* :mod:`~repro.serve.client` — :class:`ServeClient`, which uploads (or
  round-trips) data through a daemon and verifies per-flow byte
  identity via the trailer's plaintext CRC32.
* :mod:`~repro.serve.admin` — :class:`AdminServer`, the embedded
  observability endpoint (``/metrics``, ``/healthz``, ``/flows``,
  ``POST /reload``) on a separate port; see ``docs/operations.md``.

Start a daemon with ``repro-compress serve`` or in-process::

    from repro.serve import ServeClient, ServeConfig, TransferServer

    with TransferServer(ServeConfig(port=0)) as server:
        host, port = server.address
        result = ServeClient(host, port).upload(b"x" * 10_000_000)
        assert result.trailer["ok"]
"""

from .admin import AdminServer
from .client import (
    FlowRejectedError,
    FlowResult,
    ServeClient,
    ServeError,
    ServeProtocolError,
)
from .flow import Flow, FlowState, ProcessCodecExecutor, ThreadCodecExecutor
from .protocol import (
    MODE_ECHO,
    MODE_SINK,
    PROTOCOL_VERSION,
    Hello,
    ProtocolError,
    encode_control,
    encode_hello,
    parse_control,
    parse_hello,
)
from .server import RELOADABLE_KEYS, ServeConfig, TransferServer

__all__ = [
    "TransferServer",
    "ServeConfig",
    "AdminServer",
    "RELOADABLE_KEYS",
    "ServeClient",
    "FlowResult",
    "ServeError",
    "FlowRejectedError",
    "ServeProtocolError",
    "Flow",
    "FlowState",
    "ThreadCodecExecutor",
    "ProcessCodecExecutor",
    "Hello",
    "ProtocolError",
    "MODE_SINK",
    "MODE_ECHO",
    "PROTOCOL_VERSION",
    "encode_hello",
    "parse_hello",
    "encode_control",
    "parse_control",
]
