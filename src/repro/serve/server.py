"""Selector-based connection manager multiplexing many adaptive flows.

:class:`TransferServer` is the daemon side of the serve subsystem: one
event-loop thread owns every socket (listener + all accepted flows) via
``selectors.DefaultSelector``, and one shared
:class:`~repro.core.pipeline.CodecThreadPool` plus one shared
:class:`~repro.core.buffers.BufferPool` execute the codec work of *all*
flows.  Accepting the 17th flow therefore costs a socket and a
:class:`~repro.serve.flow.Flow` object — never another thread, which is
what lets one daemon hold the paper's "many concurrent transfers on one
shared bottleneck" scenario without thread-per-transfer explosion.

``codec_backend="process"`` swaps the shared thread pool for per-core
stream sharding: ``codec_shards`` single-worker
:class:`~repro.core.procpool.CodecProcessPool` executors
(:class:`~repro.serve.flow.ProcessCodecExecutor`), with flows assigned
``flow_id % shards``.  Codec bytes then cross to the worker processes
via shared-memory slabs and the GIL stops serialising concurrent
flows' compression.  Where shared memory is unavailable the daemon
degrades to the thread pool with a one-time warning.

Responsibilities split cleanly:

* the **flow** (``flow.py``) parses frames, submits codec jobs, and
  reassembles results in order;
* the **server** (this module) decides *who runs when*: admission
  control at accept time (max-flows cap plus shared-queue depth
  backpressure), round-robin write scheduling with a per-turn byte
  quantum so no flow monopolises the loop, selector interest updates
  driven by each flow's ``wants_read``/``wants_write``, and graceful
  drain — stop accepting, finish in-flight flows, then exit (with a
  deadline after which stragglers are force-closed).

Worker threads never touch sockets or the selector; when a codec job
completes they enqueue the flow on a pending list and poke a waker
socketpair, and the loop thread pumps the flow on its next pass.  Every
lifecycle edge publishes telemetry (``FlowAccepted`` / ``FlowClosed`` /
``FlowRejected``) alongside shared-pool counter snapshots
(``PipelineQueueDepth``, ``BufferPoolStats``), all guarded on
``BUS.active`` so an un-instrumented daemon pays nothing.
"""

from __future__ import annotations

import logging
import os
import selectors
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from itertools import count
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..control import Assignment, FleetController, make_policy
from ..core.buffers import BufferPool
from ..core.levels import CompressionLevelTable, default_level_table
from ..core.pipeline import CodecThreadPool
from ..core.procpool import ProcessBackendUnavailable, _warn_fallback, resolve_backend
from ..io.sockets import DEFAULT_BACKLOG, open_listener
from ..telemetry.events import (
    BUS,
    BufferPoolStats,
    ConfigReloaded,
    FlowAccepted,
    FlowClosed,
    FlowRates,
    FlowRejected,
    PipelineQueueDepth,
    ServeInternalError,
)
from .flow import Flow, FlowState, ProcessCodecExecutor, ThreadCodecExecutor
from .protocol import encode_control

__all__ = ["RELOADABLE_KEYS", "ServeConfig", "TransferServer"]

logger = logging.getLogger("repro.serve")

#: Config keys :meth:`TransferServer.request_reload` accepts.
RELOADABLE_KEYS = (
    "level",
    "policy",
    "control_interval",
    "idle_timeout",
    "max_flows",
    "max_queued_jobs",
)


def _default_workers() -> int:
    return max(2, min(4, os.cpu_count() or 2))


@dataclass
class ServeConfig:
    """Tunables of a :class:`TransferServer`.

    ``max_flows`` and ``max_queued_jobs`` are the two admission knobs:
    the first caps concurrent connections outright, the second rejects
    new flows while the *shared* codec queue is already deeper than the
    given bound (0 disables that check).  The per-flow knobs
    (``max_inflight_blocks_per_flow``, ``max_write_buffer``,
    ``write_quantum``) bound how much of the shared pool and of the
    loop's attention any single flow can hold.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_flows: int = 64
    backlog: int = DEFAULT_BACKLOG
    codec_workers: int = 0  # 0 → min(4, cpu count), at least 2
    codec_backend: str = "thread"  # "process" shards flows across worker processes
    codec_shards: int = 0  # process backend: shard count (0 → codec_workers)
    max_queued_jobs: int = 0  # 0 → no queue-depth admission check
    max_inflight_blocks_per_flow: int = 4
    max_write_buffer: int = 1 << 20
    write_quantum: int = 256 * 1024
    recv_chunk: int = 256 * 1024
    idle_timeout: float = 0.0  # seconds; 0 → never time a flow out
    level: Optional[str] = None  # echo re-encode level name; None → adaptive
    block_size: int = 128 * 1024
    epoch_seconds: float = 0.25
    alpha: float = 0.2
    max_block_len: Optional[int] = None
    poll_interval: float = 0.2
    policy: Optional[str] = None  # fleet allocation policy; None → per-flow only
    control_interval: float = 1.0  # seconds between fleet policy passes
    trace_dir: Optional[str] = None  # write per-flow replay traces here

    def __post_init__(self) -> None:
        if self.max_flows < 1:
            raise ValueError("max_flows must be >= 1")
        if self.max_inflight_blocks_per_flow < 1:
            raise ValueError("max_inflight_blocks_per_flow must be >= 1")
        if self.write_quantum < 1 or self.max_write_buffer < 1:
            raise ValueError("write_quantum and max_write_buffer must be >= 1")
        if self.codec_backend not in ("thread", "process"):
            raise ValueError(f"unknown codec_backend {self.codec_backend!r}")
        if self.codec_shards < 0:
            raise ValueError("codec_shards must be >= 0")
        if self.control_interval <= 0:
            raise ValueError("control_interval must be positive")


class TransferServer:
    """One event loop serving many concurrent compressed flows.

    Usage::

        server = TransferServer(ServeConfig(port=0))
        server.start()                     # loop runs on its own thread
        host, port = server.address
        ...clients connect...
        server.stop(drain=True, timeout=10.0)

    or run the loop on the calling thread with :meth:`serve_forever`
    (the CLI does, so signal handlers can call :meth:`request_drain`).
    """

    TELEMETRY_SOURCE = "serve"

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        levels: Optional[CompressionLevelTable] = None,
        codec_pool: Optional[CodecThreadPool] = None,
        buffer_pool: Optional[BufferPool] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServeConfig()
        self._levels = levels or default_level_table()
        self._clock = clock
        workers = self.config.codec_workers or _default_workers()
        self._buffer_pool = buffer_pool or BufferPool()

        # Codec substrate: one shared thread pool (default), or — with
        # ``codec_backend="process"`` — N single-worker process-pool
        # shards that flows are assigned to round-robin, so concurrent
        # flows' codec work runs on genuinely separate cores.  An
        # explicitly injected ``codec_pool`` always means threads.
        backend = self.config.codec_backend
        if codec_pool is not None:
            backend = "thread"
        else:
            backend = resolve_backend(backend, source=self.TELEMETRY_SOURCE)
        self._codec_pool: Optional[CodecThreadPool] = None
        self._executors: List = []
        if backend == "process":
            shards = self.config.codec_shards or workers
            try:
                for i in range(shards):
                    self._executors.append(
                        ProcessCodecExecutor(
                            1,
                            buffer_pool=self._buffer_pool,
                            name=f"repro-serve-codec-p{i}",
                        )
                    )
            except ProcessBackendUnavailable as exc:
                # The availability probe passed but real construction
                # did not (resource limits, races); degrade like any
                # other unavailability instead of failing the daemon.
                for executor in self._executors:
                    executor.terminate()
                self._executors = []
                _warn_fallback(self.TELEMETRY_SOURCE, str(exc))
                backend = "thread"
        if backend == "thread":
            self._codec_pool = codec_pool or CodecThreadPool(
                workers, name="repro-serve-codec"
            )
            self._executors = [
                ThreadCodecExecutor(self._codec_pool, owns_pool=codec_pool is None)
            ]
        self.codec_backend = backend
        default_level = (
            None if self.config.level in (None, "adaptive")
            else self._levels.index_of(self.config.level)
        )
        self._default_level = default_level

        # Optional fleet control plane.  The server feeds the controller
        # *directly* (flow_opened / observe_flow / flow_closed) rather
        # than attaching it to the telemetry bus, so running a policy
        # neither requires telemetry nor double-ingests its own events
        # when telemetry is on; the actuator runs on the loop thread.
        self._controller: Optional[FleetController] = None
        if self.config.policy is not None:
            self._controller = FleetController(
                self.config.policy,
                n_levels=len(self._levels),
                actuator=self._apply_assignment,
                control_interval=self.config.control_interval,
                source=f"{self.TELEMETRY_SOURCE}-control",
            )

        # Bind in the constructor so tests can read ``address`` (and
        # clients can connect; the backlog holds them) before the loop
        # thread has spun up.
        self._listener = open_listener(
            self.config.host, self.config.port, backlog=self.config.backlog
        )
        self._listener.setblocking(False)
        self.address = self._listener.getsockname()

        self._waker_r, self._waker_w = socket.socketpair()
        self._waker_r.setblocking(False)
        self._waker_w.setblocking(False)

        self._flows: Dict[int, Flow] = {}  # flow_id -> Flow
        self._masks: Dict[int, int] = {}  # flow_id -> registered selector mask
        self._announced: set = set()  # flow_ids with FlowAccepted published
        self._flow_ids = count(1)
        self._pending: Deque[Flow] = deque()
        self._pending_lock = threading.Lock()
        self._selector: Optional[selectors.BaseSelector] = None
        self._thread: Optional[threading.Thread] = None
        self._draining = False
        self._drain_deadline: Optional[float] = None
        self._stop_now = False
        self._rr = 0
        self._running = threading.Event()
        self._finished = threading.Event()
        self._closed = False

        # Hot-reload queue: any thread enqueues validated change sets
        # via request_reload(); only the loop thread applies them.
        self._reload_lock = threading.Lock()
        self._reload_requests: Deque[Dict[str, object]] = deque()

        # Lifetime counters (loop thread writes, anyone reads).
        self.started_at = self._clock()
        self.flows_accepted = 0
        self.flows_rejected = 0
        self.flows_completed = 0
        self.flows_failed = 0
        #: Suppressed-but-abnormal errors on best-effort paths (see
        #: :meth:`_internal_error`); ``/healthz`` surfaces both.
        self.internal_errors = 0
        self.internal_error_sites: Dict[str, int] = {}
        #: Hot reloads applied so far, and a summary of the last one.
        self.reloads = 0
        self.last_reload: Optional[Dict[str, object]] = None

    # -- shared substrate (exposed for tests and telemetry) ----------

    @property
    def codec_pool(self) -> Optional[CodecThreadPool]:
        """The shared thread pool (None under the process backend)."""
        return self._codec_pool

    @property
    def codec_workers(self) -> int:
        """Total codec workers across every executor shard."""
        return sum(executor.workers for executor in self._executors)

    @property
    def codec_shards(self) -> int:
        """Number of codec executor shards flows are spread across."""
        return len(self._executors)

    def codec_stats(self) -> dict:
        """Merged codec-substrate snapshot across every shard."""
        per_shard = [executor.stats() for executor in self._executors]
        return {
            "backend": self.codec_backend,
            "shards": len(per_shard),
            "workers": self.codec_workers,
            "jobs_submitted": sum(s.get("jobs_submitted", 0) for s in per_shard),
            "jobs_completed": sum(s.get("jobs_completed", 0) for s in per_shard),
            "job_failures": sum(s.get("job_failures", 0) for s in per_shard),
            "queued": sum(s.get("queued", 0) for s in per_shard),
            "executors": per_shard,
        }

    @property
    def buffer_pool(self) -> BufferPool:
        """The one slab pool backing every flow's payload buffers."""
        return self._buffer_pool

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    @property
    def controller(self) -> Optional[FleetController]:
        """The fleet controller, when a policy is configured."""
        return self._controller

    # -- lifecycle ---------------------------------------------------

    def start(self) -> "TransferServer":
        """Run the loop on a daemon thread; returns once it is live."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._running.wait(timeout=5.0)
        return self

    def request_drain(self, timeout: Optional[float] = None) -> None:
        """Stop accepting; let in-flight flows finish (signal-safe)."""
        self._draining = True
        if timeout is not None:
            self._drain_deadline = self._clock() + timeout
        self._wake()

    def request_stop(self) -> None:
        """Abandon everything and exit the loop as soon as possible."""
        self._stop_now = True
        self._wake()

    def stop(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut down and join the loop thread (started via :meth:`start`)."""
        if drain:
            self.request_drain(timeout)
        else:
            self.request_stop()
        finished = self._finished.wait(
            timeout=None if timeout is None else timeout + 5.0
        )
        if not finished:
            self.request_stop()
            self._finished.wait(timeout=5.0)
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def serve_forever(self) -> None:
        """The event loop; blocks until drained or stopped."""
        sel = selectors.DefaultSelector()
        self._selector = sel
        sel.register(self._listener, selectors.EVENT_READ, "listener")
        sel.register(self._waker_r, selectors.EVENT_READ, "waker")
        listener_open = True
        self._running.set()
        try:
            while True:
                if self._stop_now:
                    break
                if self._draining:
                    if listener_open:
                        sel.unregister(self._listener)
                        self._listener.close()
                        listener_open = False
                    if not self._flows:
                        break
                touched: List[Flow] = []
                writable: List[Flow] = []
                for key, mask in sel.select(self.config.poll_interval):
                    tag = key.data
                    if tag == "listener":
                        self._accept_ready()
                    elif tag == "waker":
                        self._drain_waker()
                    else:
                        flow: Flow = tag
                        if mask & selectors.EVENT_READ:
                            flow.handle_read(self.config.recv_chunk)
                            touched.append(flow)
                        if mask & selectors.EVENT_WRITE:
                            writable.append(flow)
                # Round-robin write scheduling: rotate the service order
                # every pass and cap each flow at write_quantum bytes.
                if writable:
                    self._rr = (self._rr + 1) % len(writable)
                    for flow in writable[self._rr :] + writable[: self._rr]:
                        flow.handle_write(self.config.write_quantum)
                        touched.append(flow)
                with self._pending_lock:
                    while self._pending:
                        touched.append(self._pending.popleft())
                self._apply_reloads()
                self._advance(touched)
                self._check_timeouts()
                self._rates_pass()
        finally:
            self._running.set()
            try:
                self._teardown(listener_open)
            finally:
                self._finished.set()

    # -- loop internals ----------------------------------------------

    def _accept_ready(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                # A failing accept (EMFILE, dying NIC) must not take the
                # loop down, but it must not vanish either.
                self._internal_error("accept", exc)
                return
            reason = self._admission_reason()
            if reason is not None:
                self._reject(conn, reason)
                continue
            conn.setblocking(False)
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError as exc:  # pragma: no cover - platform-dependent
                self._internal_error("accept-setsockopt", exc)
            flow_id = next(self._flow_ids)
            flow = Flow(
                flow_id,
                conn,
                peer=f"{addr[0]}:{addr[1]}" if isinstance(addr, tuple) else str(addr),
                levels=self._levels,
                codec_pool=self._executors[flow_id % len(self._executors)],
                buffer_pool=self._buffer_pool,
                notify=self._notify,
                default_level=self._default_level,
                default_block_size=self.config.block_size,
                epoch_seconds=self.config.epoch_seconds,
                alpha=self.config.alpha,
                max_inflight_blocks=self.config.max_inflight_blocks_per_flow,
                max_write_buffer=self.config.max_write_buffer,
                max_block_len=self.config.max_block_len,
                clock=self._clock,
            )
            self._flows[flow_id] = flow
            self._masks[flow_id] = 0
            self.flows_accepted += 1
            self._update_interest(flow)

    def _admission_reason(self) -> Optional[str]:
        if self._draining:
            return "draining"
        if len(self._flows) >= self.config.max_flows:
            return "max-flows"
        limit = self.config.max_queued_jobs
        if limit and sum(e.qsize() for e in self._executors) >= limit:
            return "codec-queue-full"
        return None

    def _reject(self, conn: socket.socket, reason: str) -> None:
        self.flows_rejected += 1
        try:
            conn.send(encode_control({"ok": False, "error": reason}))
            # Consume whatever hello bytes already arrived so close()
            # does not RST the reject frame out of the peer's buffer.
            conn.setblocking(False)
            try:
                conn.recv(64 * 1024)
            except BlockingIOError:
                pass  # nothing buffered yet — expected, not an error
            except OSError as exc:
                self._internal_error("reject-drain", exc)
        except OSError as exc:
            # The peer may already be gone; the reject is best effort,
            # but losing it silently would hide e.g. fd exhaustion.
            self._internal_error("reject-send", exc)
        finally:
            conn.close()
        if BUS.active:
            BUS.publish(
                FlowRejected(
                    ts=BUS.now(),
                    source=self.TELEMETRY_SOURCE,
                    reason=reason,
                    active_flows=len(self._flows),
                )
            )

    def _drain_waker(self) -> None:
        while True:
            try:
                if not self._waker_r.recv(4096):
                    return
            except (BlockingIOError, InterruptedError):
                return
            except OSError as exc:
                self._internal_error("waker-recv", exc)
                return

    def _notify(self, flow: Flow) -> None:
        """Called by codec-pool workers when a flow's job completes."""
        with self._pending_lock:
            self._pending.append(flow)
        self._wake()

    def _wake(self) -> None:
        try:
            self._waker_w.send(b"\0")
        except (BlockingIOError, InterruptedError):
            pass  # pipe already full: the loop is awake anyway
        except OSError as exc:
            if not self._closed:  # post-teardown wakes are expected
                self._internal_error("waker-send", exc)

    def _advance(self, touched: List[Flow]) -> None:
        seen = set()
        for flow in touched:
            if flow.flow_id in seen or flow.flow_id not in self._flows:
                continue
            seen.add(flow.flow_id)
            flow.pump()
            if flow.flow_id in self._announced:
                pass
            elif flow.state is not FlowState.HANDSHAKING and flow.ok:
                self._announce(flow)
            if flow.state is FlowState.CLOSED:
                self._close_flow(flow)
            else:
                self._update_interest(flow)

    def _internal_error(self, site: str, exc: BaseException) -> None:
        """Account an error a best-effort path suppressed.

        The paths that call this must not let one socket's failure take
        the event loop down — but a swallow that leaves no trace hides
        real trouble (fd exhaustion, a dying NIC) from operators.  Every
        former ``except: pass`` site now lands here: a counter, a
        per-site tally, a debug log line, and (when telemetry is on) a
        :class:`ServeInternalError` event.  ``/healthz`` reports the
        totals.
        """
        self.internal_errors += 1
        self.internal_error_sites[site] = self.internal_error_sites.get(site, 0) + 1
        logger.debug("suppressed internal error at %s: %r", site, exc)
        if BUS.active:
            BUS.publish(
                ServeInternalError(
                    ts=BUS.now(),
                    source=self.TELEMETRY_SOURCE,
                    site=site,
                    error=repr(exc),
                )
            )

    def _rates_pass(self) -> None:
        """Close per-flow rate windows; feed the fleet controller if any.

        Runs once per loop pass whether or not a policy is configured:
        the closed windows back each flow's ``last_app_rate`` /
        ``last_ratio`` gauges, which the admin endpoint's ``/metrics``
        and ``/flows`` views read.  Each flow closes a window at most
        every ``epoch_seconds`` and the controller runs its policy at
        most every ``control_interval``, so the common case is a few
        subtractions per flow.
        """
        now = self._clock()
        controller = self._controller
        for flow in list(self._flows.values()):
            if flow.flow_id not in self._announced or flow.state is FlowState.CLOSED:
                continue
            sample = flow.sample_rates(now, self.config.epoch_seconds)
            if sample is None:
                continue
            app_rate, ratio = sample
            level = flow.echo_level
            if controller is not None:
                controller.observe_flow(
                    flow.flow_id,
                    now=now,
                    level=level,
                    app_rate=app_rate,
                    app_bytes=float(flow.app_bytes),
                    observed_ratio=ratio,
                )
            if BUS.active:
                BUS.publish(
                    FlowRates(
                        ts=BUS.now(),
                        source=self.TELEMETRY_SOURCE,
                        flow_id=flow.flow_id,
                        level=level,
                        app_rate=app_rate,
                        app_bytes=float(flow.app_bytes),
                        observed_ratio=ratio,
                        worker_weight=flow.control_weight,
                    )
                )
        if controller is not None:
            controller.on_tick(now)

    # Historical name, still exercised directly by the control tests.
    _control_pass = _rates_pass

    # -- hot config reload -------------------------------------------

    def request_reload(self, changes: Dict[str, object]) -> Dict[str, object]:
        """Validate and enqueue a config change set (any thread).

        Accepts a subset of :data:`RELOADABLE_KEYS`; raises
        ``ValueError`` on unknown keys or bad values *before* anything
        is enqueued, so a failed reload leaves the daemon untouched.
        The loop thread applies the normalized change set on its next
        pass — live flows are retuned in place and no connection is
        dropped.  Returns the normalized change set.
        """
        normalized: Dict[str, object] = {}
        for key, value in changes.items():
            if key not in RELOADABLE_KEYS:
                raise ValueError(f"not a reloadable key: {key!r}")
            normalized[key] = self._validate_reload(key, value)
        if normalized:
            with self._reload_lock:
                self._reload_requests.append(normalized)
            self._wake()
        return normalized

    def _validate_reload(self, key: str, value: object) -> object:
        if key == "level":
            if value is None or value == "adaptive":
                return value
            if not isinstance(value, str):
                raise ValueError(f"level must be a name or None, got {value!r}")
            try:
                self._levels.index_of(value)
            except (KeyError, ValueError):
                raise ValueError(f"unknown level {value!r}") from None
            return value
        if key == "policy":
            if value is None:
                return None
            if not isinstance(value, str):
                raise ValueError(f"policy must be a name or None, got {value!r}")
            try:
                make_policy(value)
            except (KeyError, ValueError):
                raise ValueError(f"unknown policy {value!r}") from None
            return value
        if key == "control_interval":
            interval = float(value)  # type: ignore[arg-type]
            if interval <= 0:
                raise ValueError("control_interval must be positive")
            return interval
        if key == "idle_timeout":
            timeout = float(value)  # type: ignore[arg-type]
            if timeout < 0:
                raise ValueError("idle_timeout must be >= 0")
            return timeout
        # max_flows / max_queued_jobs
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"{key} must be an integer, got {value!r}")
        if key == "max_flows" and value < 1:
            raise ValueError("max_flows must be >= 1")
        if key == "max_queued_jobs" and value < 0:
            raise ValueError("max_queued_jobs must be >= 0")
        return value

    def _apply_reloads(self) -> None:
        """Apply queued reload requests (loop thread only)."""
        while True:
            with self._reload_lock:
                if not self._reload_requests:
                    return
                changes = self._reload_requests.popleft()
            self._apply_reload(changes)

    def _apply_reload(self, changes: Dict[str, object]) -> None:
        changed: List[str] = []
        flows_updated = 0
        live = [
            flow
            for flow in list(self._flows.values())
            if flow.flow_id in self._announced and flow.state is not FlowState.CLOSED
        ]
        if "level" in changes and changes["level"] != self.config.level:
            level = changes["level"]
            self.config.level = level  # type: ignore[assignment]
            self._default_level = (
                None if level in (None, "adaptive")
                else self._levels.index_of(level)  # type: ignore[arg-type]
            )
            changed.append("level")
            for flow in live:
                if flow.reload_level(self._default_level):
                    flows_updated += 1
        if "control_interval" in changes and (
            changes["control_interval"] != self.config.control_interval
        ):
            self.config.control_interval = changes["control_interval"]  # type: ignore[assignment]
            if self._controller is not None:
                self._controller.control_interval = self.config.control_interval
            changed.append("control_interval")
        if "policy" in changes and changes["policy"] != self.config.policy:
            self.config.policy = changes["policy"]  # type: ignore[assignment]
            changed.append("policy")
            if self._controller is not None:
                # Return every managed flow to self-rule before the old
                # control plane goes away.
                for flow in live:
                    if flow.apply_control(None, 1.0):
                        flows_updated += 1
                        self._update_interest(flow)
            self._controller = None
            if self.config.policy is not None:
                self._controller = FleetController(
                    self.config.policy,
                    n_levels=len(self._levels),
                    actuator=self._apply_assignment,
                    control_interval=self.config.control_interval,
                    source=f"{self.TELEMETRY_SOURCE}-control",
                )
                now = self._clock()
                for flow in live:
                    self._controller.flow_opened(flow.flow_id, now=now)
        if "idle_timeout" in changes and (
            changes["idle_timeout"] != self.config.idle_timeout
        ):
            self.config.idle_timeout = changes["idle_timeout"]  # type: ignore[assignment]
            changed.append("idle_timeout")
        if "max_flows" in changes and changes["max_flows"] != self.config.max_flows:
            self.config.max_flows = changes["max_flows"]  # type: ignore[assignment]
            changed.append("max_flows")
        if "max_queued_jobs" in changes and (
            changes["max_queued_jobs"] != self.config.max_queued_jobs
        ):
            self.config.max_queued_jobs = changes["max_queued_jobs"]  # type: ignore[assignment]
            changed.append("max_queued_jobs")

        self.reloads += 1
        self.last_reload = {
            "changed": tuple(changed),
            "flows_updated": flows_updated,
            "at": time.time(),
        }
        logger.info(
            "config reload #%d applied: changed=%s flows_updated=%d",
            self.reloads,
            ",".join(changed) or "nothing",
            flows_updated,
        )
        if BUS.active:
            BUS.publish(
                ConfigReloaded(
                    ts=BUS.now(),
                    source=self.TELEMETRY_SOURCE,
                    changed=tuple(changed),
                    flows_updated=flows_updated,
                    reloads=self.reloads,
                )
            )

    def _apply_assignment(self, flow_id: int, assignment: Assignment) -> None:
        """Fleet-controller actuator (invoked on the loop thread)."""
        flow = self._flows.get(flow_id)
        if flow is None:
            return
        if flow.apply_control(assignment.level, assignment.weight):
            # The decode window and the write queue may both have
            # changed; refresh selector interest immediately.
            self._update_interest(flow)

    def _announce(self, flow: Flow) -> None:
        self._announced.add(flow.flow_id)
        if self._controller is not None:
            self._controller.flow_opened(flow.flow_id, now=self._clock())
        if BUS.active:
            BUS.publish(
                FlowAccepted(
                    ts=BUS.now(),
                    source=self.TELEMETRY_SOURCE,
                    flow_id=flow.flow_id,
                    peer=flow.peer,
                    mode=flow.mode,
                    active_flows=len(self._flows),
                )
            )

    def _update_interest(self, flow: Flow) -> None:
        mask = 0
        if flow.wants_read:
            mask |= selectors.EVENT_READ
        if flow.wants_write:
            mask |= selectors.EVENT_WRITE
        old = self._masks.get(flow.flow_id, 0)
        if mask == old:
            return
        sel = self._selector
        assert sel is not None
        if old == 0:
            sel.register(flow.sock, mask, flow)
        elif mask == 0:
            sel.unregister(flow.sock)
        else:
            sel.modify(flow.sock, mask, flow)
        self._masks[flow.flow_id] = mask

    def _check_timeouts(self) -> None:
        now = self._clock()
        victims: List[Flow] = []
        if self._draining and self._drain_deadline is not None and now >= self._drain_deadline:
            victims.extend(self._flows.values())
            reason = "drain-deadline"
        elif self.config.idle_timeout:
            reason = "idle-timeout"
            for flow in self._flows.values():
                if now - flow.last_activity >= self.config.idle_timeout:
                    victims.append(flow)
        else:
            return
        for flow in list(victims):
            flow.fail(reason)
            self._close_flow(flow)

    def _close_flow(self, flow: Flow) -> None:
        if self._masks.get(flow.flow_id, 0) != 0 and self._selector is not None:
            try:
                self._selector.unregister(flow.sock)
            except (KeyError, ValueError) as exc:  # pragma: no cover - defensive
                self._internal_error("selector-unregister", exc)
        self._masks.pop(flow.flow_id, None)
        self._flows.pop(flow.flow_id, None)
        try:
            flow.sock.close()
        except OSError as exc:  # pragma: no cover - defensive
            self._internal_error("flow-close", exc)
        if self.config.trace_dir is not None:
            self._write_flow_trace(flow)
        if flow.ok:
            self.flows_completed += 1
        else:
            self.flows_failed += 1
        if self._controller is not None:
            self._controller.flow_closed(flow.flow_id)
        if BUS.active:
            now = BUS.now()
            BUS.publish(
                FlowClosed(
                    ts=now,
                    source=self.TELEMETRY_SOURCE,
                    flow_id=flow.flow_id,
                    mode=flow.mode,
                    ok=flow.ok,
                    reason=flow.failure or "completed",
                    bytes_in=flow.wire_bytes_in,
                    bytes_out=flow.bytes_out,
                    app_bytes=flow.app_bytes,
                    blocks_in=flow.blocks_in,
                    blocks_out=flow.blocks_out,
                    seconds=self._clock() - flow.opened_at,
                    active_flows=len(self._flows),
                )
            )
            self._publish_pool_stats(now)

    def _publish_pool_stats(self, ts: float) -> None:
        # Summed across shards: under the process backend each shard is
        # its own pool, but load and capacity are daemon-wide numbers.
        BUS.publish(
            PipelineQueueDepth(
                ts=ts,
                source=f"{self.TELEMETRY_SOURCE}-codec",
                depth=sum(e.qsize() for e in self._executors),
                in_flight=sum(e.in_flight for e in self._executors),
                workers=self.codec_workers,
            )
        )
        stats = self._buffer_pool.stats()
        BUS.publish(
            BufferPoolStats(
                ts=ts,
                source=self.TELEMETRY_SOURCE,
                hits=stats["hits"],
                misses=stats["misses"],
                oversize=stats["oversize"],
                free_slabs=stats["free_slabs"],
            )
        )

    def _write_flow_trace(self, flow: Flow) -> None:
        """Persist one v2 replay trace for a closed flow (best effort).

        Only echo flows accumulate controller epochs; sink flows and
        flows that closed before their first epoch write nothing.  A
        write failure is accounted via :meth:`_internal_error` rather
        than failing the close — trace capture must never take a
        healthy daemon down with a full disk.
        """
        if flow.controller is None or not flow.controller.trace:
            return
        # Imported lazily: the replay module pulls in the simulator,
        # which a daemon without --trace-dir never needs.
        from ..schemes.replay import dump_trace, records_from_epochs

        observations, decisions = records_from_epochs(
            flow.controller.trace, flow_id=flow.flow_id
        )
        path = os.path.join(self.config.trace_dir, f"flow-{flow.flow_id}.jsonl")
        try:
            os.makedirs(self.config.trace_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fp:
                dump_trace(observations, fp, decisions)
        except OSError as exc:
            self._internal_error("trace-write", exc)

    # -- operational snapshots (any thread; admin endpoint reads) ----

    def status(self) -> Dict[str, object]:
        """Daemon-level operational snapshot (JSON-safe)."""
        return {
            "address": list(self.address),
            "uptime_seconds": self._clock() - self.started_at,
            "draining": self._draining,
            "closed": self._closed,
            "active_flows": len(self._flows),
            "flows_accepted": self.flows_accepted,
            "flows_rejected": self.flows_rejected,
            "flows_completed": self.flows_completed,
            "flows_failed": self.flows_failed,
            "internal_errors": self.internal_errors,
            "internal_error_sites": dict(self.internal_error_sites),
            "reloads": self.reloads,
            "last_reload": self.last_reload,
            "level": self.config.level,
            "policy": self.config.policy,
            "control_interval": self.config.control_interval,
            "max_flows": self.config.max_flows,
            "idle_timeout": self.config.idle_timeout,
            "trace_dir": self.config.trace_dir,
            "codec": self.codec_stats(),
            "buffer_pool": self._buffer_pool.stats(),
        }

    def flows_snapshot(self) -> List[Dict[str, object]]:
        """Per-flow snapshots for ``/flows`` (possibly slightly torn)."""
        return [flow.status() for flow in list(self._flows.values())]

    def healthz(self) -> Tuple[bool, Dict[str, object]]:
        """``(ready, detail)`` for the admin ``/healthz`` endpoint.

        Ready means: the loop is live, not draining, and no codec
        executor reports a broken worker.  The detail dict carries the
        individual verdicts plus the suppressed-error tallies so a
        probe failure is diagnosable from the probe body alone.
        """
        codec = self.codec_stats()
        broken = any(s.get("broken") for s in codec["executors"])
        live = self._running.is_set() and not self._finished.is_set()
        ready = live and not self._draining and not self._closed and not broken
        return ready, {
            "ready": ready,
            "live": live,
            "draining": self._draining,
            "closed": self._closed,
            "codec_broken": broken,
            "codec_backend": self.codec_backend,
            "active_flows": len(self._flows),
            "internal_errors": self.internal_errors,
            "internal_error_sites": dict(self.internal_error_sites),
            "uptime_seconds": self._clock() - self.started_at,
        }

    def _teardown(self, listener_open: bool) -> None:
        if self._closed:
            return
        self._closed = True
        for flow in list(self._flows.values()):
            if flow.state is not FlowState.CLOSED:
                flow.fail("server-stopped")
            self._close_flow(flow)
        sel = self._selector
        if sel is not None:
            try:
                sel.close()
            except OSError as exc:  # pragma: no cover - defensive
                self._internal_error("selector-close", exc)
        if listener_open:
            self._listener.close()
        self._waker_r.close()
        self._waker_w.close()
        if BUS.active:
            self._publish_pool_stats(BUS.now())
        for executor in self._executors:
            executor.close()

    # -- context manager ---------------------------------------------

    def __enter__(self) -> "TransferServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None, timeout=10.0)
