"""Deterministic fault injection for byte streams.

The paper's premise is a *hostile* shared-I/O environment: EC2-grade
links fluctuate between line rate and zero within tens of milliseconds
(Section II-B), streams stall, and connections die mid-transfer.  This
module turns those anomalies into a deterministic, seeded test
substrate: wrap any file-like writer or reader and the wrapper fires a
pre-computed :class:`FaultPlan` at exact absolute byte offsets —
bit-flips, mid-frame truncation, write/read stalls, connection resets —
identically on every run with the same seed.

The wrappers speak the plain file-object protocol (``write``/``flush``/
``close`` on one side, ``read``/``readinto`` on the other), so they
compose with everything the real path already uses: socket
``makefile`` objects, :class:`~repro.io.pipes.BoundedPipe`/
:class:`~repro.io.pipes.ThrottledPipe`, throttled writers and plain
files.  Each fired fault publishes a
:class:`~repro.telemetry.events.FaultInjected` event (zero cost while
the bus is idle, like every other hook).

Fault semantics (all anchored to absolute stream offsets):

* **bit-flip** — XOR one mask into the byte at the offset; the stream
  keeps flowing.  Exercises CRC detection and resync.
* **truncate** — bytes before the offset pass through, everything from
  the offset on is silently discarded (writer) or reads EOF (reader),
  like a peer that vanished after ACKing half a frame.
* **stall** — sleep ``seconds`` before the byte at the offset moves,
  emulating the paper's Markov off-periods.  The sleep function is
  injectable so tests can count stalls without waiting them out.
* **reset** — raise :class:`ConnectionResetError` when the offset is
  reached, after passing the preceding bytes through.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import BinaryIO, Callable, Iterable, List, Optional, Tuple

from ..telemetry.events import BUS, FaultInjected

__all__ = [
    "BitFlip",
    "Truncate",
    "Stall",
    "Reset",
    "FaultPlan",
    "FaultyWriter",
    "FaultyReader",
]


@dataclass(frozen=True)
class BitFlip:
    """Flip ``mask`` bits of the byte at absolute ``offset``."""

    offset: int
    mask: int = 0x01

    kind = "bitflip"


@dataclass(frozen=True)
class Truncate:
    """Silently drop every byte from ``offset`` on (EOF for readers)."""

    offset: int

    kind = "truncate"


@dataclass(frozen=True)
class Stall:
    """Sleep ``seconds`` before the byte at ``offset`` moves."""

    offset: int
    seconds: float = 0.05

    kind = "stall"


@dataclass(frozen=True)
class Reset:
    """Raise :class:`ConnectionResetError` once ``offset`` is reached."""

    offset: int

    kind = "reset"


Fault = object  # BitFlip | Truncate | Stall | Reset (py3.10-safe alias)


class FaultPlan:
    """An ordered, immutable schedule of faults by absolute offset.

    Plans are data, not behaviour: the same plan can be applied to a
    write side and to a read side, or replayed across runs.  Build one
    explicitly from fault instances or derive one deterministically
    from a seed with :meth:`seeded`.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults: Tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: (f.offset, f.kind))
        )
        for fault in self.faults:
            if fault.offset < 0:
                raise ValueError(f"fault offset must be >= 0, got {fault.offset}")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @classmethod
    def seeded(
        cls,
        seed: int,
        total_bytes: int,
        *,
        bitflips: int = 0,
        stalls: int = 0,
        stall_seconds: float = 0.05,
        truncate: bool = False,
        reset: bool = False,
        first_offset: int = 0,
    ) -> "FaultPlan":
        """Derive a reproducible plan from ``seed``.

        ``bitflips``/``stalls`` faults are placed uniformly at random in
        ``[first_offset, total_bytes)``; ``truncate``/``reset`` (at most
        one each) land in the upper half of that range so some traffic
        always precedes them.  The same (seed, arguments) pair always
        yields the same plan.
        """
        if total_bytes <= first_offset:
            raise ValueError("total_bytes must exceed first_offset")
        rng = random.Random(seed)
        span = (first_offset, total_bytes - 1)
        faults: List[Fault] = []
        for _ in range(bitflips):
            faults.append(
                BitFlip(rng.randint(*span), mask=1 << rng.randint(0, 7))
            )
        for _ in range(stalls):
            faults.append(Stall(rng.randint(*span), seconds=stall_seconds))
        late = ((first_offset + total_bytes) // 2, total_bytes - 1)
        if truncate:
            faults.append(Truncate(rng.randint(*late)))
        if reset:
            faults.append(Reset(rng.randint(*late)))
        return cls(faults)


class _FaultCursor:
    """Shared offset-tracking core of the two wrappers.

    Walks the plan in offset order as bytes move and mutates/cuts the
    in-flight buffer accordingly.  ``side`` labels telemetry events.
    """

    def __init__(
        self,
        plan: FaultPlan,
        side: str,
        *,
        source: str,
        sleep: Callable[[float], None],
    ) -> None:
        self._plan = list(plan)
        self._side = side
        self._source = source
        self._sleep = sleep
        self._next = 0  # index of the next unfired fault
        self.offset = 0  # absolute bytes moved so far
        self.faults_fired = 0
        self.truncated = False

    def _fire(self, fault: Fault) -> None:
        self._next += 1
        self.faults_fired += 1
        if BUS.active:
            BUS.publish(
                FaultInjected(
                    ts=BUS.now(),
                    source=self._source,
                    side=self._side,
                    kind=fault.kind,
                    offset=fault.offset,
                )
            )

    def apply(self, data: bytes) -> bytes:
        """Advance past ``len(data)`` bytes, applying due faults.

        Returns the (possibly mutated or shortened) bytes that should
        actually move.  Raises :class:`ConnectionResetError` for a due
        :class:`Reset` after accounting for the bytes preceding it.
        """
        if self.truncated:
            self.offset += len(data)
            return b""
        buf: Optional[bytearray] = None
        end = self.offset + len(data)
        while self._next < len(self._plan) and self._plan[self._next].offset < end:
            fault = self._plan[self._next]
            rel = fault.offset - self.offset
            if isinstance(fault, BitFlip):
                if buf is None:
                    buf = bytearray(data)
                buf[rel] ^= fault.mask
                self._fire(fault)
            elif isinstance(fault, Stall):
                self._fire(fault)
                self._sleep(fault.seconds)
            elif isinstance(fault, Truncate):
                self._fire(fault)
                self.truncated = True
                self.offset = end
                return bytes(buf[:rel]) if buf is not None else data[:rel]
            elif isinstance(fault, Reset):
                self._fire(fault)
                self.offset = end
                raise ConnectionResetError(
                    f"injected connection reset at byte {fault.offset}"
                )
            else:  # pragma: no cover - plans only hold the four kinds
                raise TypeError(f"unknown fault {fault!r}")
        self.offset = end
        return bytes(buf) if buf is not None else data


class FaultyWriter:
    """File-like write wrapper that fires a :class:`FaultPlan`.

    Wraps any binary writer (socket file, pipe, throttled writer, real
    file).  Offsets count the bytes *written through this wrapper*, so
    a plan positioned on wire-frame offsets behaves identically whether
    the sink is a socket or an in-memory buffer.
    """

    def __init__(
        self,
        sink: BinaryIO,
        plan: FaultPlan,
        *,
        source: str = "faulty-writer",
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._sink = sink
        self._cursor = _FaultCursor(plan, "write", source=source, sleep=sleep)

    @property
    def faults_fired(self) -> int:
        return self._cursor.faults_fired

    @property
    def bytes_seen(self) -> int:
        return self._cursor.offset

    def write(self, data) -> int:
        data = bytes(data)
        out = self._cursor.apply(data)
        if out:
            self._sink.write(out)
        # Report the full length so framing layers never short-write:
        # a truncation fault swallows bytes silently, like a dead peer.
        return len(data)

    def flush(self) -> None:
        self._sink.flush()

    def close(self) -> None:
        self._sink.close()


class FaultyReader:
    """File-like read wrapper that fires a :class:`FaultPlan`.

    Offsets count bytes *delivered to the caller*.  Supports both
    ``read`` and ``readinto`` so :class:`~repro.codecs.block.
    BlockReader`'s zero-copy path stays exercised under faults.
    """

    def __init__(
        self,
        source_stream: BinaryIO,
        plan: FaultPlan,
        *,
        source: str = "faulty-reader",
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._stream = source_stream
        self._cursor = _FaultCursor(plan, "read", source=source, sleep=sleep)

    @property
    def faults_fired(self) -> int:
        return self._cursor.faults_fired

    @property
    def bytes_seen(self) -> int:
        return self._cursor.offset

    def read(self, n: int = -1) -> bytes:
        if self._cursor.truncated:
            return b""
        chunk = self._stream.read(n)
        if not chunk:
            return chunk
        return self._cursor.apply(chunk)

    def readinto(self, b) -> int:
        got = self.read(len(memoryview(b)))
        b[: len(got)] = got
        return len(got)

    def close(self) -> None:
        self._stream.close()
