"""File-level conveniences: (de)compress whole files adaptively.

Small user-facing utilities built on the block-stream layer — the
"file channel" use case outside Nephele: archive a file with the
adaptive scheme, restore it, verify integrity.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..codecs.block import DEFAULT_BLOCK_SIZE
from ..core.buffers import BufferPool
from ..core.levels import CompressionLevelTable
from ..core.pipeline import make_block_decoder
from ..core.stream import AdaptiveBlockWriter, StaticBlockWriter


@dataclass(frozen=True)
class FileCompressionResult:
    input_bytes: int
    output_bytes: int
    wall_seconds: float

    @property
    def ratio(self) -> float:
        if self.input_bytes == 0:
            return 1.0
        return self.output_bytes / self.input_bytes


def compress_file(
    src_path: str,
    dst_path: str,
    *,
    levels: Optional[CompressionLevelTable] = None,
    static_level: Optional[int] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    epoch_seconds: float = 0.25,
    alpha: float = 0.2,
    workers: int = 1,
    backend: str = "thread",
    clock: Callable[[], float] = time.monotonic,
) -> FileCompressionResult:
    """Compress ``src_path`` into a framed block stream at ``dst_path``.

    ``static_level=None`` uses the adaptive scheme; the level then
    tracks the *throughput* achieved on this machine for this data,
    exactly like the channel integration.  ``workers`` > 1 compresses
    blocks on a thread pipeline with byte-identical output;
    ``backend="process"`` uses worker processes instead (true
    multi-core scaling, still byte-identical).
    """
    t0 = clock()
    with open(src_path, "rb") as src, open(dst_path, "wb") as dst:
        if static_level is None:
            writer = AdaptiveBlockWriter(
                dst,
                levels,
                block_size=block_size,
                epoch_seconds=epoch_seconds,
                alpha=alpha,
                workers=workers,
                backend=backend,
                clock=clock,
            )
        else:
            writer = StaticBlockWriter(
                dst,
                static_level,
                levels,
                block_size=block_size,
                workers=workers,
                backend=backend,
            )
        while True:
            chunk = src.read(block_size)
            if not chunk:
                break
            writer.write(chunk)
        writer.close()
    return FileCompressionResult(
        input_bytes=writer.bytes_in,
        output_bytes=os.path.getsize(dst_path),
        wall_seconds=clock() - t0,
    )


def decompress_file(
    src_path: str, dst_path: str, *, workers: int = 1, backend: str = "thread"
) -> int:
    """Restore a block stream produced by :func:`compress_file`.

    Returns the number of bytes written.  No configuration is needed:
    every block names its own codec.  ``workers`` > 1 decompresses on a
    :class:`~repro.core.pipeline.ParallelBlockDecoder` — byte-identical
    output, decode spread across cores — and ``backend="process"``
    moves the decompression to worker processes.
    """
    total = 0
    with open(src_path, "rb") as src, open(dst_path, "wb") as dst:
        decoder = make_block_decoder(
            src,
            workers=workers,
            backend=backend,
            pool=BufferPool(),
            event_source="file-decode",
        )
        try:
            for block in decoder:
                dst.write(block)
                total += len(block)
        finally:
            decoder.close()
    return total
