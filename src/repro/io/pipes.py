"""In-process bounded byte pipe.

A thread-safe producer/consumer byte buffer with a capacity bound, so a
fast compressor experiences genuine backpressure from a slow consumer —
the mechanism through which "the application data rate also includes
the decompression time at the receiver" (Section III-A) on the real
path.
"""

from __future__ import annotations

import threading

class PipeClosedError(Exception):
    """Write attempted after close."""


class BoundedPipe:
    """Blocking byte FIFO with bounded buffering.

    ``write`` blocks while the buffer is full; ``read`` blocks while it
    is empty and the writer has not closed.  After ``close_write``,
    reads drain the remainder and then return ``b""``.
    """

    def __init__(self, capacity: int = 1 << 20) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buffer = bytearray()
        self._lock = threading.Lock()
        self._readable = threading.Condition(self._lock)
        self._writable = threading.Condition(self._lock)
        self._write_closed = False
        self._read_closed = False
        self.total_bytes = 0

    def write(self, data: bytes) -> int:
        if not data:
            return 0
        written = 0
        view = memoryview(data)
        while written < len(data):
            with self._writable:
                if self._write_closed or self._read_closed:
                    raise PipeClosedError("pipe closed for writing")
                while len(self._buffer) >= self.capacity:
                    self._writable.wait()
                    if self._write_closed or self._read_closed:
                        raise PipeClosedError("pipe closed for writing")
                room = self.capacity - len(self._buffer)
                chunk = view[written : written + room]
                self._buffer.extend(chunk)
                written += len(chunk)
                self.total_bytes += len(chunk)
                self._readable.notify_all()
        return written

    def read(self, n: int = -1) -> bytes:
        """Read up to ``n`` bytes (all buffered if ``n`` < 0).

        Returns ``b""`` only at end-of-stream (writer closed and buffer
        drained).
        """
        with self._readable:
            while not self._buffer and not self._write_closed and not self._read_closed:
                self._readable.wait()
            if not self._buffer or self._read_closed:
                return b""
            if n is None or n < 0:
                n = len(self._buffer)
            chunk = bytes(self._buffer[:n])
            del self._buffer[:n]
            self._writable.notify_all()
            return chunk

    def writev(self, parts) -> int:
        """Write all ``parts`` back to back (vectored-sink protocol).

        The block writers hand frames over as separate header/payload
        buffers when the sink advertises ``writev``; for the in-process
        pipe that simply means consecutive appends under one protocol —
        no frame assembly in the producer.
        """
        total = 0
        for part in parts:
            total += self.write(part)
        return total

    def readinto(self, b) -> int:
        """Read up to ``len(b)`` bytes directly into buffer ``b``.

        File-object protocol used by :class:`~repro.codecs.block.
        BlockReader`'s zero-copy path.  Returns 0 only at end-of-stream.
        """
        with memoryview(b) as dest:
            n = dest.nbytes
            if n == 0:
                return 0
            with self._readable:
                while (
                    not self._buffer
                    and not self._write_closed
                    and not self._read_closed
                ):
                    self._readable.wait()
                if not self._buffer or self._read_closed:
                    return 0
                take = min(n, len(self._buffer))
                # Copy straight from the pipe buffer into the caller's
                # buffer; the temporary view must be released before the
                # del, or bytearray resizing raises BufferError.
                with memoryview(self._buffer) as src:
                    dest[:take] = src[:take]
                del self._buffer[:take]
                self._writable.notify_all()
                return take

    def close_write(self) -> None:
        with self._lock:
            self._write_closed = True
            self._readable.notify_all()
            self._writable.notify_all()

    def close_read(self) -> None:
        """Abandon the read side: discard the buffer, fail writers.

        A consumer that dies mid-transfer (e.g. a receiver giving up on
        a corrupt stream) calls this so a producer blocked on a full
        pipe wakes with :class:`PipeClosedError` instead of hanging
        forever — the in-process analogue of a connection reset.
        """
        with self._lock:
            self._read_closed = True
            self._buffer.clear()
            self._readable.notify_all()
            self._writable.notify_all()

    # Aliases so the pipe can stand in for a file object on both ends.
    def flush(self) -> None:  # noqa: D102 - file-object protocol
        pass

    def close(self) -> None:  # noqa: D102 - file-object protocol
        self.close_write()

    @property
    def buffered(self) -> int:
        with self._lock:
            return len(self._buffer)


class ThrottledPipe(BoundedPipe):
    """A bounded pipe whose *reads* are paced by a token bucket.

    Pacing the consumer side emulates a bandwidth-limited link: the
    producer can burst into the buffer, then blocks on backpressure at
    the configured rate — just like a socket behind a slow NIC.
    """

    def __init__(self, bucket, capacity: int = 1 << 20) -> None:
        super().__init__(capacity)
        self._bucket = bucket

    def read(self, n: int = -1) -> bytes:
        chunk = super().read(n)
        if chunk:
            self._bucket.consume(len(chunk))
        return chunk

    def readinto(self, b) -> int:
        got = super().readinto(b)
        if got:
            self._bucket.consume(got)
        return got
