"""Real-mode I/O: throttles, pipes, faults, localhost TCP transfer, file tools."""

from .faults import (
    BitFlip,
    FaultPlan,
    FaultyReader,
    FaultyWriter,
    Reset,
    Stall,
    Truncate,
)
from .pipes import BoundedPipe, PipeClosedError, ThrottledPipe
from .sockets import (
    DEFAULT_BACKLOG,
    ReceiverError,
    ReceiverThread,
    SocketTransferResult,
    open_listener,
    run_socket_transfer,
)
from .streams import FileCompressionResult, compress_file, decompress_file
from .throttle import ThrottledWriter, TokenBucket

__all__ = [
    "TokenBucket",
    "ThrottledWriter",
    "BoundedPipe",
    "ThrottledPipe",
    "PipeClosedError",
    "BitFlip",
    "Truncate",
    "Stall",
    "Reset",
    "FaultPlan",
    "FaultyWriter",
    "FaultyReader",
    "run_socket_transfer",
    "SocketTransferResult",
    "ReceiverThread",
    "ReceiverError",
    "open_listener",
    "DEFAULT_BACKLOG",
    "compress_file",
    "decompress_file",
    "FileCompressionResult",
]
