"""Real-mode I/O: throttles, pipes, localhost TCP transfer, file tools."""

from .pipes import BoundedPipe, PipeClosedError, ThrottledPipe
from .sockets import ReceiverThread, SocketTransferResult, run_socket_transfer
from .streams import FileCompressionResult, compress_file, decompress_file
from .throttle import ThrottledWriter, TokenBucket

__all__ = [
    "TokenBucket",
    "ThrottledWriter",
    "BoundedPipe",
    "ThrottledPipe",
    "PipeClosedError",
    "run_socket_transfer",
    "SocketTransferResult",
    "ReceiverThread",
    "compress_file",
    "decompress_file",
    "FileCompressionResult",
]
