"""Token-bucket bandwidth throttling for the real I/O path.

Real-mode experiments (examples, ``benchmarks/bench_realio.py``) need
an I/O bottleneck that behaves like the paper's 1 GbE link without
actual network hardware.  A :class:`TokenBucket` caps the byte rate of
anything wrapped in a :class:`ThrottledWriter`.
"""

from __future__ import annotations

import threading
import time
from typing import BinaryIO, Callable


class TokenBucket:
    """Classic token bucket: ``rate`` bytes/s, burst up to ``capacity``.

    ``consume(n)`` blocks (sleeping) until ``n`` tokens are available.
    Thread-safe.  The clock and sleep function are injectable for
    deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        capacity: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.capacity = capacity if capacity is not None else rate / 10.0
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        self._clock = clock
        self._sleep = sleep
        self._tokens = self.capacity
        self._last = clock()
        self._lock = threading.Lock()
        # FIFO turnstile: without it, consumers of small amounts steal
        # every refill out from under a consumer waiting for a large
        # amount, starving it indefinitely (found by
        # tests/io/test_shared_contention.py).
        self._next_ticket = 0
        self._serving = 0

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.capacity, self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_consume(self, n: float) -> bool:
        """Non-blocking: take ``n`` tokens if available (and no blocked
        consumer is ahead in the queue)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        with self._lock:
            if self._serving != self._next_ticket:
                return False  # blocked consumers have priority
            self._refill()
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def consume(self, n: float) -> None:
        """Block until ``n`` tokens have been taken.

        Amounts larger than the bucket capacity are consumed in
        capacity-sized slices.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        remaining = n
        while remaining > 0:
            slice_ = min(remaining, self.capacity)
            with self._lock:
                ticket = self._next_ticket
                self._next_ticket += 1
            while True:
                with self._lock:
                    my_turn = self._serving == ticket
                    if my_turn:
                        self._refill()
                        # The epsilon absorbs float error in refill
                        # arithmetic; without it a deficit of ~1e-16
                        # tokens computes a wait too small to advance
                        # the clock and the loop spins forever.
                        if self._tokens >= slice_ - 1e-9:
                            self._tokens = max(0.0, self._tokens - slice_)
                            self._serving += 1
                            break
                        deficit = slice_ - self._tokens
                if my_turn:
                    wait = max(deficit / self.rate, 1e-6)
                else:
                    # Behind another consumer: poll at a coarse real
                    # interval until it completes.
                    wait = 1e-3
                self._sleep(wait)
            remaining -= slice_


class ThrottledWriter:
    """File-like write wrapper that pays tokens per byte written."""

    def __init__(self, sink: BinaryIO, bucket: TokenBucket) -> None:
        self._sink = sink
        self._bucket = bucket
        self.bytes_written = 0

    def write(self, data: bytes) -> int:
        self._bucket.consume(len(data))
        self._sink.write(data)
        self.bytes_written += len(data)
        return len(data)

    def flush(self) -> None:
        self._sink.flush()

    def close(self) -> None:
        self._sink.close()
