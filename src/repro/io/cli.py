"""``repro-compress`` and ``repro-telemetry`` — the shell front ends.

``repro-compress`` subcommands:

* ``pack SRC DST`` — compress a file into the self-contained block
  format, adaptively by default (``--level`` forces a static level).
* ``unpack SRC DST`` — restore; every block names its codec, so the
  only knobs are ``--workers`` and ``--backend`` for parallel
  decompression (threads or worker processes).
* ``info FILE`` — inspect a packed file without decompressing: block
  count, per-codec histogram, ratios (shows which levels the adaptive
  scheme actually chose over the course of the stream).
* ``serve`` — run a :class:`~repro.serve.TransferServer` daemon: one
  event loop multiplexing many concurrent compressed flows, with
  admission control and graceful drain on SIGTERM/SIGINT.

Both entry points exit 130 on Ctrl-C and 0 on a broken output pipe
(``repro-compress info ... | head`` must not stack-trace), matching
shell conventions.

``repro-telemetry`` subcommands:

* ``report TRACE.jsonl`` — render a run report (event counts,
  histogram summaries, level-switch timeline) from a JSONL trace
  written by :class:`repro.telemetry.exporters.JsonlExporter`, e.g. by
  ``examples/telemetry_run.py`` or any ``instrumented(...)`` run.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys

from ..codecs.inspect import scan_block_stream
from ..core.levels import PAPER_LEVEL_NAMES, default_level_table
from ..telemetry.report import load_trace, render_report, summarize
from .streams import compress_file, decompress_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-compress",
        description="Adaptive online compression (Hovestadt et al., IPDPS 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pack = sub.add_parser("pack", help="compress a file")
    pack.add_argument("src")
    pack.add_argument("dst")
    pack.add_argument(
        "--level",
        choices=[*PAPER_LEVEL_NAMES, "adaptive"],
        default="adaptive",
        help="static level or 'adaptive' (default)",
    )
    pack.add_argument(
        "--block-size", type=int, default=128 * 1024, help="block payload bytes"
    )
    pack.add_argument(
        "--epoch-seconds",
        type=float,
        default=0.25,
        help="adaptive re-decision interval",
    )
    pack.add_argument(
        "--workers",
        type=int,
        default=1,
        help="compression workers (1 = serial; output is identical)",
    )
    pack.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help="codec worker backend: 'process' scales past the GIL "
        "(falls back to threads where shared memory is unavailable)",
    )

    unpack = sub.add_parser("unpack", help="restore a packed file")
    unpack.add_argument("src")
    unpack.add_argument("dst")
    unpack.add_argument(
        "--workers",
        type=int,
        default=1,
        help="decompression workers (1 = serial; output is identical)",
    )
    unpack.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help="codec worker backend (see 'pack --backend')",
    )

    info = sub.add_parser("info", help="inspect a packed file")
    info.add_argument("file")

    serve = sub.add_parser("serve", help="run a multi-flow transfer daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 picks a free port")
    serve.add_argument(
        "--max-flows", type=int, default=64, help="admission cap on concurrent flows"
    )
    serve.add_argument(
        "--backlog", type=int, default=128, help="listen(2) backlog for the socket"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shared codec workers (0 = auto)",
    )
    serve.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help="codec executor backend: 'process' shards flows across "
        "single-worker codec processes (see --shards)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="process-backend codec shards (0 = one per codec worker)",
    )
    serve.add_argument(
        "--level",
        choices=[*PAPER_LEVEL_NAMES, "adaptive"],
        default="adaptive",
        help="echo-mode re-encode level (default adaptive, per flow)",
    )
    serve.add_argument(
        "--epoch-seconds",
        type=float,
        default=0.25,
        help="per-flow adaptive re-decision interval (echo mode)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=0.0,
        help="seconds before an inactive flow is dropped (0 = never)",
    )
    serve.add_argument(
        "--policy",
        default=None,
        help="fleet allocation policy (fair-share, greedy-throughput, "
        "hill-climb); default: per-flow adaptation only",
    )
    serve.add_argument(
        "--control-interval",
        type=float,
        default=1.0,
        help="seconds between fleet policy passes (with --policy)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="grace period for in-flight flows after SIGTERM/SIGINT",
    )
    serve.add_argument(
        "--admin-port",
        type=int,
        default=None,
        help="serve /metrics, /healthz, /flows and POST /reload on this "
        "port (0 picks a free port; default: no admin endpoint)",
    )
    serve.add_argument(
        "--admin-host",
        default="127.0.0.1",
        help="bind address for the admin endpoint (default 127.0.0.1)",
    )
    serve.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="JSON file of reloadable settings (level, policy, "
        "control_interval, idle_timeout, max_flows, max_queued_jobs); "
        "applied at startup and re-read on SIGHUP or empty POST /reload",
    )
    serve.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="write one v2 replay trace per echo flow at close "
        "(replayable with repro.schemes.replay)",
    )
    return parser


def _load_serve_config(path: str) -> dict:
    """Read a ``--config`` file: a JSON object of reloadable keys."""
    from ..serve import RELOADABLE_KEYS

    with open(path, "r", encoding="utf-8") as fp:
        data = json.load(fp)
    if not isinstance(data, dict):
        raise ValueError(f"config file {path} must hold a JSON object")
    unknown = set(data) - set(RELOADABLE_KEYS)
    if unknown:
        raise ValueError(f"config file {path}: unknown keys {sorted(unknown)}")
    return data


def cmd_pack(args: argparse.Namespace) -> int:
    static_level = None
    if args.level != "adaptive":
        static_level = default_level_table().index_of(args.level)
    result = compress_file(
        args.src,
        args.dst,
        static_level=static_level,
        block_size=args.block_size,
        epoch_seconds=args.epoch_seconds,
        workers=args.workers,
        backend=args.backend,
    )
    print(
        f"{result.input_bytes:,} -> {result.output_bytes:,} bytes "
        f"(ratio {result.ratio:.3f}) in {result.wall_seconds:.2f}s"
    )
    return 0


def cmd_unpack(args: argparse.Namespace) -> int:
    nbytes = decompress_file(
        args.src, args.dst, workers=args.workers, backend=args.backend
    )
    print(f"restored {nbytes:,} bytes")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    with open(args.file, "rb") as fp:
        info = scan_block_stream(fp)
    if info.blocks == 0:
        print("empty stream")
        return 0
    print(
        f"{info.blocks} blocks, {info.uncompressed_bytes:,} -> "
        f"{info.stream_bytes:,} bytes (ratio {info.ratio:.3f})"
    )
    for usage in sorted(info.per_codec.values(), key=lambda u: -u.blocks):
        print(
            f"  {usage.codec_name:20s} {usage.blocks:6d} blocks  "
            f"ratio {usage.ratio:.3f}"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from ..serve import AdminServer, ServeConfig, TransferServer

    # A --config file wins over the matching CLI flags at startup, so
    # the file is the single source of truth that SIGHUP re-reads.
    overrides = _load_serve_config(args.config) if args.config else {}
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_flows=overrides.get("max_flows", args.max_flows),
        backlog=args.backlog,
        codec_workers=args.workers,
        codec_backend=args.backend,
        codec_shards=args.shards,
        max_queued_jobs=overrides.get("max_queued_jobs", 0),
        level=overrides.get("level", args.level),
        epoch_seconds=args.epoch_seconds,
        idle_timeout=overrides.get("idle_timeout", args.idle_timeout),
        policy=overrides.get("policy", args.policy),
        control_interval=overrides.get("control_interval", args.control_interval),
        trace_dir=args.trace_dir,
    )
    server = TransferServer(config)

    def _drain(signum, frame):  # pragma: no cover - signal path
        server.request_drain(args.drain_timeout)

    def _reload(signum, frame):  # pragma: no cover - signal path
        try:
            server.request_reload(_load_serve_config(args.config))
        except (OSError, ValueError) as exc:
            print(f"reload failed: {exc}", file=sys.stderr, flush=True)

    try:
        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
        if args.config and hasattr(signal, "SIGHUP"):
            signal.signal(signal.SIGHUP, _reload)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    host, port = server.address
    print(f"serving on {host}:{port}", flush=True)
    with contextlib.ExitStack() as stack:
        if args.admin_port is not None:
            from ..telemetry import instrumented

            # The admin endpoint is what makes telemetry worth paying
            # for in a daemon: attach the metric bridge so /metrics has
            # live registry series alongside the per-flow gauges.
            session = stack.enter_context(instrumented())
            admin = stack.enter_context(
                AdminServer(
                    server,
                    host=args.admin_host,
                    port=args.admin_port,
                    registry=session.registry,
                    config_source=(
                        (lambda: _load_serve_config(args.config))
                        if args.config
                        else None
                    ),
                )
            )
            print(f"admin on {admin.address[0]}:{admin.address[1]}", flush=True)
        server.serve_forever()
    print(
        f"drained: {server.flows_completed} completed, "
        f"{server.flows_failed} failed, {server.flows_rejected} rejected",
        flush=True,
    )
    return 0


def _run(handler, args) -> int:
    """Shared top level: map interrupts and dead pipes to shell codes."""
    try:
        return handler(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # stdout's consumer went away (e.g. `... | head`).  Point the fd
        # at devnull so interpreter-exit flushing cannot trip over it.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):  # no real fd (captured stdout)
            pass
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "pack": cmd_pack,
        "unpack": cmd_unpack,
        "info": cmd_info,
        "serve": cmd_serve,
    }
    return _run(handlers[args.command], args)


# -- repro-telemetry ------------------------------------------------


def build_telemetry_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Inspect JSONL telemetry traces of adaptive-compression runs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="render a run report from a trace")
    report.add_argument("trace", help="JSONL trace file (JsonlExporter output)")
    report.add_argument(
        "--max-switches",
        type=int,
        default=20,
        help="level switches to show in the timeline (default 20)",
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of text",
    )
    return parser


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    summary = summarize(load_trace(args.trace))
    if args.json:
        print(
            json.dumps(
                {
                    "total_events": summary.total_events,
                    "counts_by_type": summary.counts_by_type,
                    "epochs": summary.epochs,
                    "app_bytes": summary.app_bytes,
                    "trace_span_seconds": summary.last_ts - summary.first_ts,
                    "level_occupancy": {
                        str(k): v for k, v in sorted(summary.levels_seen.items())
                    },
                    "level_switches": [
                        {"ts": ts, "from": a, "to": b} for ts, a, b in summary.switches
                    ],
                    "backoff": summary.backoff,
                    "app_rate_mbps": summary.app_rate_mbps.summary(),
                    "compress_seconds": summary.compress_seconds.summary(),
                    "decompress_seconds": summary.decompress_seconds.summary(),
                },
                indent=2,
                allow_nan=False,
            )
        )
    else:
        print(render_report(summary, max_switches=args.max_switches))
    return 0


def telemetry_main(argv=None) -> int:
    args = build_telemetry_parser().parse_args(argv)

    def handler(ns):
        try:
            return {"report": cmd_telemetry_report}[ns.command](ns)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    return _run(handler, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
