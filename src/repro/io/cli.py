"""``repro-compress`` and ``repro-telemetry`` — the shell front ends.

``repro-compress`` subcommands:

* ``pack SRC DST`` — compress a file into the self-contained block
  format, adaptively by default (``--level`` forces a static level).
* ``unpack SRC DST`` — restore; every block names its codec, so the
  only knob is ``--workers`` for parallel decompression.
* ``info FILE`` — inspect a packed file without decompressing: block
  count, per-codec histogram, ratios (shows which levels the adaptive
  scheme actually chose over the course of the stream).

``repro-telemetry`` subcommands:

* ``report TRACE.jsonl`` — render a run report (event counts,
  histogram summaries, level-switch timeline) from a JSONL trace
  written by :class:`repro.telemetry.exporters.JsonlExporter`, e.g. by
  ``examples/telemetry_run.py`` or any ``instrumented(...)`` run.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..codecs.inspect import scan_block_stream
from ..core.levels import PAPER_LEVEL_NAMES, default_level_table
from ..telemetry.report import load_trace, render_report, summarize
from .streams import compress_file, decompress_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-compress",
        description="Adaptive online compression (Hovestadt et al., IPDPS 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pack = sub.add_parser("pack", help="compress a file")
    pack.add_argument("src")
    pack.add_argument("dst")
    pack.add_argument(
        "--level",
        choices=[*PAPER_LEVEL_NAMES, "adaptive"],
        default="adaptive",
        help="static level or 'adaptive' (default)",
    )
    pack.add_argument(
        "--block-size", type=int, default=128 * 1024, help="block payload bytes"
    )
    pack.add_argument(
        "--epoch-seconds",
        type=float,
        default=0.25,
        help="adaptive re-decision interval",
    )
    pack.add_argument(
        "--workers",
        type=int,
        default=1,
        help="compression worker threads (1 = serial; output is identical)",
    )

    unpack = sub.add_parser("unpack", help="restore a packed file")
    unpack.add_argument("src")
    unpack.add_argument("dst")
    unpack.add_argument(
        "--workers",
        type=int,
        default=1,
        help="decompression worker threads (1 = serial; output is identical)",
    )

    info = sub.add_parser("info", help="inspect a packed file")
    info.add_argument("file")
    return parser


def cmd_pack(args: argparse.Namespace) -> int:
    static_level = None
    if args.level != "adaptive":
        static_level = default_level_table().index_of(args.level)
    result = compress_file(
        args.src,
        args.dst,
        static_level=static_level,
        block_size=args.block_size,
        epoch_seconds=args.epoch_seconds,
        workers=args.workers,
    )
    print(
        f"{result.input_bytes:,} -> {result.output_bytes:,} bytes "
        f"(ratio {result.ratio:.3f}) in {result.wall_seconds:.2f}s"
    )
    return 0


def cmd_unpack(args: argparse.Namespace) -> int:
    nbytes = decompress_file(args.src, args.dst, workers=args.workers)
    print(f"restored {nbytes:,} bytes")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    with open(args.file, "rb") as fp:
        info = scan_block_stream(fp)
    if info.blocks == 0:
        print("empty stream")
        return 0
    print(
        f"{info.blocks} blocks, {info.uncompressed_bytes:,} -> "
        f"{info.stream_bytes:,} bytes (ratio {info.ratio:.3f})"
    )
    for usage in sorted(info.per_codec.values(), key=lambda u: -u.blocks):
        print(
            f"  {usage.codec_name:20s} {usage.blocks:6d} blocks  "
            f"ratio {usage.ratio:.3f}"
        )
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"pack": cmd_pack, "unpack": cmd_unpack, "info": cmd_info}
    try:
        return handlers[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


# -- repro-telemetry ------------------------------------------------


def build_telemetry_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Inspect JSONL telemetry traces of adaptive-compression runs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="render a run report from a trace")
    report.add_argument("trace", help="JSONL trace file (JsonlExporter output)")
    report.add_argument(
        "--max-switches",
        type=int,
        default=20,
        help="level switches to show in the timeline (default 20)",
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON instead of text",
    )
    return parser


def cmd_telemetry_report(args: argparse.Namespace) -> int:
    summary = summarize(load_trace(args.trace))
    if args.json:
        print(
            json.dumps(
                {
                    "total_events": summary.total_events,
                    "counts_by_type": summary.counts_by_type,
                    "epochs": summary.epochs,
                    "app_bytes": summary.app_bytes,
                    "trace_span_seconds": summary.last_ts - summary.first_ts,
                    "level_occupancy": {
                        str(k): v for k, v in sorted(summary.levels_seen.items())
                    },
                    "level_switches": [
                        {"ts": ts, "from": a, "to": b} for ts, a, b in summary.switches
                    ],
                    "backoff": summary.backoff,
                    "app_rate_mbps": summary.app_rate_mbps.summary(),
                    "compress_seconds": summary.compress_seconds.summary(),
                    "decompress_seconds": summary.decompress_seconds.summary(),
                },
                indent=2,
                allow_nan=False,
            )
        )
    else:
        print(render_report(summary, max_switches=args.max_switches))
    return 0


def telemetry_main(argv=None) -> int:
    args = build_telemetry_parser().parse_args(argv)
    try:
        return {"report": cmd_telemetry_report}[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
