"""Real-TCP adaptive transfer on localhost.

The closest runnable equivalent of the paper's sender/receiver job on
actual sockets: a receiver thread accepts one TCP connection and
decompresses the block stream; the sender pushes a
:class:`~repro.data.datasource.DataSource` through an
:class:`~repro.core.stream.AdaptiveBlockWriter` (or a static one) into
the socket, optionally behind a token-bucket throttle standing in for
the contended link.

Robustness contract (see docs/robustness.md): the transfer either
completes or fails with a single well-attributed exception, and in both
cases every resource is reclaimed — the receiver thread is joined, both
sockets and their file objects are closed, and any pipeline workers are
stopped.  Connects retry with exponential backoff
(:class:`~repro.core.recovery.RetryPolicy`), accepts and sends/receives
are bounded by timeouts, and ``resync=True`` swaps the receiver's
strict :class:`~repro.codecs.block.BlockReader` for the
:class:`~repro.core.recovery.ResyncBlockReader`, which skips damaged
blocks instead of failing the stream.

Caveat recorded in EXPERIMENTS.md: with ``workers=1`` compression,
socket I/O and decompression share the CPython GIL, so absolute
throughputs are not comparable to the paper's Java implementation — but
the adaptive scheme's *decisions* depend only on relative rates, which
survive.  ``workers>1`` routes compression through the
:class:`~repro.core.pipeline.ParallelBlockEncoder`; because zlib/bz2/
lzma release the GIL while compressing, multi-core hosts then overlap
compression with socket I/O and with each other, and only the framing
and kernel calls remain serialised.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import BinaryIO, Callable, List, Optional

from ..codecs.block import DEFAULT_BLOCK_SIZE
from ..core.buffers import BufferPool
from ..core.controller import EpochRecord
from ..core.levels import CompressionLevelTable
from ..core.pipeline import make_block_decoder
from ..core.recovery import RetryPolicy, retry_call
from ..core.stream import AdaptiveBlockWriter, StaticBlockWriter
from ..data.datasource import DataSource
from ..telemetry.events import BUS, TransferProgress
from .throttle import ThrottledWriter, TokenBucket

#: Application bytes between TransferProgress emissions on the sender.
PROGRESS_EVERY_BYTES = 8 * 1024 * 1024

#: Default bound on how long the receiver waits for a connection.
DEFAULT_ACCEPT_TIMEOUT = 30.0

#: Default listen(2) backlog for listeners opened by this module.
DEFAULT_BACKLOG = 128


def open_listener(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    backlog: int = DEFAULT_BACKLOG,
    reuse_addr: bool = True,
) -> socket.socket:
    """Open a TCP listening socket with test-friendly defaults.

    Every listener this package creates (the one-shot
    :class:`ReceiverThread` and the :mod:`repro.serve` daemon) goes
    through here so they share two properties the raw
    ``socket.create_server`` call does not guarantee on every platform:
    ``SO_REUSEADDR`` is set *explicitly* (rapidly restarted tests and
    daemons must not trip over the previous instance's TIME_WAIT
    sockets with ``EADDRINUSE``), and the ``listen(2)`` ``backlog`` is
    a visible knob instead of a hidden default — a daemon expecting a
    thundering herd of connects wants it deep, a single-transfer
    receiver can keep it tiny.
    """
    if backlog < 1:
        raise ValueError("backlog must be >= 1")
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        if reuse_addr:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(backlog)
    except BaseException:
        sock.close()
        raise
    return sock


class VectoredSocketWriter:
    """File-like socket sink with vectored (``sendmsg``) frame writes.

    Replaces ``socket.makefile("wb")`` on the sender's hot path: the
    block writers detect :meth:`writev` and hand over each frame as
    separate ``(header, payload)`` parts, which go to the kernel in one
    ``sendmsg`` call — the payload is never copied into a contiguous
    frame in userspace.  ``write`` is the compatible scalar fallback.

    The writer does not own the socket; ``close`` is a no-op so the
    transfer's teardown ordering (writer, then socket) stays unchanged.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self.bytes_sent = 0

    def write(self, data) -> int:
        self._sock.sendall(data)
        n = data.nbytes if isinstance(data, memoryview) else len(data)
        self.bytes_sent += n
        return n

    def writev(self, parts) -> int:
        """Send all ``parts`` (buffers) in as few syscalls as possible.

        One ``sendmsg`` covers the whole frame in the common case; a
        short write (possible under a send timeout) resumes from the
        first unsent byte.
        """
        buffers = [memoryview(p) for p in parts]
        total = sum(b.nbytes for b in buffers)
        while buffers:
            sent = self._sock.sendmsg(buffers)
            pending = []
            for buf in buffers:
                if sent >= buf.nbytes:
                    sent -= buf.nbytes
                elif sent:
                    pending.append(buf[sent:])
                    sent = 0
                else:
                    pending.append(buf)
            buffers = pending
        self.bytes_sent += total
        return total

    def flush(self) -> None:
        """No-op: every write goes straight to the kernel."""

    def close(self) -> None:
        """No-op: the socket is owned and closed by the transfer."""


class SocketSource:
    """File-like socket reader exposing ``recv_into`` as ``readinto``.

    Replaces ``socket.makefile("rb")`` on the receive path so the block
    decoders' scatter reads land directly in their (pooled) buffers —
    no intermediate ``BufferedReader`` copy per chunk.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    def readinto(self, buf) -> int:
        return self._sock.recv_into(buf)

    def read(self, n: int = -1) -> bytes:
        if n is None or n < 0:
            chunks = []
            while True:
                chunk = self._sock.recv(64 * 1024)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)
        return self._sock.recv(n)


class ReceiverError(RuntimeError):
    """The receiver thread failed; carries its progress as context.

    Raised by :func:`run_socket_transfer` *from* the receiver's
    original exception (so the cross-thread traceback is chained, not
    lost) with the receiver's ``blocks_received``/``bytes_received`` at
    the time of failure.
    """

    def __init__(
        self, message: str, *, blocks_received: int = 0, bytes_received: int = 0
    ) -> None:
        super().__init__(
            f"{message} (receiver had decoded {blocks_received} blocks, "
            f"{bytes_received} bytes)"
        )
        self.blocks_received = blocks_received
        self.bytes_received = bytes_received


class ReceiverThread(threading.Thread):
    """Accept one connection; decompress and count everything.

    ``resync=True`` decodes with
    :class:`~repro.core.recovery.ResyncBlockReader` — damaged blocks
    are skipped and counted instead of failing the stream.  The accept
    wait is bounded by ``accept_timeout`` and per-read waits by
    ``recv_timeout``; a breached bound surfaces through ``error`` like
    any other failure, so the thread can never hang forever on a
    sender that dies before (or after) connecting.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        *,
        resync: bool = False,
        decode_workers: int = 1,
        backend: str = "thread",
        accept_timeout: Optional[float] = DEFAULT_ACCEPT_TIMEOUT,
        recv_timeout: Optional[float] = None,
        backlog: int = DEFAULT_BACKLOG,
    ) -> None:
        super().__init__(name="repro-receiver", daemon=True)
        self._stopped = False
        self._listener = open_listener(host, backlog=backlog)
        self._listener.settimeout(accept_timeout)
        self._recv_timeout = recv_timeout
        self._resync = resync
        self._decode_workers = decode_workers
        self._backend = backend
        self.address = self._listener.getsockname()
        self.bytes_received = 0
        self.blocks_received = 0
        self.blocks_skipped = 0
        self.bytes_skipped = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            try:
                conn, _ = self._listener.accept()
            except BaseException as exc:  # noqa: BLE001 - surfaced via .error
                # A failure provoked by stop() itself (the wakeup
                # connection or the listener close racing the accept)
                # is a clean shutdown, not an error to surface.
                if not self._stopped:
                    self.error = exc
                return
            # The accepted connection may be stop()'s wakeup rather
            # than a real sender; no need to tell them apart — the
            # wakeup is already closed, reads as instant EOF and
            # decodes to zero blocks.
            with conn:
                conn.settimeout(self._recv_timeout)
                decoder = make_block_decoder(
                    SocketSource(conn),
                    workers=self._decode_workers,
                    backend=self._backend,
                    resync=self._resync,
                    pool=BufferPool(),
                    event_source="socket-decode",
                )
                try:
                    for block in decoder:
                        self.bytes_received += len(block)
                        self.blocks_received += 1
                    if self._resync:
                        self.blocks_skipped = decoder.blocks_skipped
                        self.bytes_skipped = decoder.bytes_skipped
                finally:
                    decoder.close()
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            self.error = exc
        finally:
            self._listener.close()

    def stop(self) -> None:
        """Unblock a pending ``accept`` and retire the listener now.

        Closing a listening socket does *not* wake a thread already
        parked inside ``accept`` on Linux — the poll keeps running
        until ``accept_timeout``.  So stop() first makes a throwaway
        self-connection to deliver the wakeup, then closes the
        listener.  Called by the sender's teardown when the transfer
        dies before connecting; idempotent and safe at any point in
        the thread's lifecycle (a wakeup connection racing a finished
        thread just fails and is ignored).
        """
        self._stopped = True
        try:
            with socket.create_connection(self.address, timeout=1):
                pass
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass


@dataclass
class SocketTransferResult:
    """Outcome of one localhost socket transfer."""

    app_bytes: int
    wire_bytes: int
    wall_seconds: float
    #: Adaptive-mode epoch trace (empty for static levels).
    epochs: List[EpochRecord] = field(default_factory=list)
    receiver_bytes: int = 0
    #: Resync-mode damage accounting (always 0 in strict mode).
    blocks_skipped: int = 0
    bytes_skipped: int = 0

    @property
    def app_rate(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.app_bytes / self.wall_seconds

    @property
    def compression_ratio(self) -> float:
        if self.app_bytes == 0:
            return 1.0
        return self.wire_bytes / self.app_bytes


def run_socket_transfer(
    source: DataSource,
    *,
    levels: Optional[CompressionLevelTable] = None,
    static_level: Optional[int] = None,
    rate_limit: Optional[float] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    epoch_seconds: float = 0.25,
    alpha: float = 0.2,
    chunk_bytes: int = 64 * 1024,
    workers: int = 1,
    decode_workers: int = 1,
    backend: str = "thread",
    vectored: bool = True,
    resync: bool = False,
    connect_policy: Optional[RetryPolicy] = None,
    send_timeout: Optional[float] = None,
    recv_timeout: Optional[float] = None,
    accept_timeout: Optional[float] = DEFAULT_ACCEPT_TIMEOUT,
    join_timeout: float = 60.0,
    backlog: int = DEFAULT_BACKLOG,
    wrap_sink: Optional[Callable[[BinaryIO], BinaryIO]] = None,
) -> SocketTransferResult:
    """Send ``source`` over a real localhost TCP connection.

    ``static_level=None`` selects the adaptive scheme.  ``rate_limit``
    (bytes/s) throttles the sender's writes, emulating a slow/contended
    link.  ``epoch_seconds`` defaults to 0.25 s rather than the paper's
    2 s so short test transfers still see several decision epochs.
    ``workers`` > 1 compresses blocks on a thread pipeline (identical
    wire bytes; see the module docstring for when this helps), and
    ``decode_workers`` > 1 is the receive-side mirror: the receiver
    decodes through a
    :class:`~repro.core.pipeline.ParallelBlockDecoder` instead of the
    serial reader — same plaintext, decompression spread across cores.
    ``backend="process"`` moves both ends' codec work onto worker
    processes (:class:`~repro.core.procpool.CodecProcessPool`) for true
    multi-core scaling past the GIL; wire bytes and plaintext stay
    byte-identical, and the knob degrades to threads with a one-time
    warning where shared memory is unavailable.
    ``vectored`` (default on) sends each frame as header+payload parts
    in one ``sendmsg`` via :class:`VectoredSocketWriter`; it is
    automatically disabled when ``wrap_sink`` or ``rate_limit``
    interposes a byte-stream wrapper that must see every wire byte.

    Robustness knobs: ``connect_policy`` retries the connect with
    exponential backoff (default :class:`RetryPolicy()`);
    ``send_timeout``/``recv_timeout``/``accept_timeout`` bound every
    socket wait; ``backlog`` sizes the receiver's listen queue (the
    listener always sets ``SO_REUSEADDR`` via :func:`open_listener`, so
    rapid restarts never hit ``EADDRINUSE``); ``resync=True`` makes the
    receiver skip damaged
    blocks (reported via ``blocks_skipped``/``bytes_skipped``) instead
    of failing.  ``wrap_sink`` wraps the sender's wire-side file object
    — the hook the fault-injection harness uses to corrupt, stall or
    reset the stream (see :mod:`repro.io.faults`).

    Failure contract: a receiver-side failure raises
    :class:`ReceiverError` chained from the original exception; a
    sender-side failure propagates as-is — and on **every** path the
    receiver thread is joined, both sockets are closed and pipeline
    workers are stopped, so no thread or fd outlives the call.
    """
    receiver = ReceiverThread(
        resync=resync,
        decode_workers=decode_workers,
        backend=backend,
        accept_timeout=accept_timeout,
        recv_timeout=recv_timeout,
        backlog=backlog,
    )
    receiver.start()
    policy = connect_policy if connect_policy is not None else RetryPolicy()

    sock: Optional[socket.socket] = None
    raw_sink = None
    writer = None
    sender_exc: Optional[BaseException] = None
    completed = False
    epochs: List[EpochRecord] = []
    app_bytes = 0
    wire_bytes = 0
    t0 = time.monotonic()
    try:
        sock = retry_call(
            lambda: socket.create_connection(receiver.address),
            policy=policy,
            retry_on=(OSError,),
        )
        sock.settimeout(send_timeout)
        if vectored and wrap_sink is None and rate_limit is None:
            # Nothing needs to observe the byte stream: write frames
            # straight to the socket, header+payload per sendmsg.
            raw_sink = VectoredSocketWriter(sock)
        else:
            raw_sink = sock.makefile("wb")
        sink: BinaryIO = raw_sink
        if wrap_sink is not None:
            sink = wrap_sink(sink)
        if rate_limit is not None:
            bucket = TokenBucket(
                rate=rate_limit, capacity=max(rate_limit / 20, 64 * 1024)
            )
            sink = ThrottledWriter(sink, bucket)

        if static_level is None:
            writer = AdaptiveBlockWriter(
                sink,
                levels,
                block_size=block_size,
                epoch_seconds=epoch_seconds,
                alpha=alpha,
                workers=workers,
                backend=backend,
            )
        else:
            writer = StaticBlockWriter(
                sink,
                static_level,
                levels,
                block_size=block_size,
                workers=workers,
                backend=backend,
            )

        next_progress = PROGRESS_EVERY_BYTES
        while True:
            chunk = source.read(chunk_bytes)
            if not chunk:
                break
            writer.write(chunk)
            app_bytes += len(chunk)
            if BUS.active and app_bytes >= next_progress:
                next_progress = app_bytes + PROGRESS_EVERY_BYTES
                BUS.publish(
                    TransferProgress(
                        ts=BUS.now(),
                        source="socket",
                        bytes_in=writer.bytes_in,
                        bytes_out=writer.bytes_out,
                        ratio=writer.bytes_out / writer.bytes_in
                        if writer.bytes_in
                        else 1.0,
                    )
                )
        writer.close()
        if BUS.active:
            BUS.publish(
                TransferProgress(
                    ts=BUS.now(),
                    source="socket",
                    bytes_in=writer.bytes_in,
                    bytes_out=writer.bytes_out,
                    ratio=writer.bytes_out / writer.bytes_in
                    if writer.bytes_in
                    else 1.0,
                    done=True,
                )
            )
        if static_level is None:
            epochs = list(writer.controller.trace)
        wire_bytes = writer.bytes_out
        raw_sink.flush()
        completed = True
    except BaseException as exc:  # noqa: BLE001 - re-raised below after teardown
        sender_exc = exc
    finally:
        # Guaranteed teardown, tolerant of every partial state: abort
        # (not close) the writer so nothing tries to flush into a sink
        # that is already broken, then close both fds, then unblock a
        # receiver that may still be sitting in accept, then join it.
        if writer is not None and not completed:
            try:
                writer.abort()
            except Exception:  # pragma: no cover - teardown is best-effort
                pass
        if raw_sink is not None:
            try:
                raw_sink.close()
            except OSError:
                pass
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - teardown is best-effort
                pass
        if sock is None:
            # The sender never connected, so the receiver may be parked
            # in accept(); wake and retire it.  When a connection *was*
            # made we must not stop() yet — the receiver might not have
            # reached accept() at all, and closing the listener now
            # would orphan the real pending connection.  The closed
            # sender socket already guarantees it EOFs out.
            receiver.stop()
        receiver.join(timeout=join_timeout)
        if receiver.is_alive():
            # Last resort for a receiver stuck past join_timeout.
            receiver.stop()
            receiver.join(timeout=5.0)

    wall = time.monotonic() - t0
    if sender_exc is not None:
        if receiver.error is not None and isinstance(
            sender_exc, (BrokenPipeError, ConnectionResetError, ConnectionAbortedError)
        ):
            # The sender's pipe error is a symptom: the receiver died
            # first and the kernel reset the connection under us.
            raise ReceiverError(
                f"receiver failed: {receiver.error!r}",
                blocks_received=receiver.blocks_received,
                bytes_received=receiver.bytes_received,
            ) from receiver.error
        raise sender_exc
    if receiver.is_alive():
        raise TimeoutError(f"receiver did not finish within {join_timeout}s")
    if receiver.error is not None:
        raise ReceiverError(
            f"receiver failed: {receiver.error!r}",
            blocks_received=receiver.blocks_received,
            bytes_received=receiver.bytes_received,
        ) from receiver.error
    if not resync and wrap_sink is None and receiver.bytes_received != app_bytes:
        raise AssertionError(
            f"receiver got {receiver.bytes_received} bytes, sender sent {app_bytes}"
        )
    return SocketTransferResult(
        app_bytes=app_bytes,
        wire_bytes=wire_bytes,
        wall_seconds=wall,
        epochs=epochs,
        receiver_bytes=receiver.bytes_received,
        blocks_skipped=receiver.blocks_skipped,
        bytes_skipped=receiver.bytes_skipped,
    )
