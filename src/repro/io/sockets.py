"""Real-TCP adaptive transfer on localhost.

The closest runnable equivalent of the paper's sender/receiver job on
actual sockets: a receiver thread accepts one TCP connection and
decompresses the block stream; the sender pushes a
:class:`~repro.data.datasource.DataSource` through an
:class:`~repro.core.stream.AdaptiveBlockWriter` (or a static one) into
the socket, optionally behind a token-bucket throttle standing in for
the contended link.

Caveat recorded in EXPERIMENTS.md: with ``workers=1`` compression,
socket I/O and decompression share the CPython GIL, so absolute
throughputs are not comparable to the paper's Java implementation — but
the adaptive scheme's *decisions* depend only on relative rates, which
survive.  ``workers>1`` routes compression through the
:class:`~repro.core.pipeline.ParallelBlockEncoder`; because zlib/bz2/
lzma release the GIL while compressing, multi-core hosts then overlap
compression with socket I/O and with each other, and only the framing
and kernel calls remain serialised.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..codecs.block import DEFAULT_BLOCK_SIZE, BlockReader
from ..core.controller import EpochRecord
from ..core.levels import CompressionLevelTable
from ..core.stream import AdaptiveBlockWriter, StaticBlockWriter
from ..data.datasource import DataSource
from ..telemetry.events import BUS, TransferProgress
from .throttle import ThrottledWriter, TokenBucket

#: Application bytes between TransferProgress emissions on the sender.
PROGRESS_EVERY_BYTES = 8 * 1024 * 1024


@dataclass
class SocketTransferResult:
    """Outcome of one localhost socket transfer."""

    app_bytes: int
    wire_bytes: int
    wall_seconds: float
    #: Adaptive-mode epoch trace (empty for static levels).
    epochs: List[EpochRecord] = field(default_factory=list)
    receiver_bytes: int = 0

    @property
    def app_rate(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.app_bytes / self.wall_seconds

    @property
    def compression_ratio(self) -> float:
        if self.app_bytes == 0:
            return 1.0
        return self.wire_bytes / self.app_bytes


class ReceiverThread(threading.Thread):
    """Accept one connection; decompress and count everything."""

    def __init__(self, host: str = "127.0.0.1") -> None:
        super().__init__(name="repro-receiver", daemon=True)
        self._listener = socket.create_server((host, 0))
        self.address = self._listener.getsockname()
        self.bytes_received = 0
        self.blocks_received = 0
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            conn, _ = self._listener.accept()
            with conn:
                reader = BlockReader(conn.makefile("rb"))
                for block in reader:
                    self.bytes_received += len(block)
                    self.blocks_received += 1
        except BaseException as exc:  # noqa: BLE001 - surfaced via .error
            self.error = exc
        finally:
            self._listener.close()


def run_socket_transfer(
    source: DataSource,
    *,
    levels: Optional[CompressionLevelTable] = None,
    static_level: Optional[int] = None,
    rate_limit: Optional[float] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    epoch_seconds: float = 0.25,
    alpha: float = 0.2,
    chunk_bytes: int = 64 * 1024,
    workers: int = 1,
) -> SocketTransferResult:
    """Send ``source`` over a real localhost TCP connection.

    ``static_level=None`` selects the adaptive scheme.  ``rate_limit``
    (bytes/s) throttles the sender's writes, emulating a slow/contended
    link.  ``epoch_seconds`` defaults to 0.25 s rather than the paper's
    2 s so short test transfers still see several decision epochs.
    ``workers`` > 1 compresses blocks on a thread pipeline (identical
    wire bytes; see the module docstring for when this helps).
    """
    receiver = ReceiverThread()
    receiver.start()

    sock = socket.create_connection(receiver.address)
    raw_sink = sock.makefile("wb")
    if rate_limit is not None:
        bucket = TokenBucket(rate=rate_limit, capacity=max(rate_limit / 20, 64 * 1024))
        sink = ThrottledWriter(raw_sink, bucket)
    else:
        sink = raw_sink

    t0 = time.monotonic()
    epochs: List[EpochRecord] = []
    if static_level is None:
        writer = AdaptiveBlockWriter(
            sink,
            levels,
            block_size=block_size,
            epoch_seconds=epoch_seconds,
            alpha=alpha,
            workers=workers,
        )
    else:
        writer = StaticBlockWriter(
            sink, static_level, levels, block_size=block_size, workers=workers
        )

    app_bytes = 0
    next_progress = PROGRESS_EVERY_BYTES
    while True:
        chunk = source.read(chunk_bytes)
        if not chunk:
            break
        writer.write(chunk)
        app_bytes += len(chunk)
        if BUS.active and app_bytes >= next_progress:
            next_progress = app_bytes + PROGRESS_EVERY_BYTES
            BUS.publish(
                TransferProgress(
                    ts=BUS.now(),
                    source="socket",
                    bytes_in=writer.bytes_in,
                    bytes_out=writer.bytes_out,
                    ratio=writer.bytes_out / writer.bytes_in
                    if writer.bytes_in
                    else 1.0,
                )
            )
    writer.close()
    if BUS.active:
        BUS.publish(
            TransferProgress(
                ts=BUS.now(),
                source="socket",
                bytes_in=writer.bytes_in,
                bytes_out=writer.bytes_out,
                ratio=writer.bytes_out / writer.bytes_in if writer.bytes_in else 1.0,
                done=True,
            )
        )
    if static_level is None:
        epochs = list(writer.controller.trace)
    wire_bytes = writer.bytes_out
    raw_sink.flush()
    raw_sink.close()
    sock.close()

    receiver.join(timeout=60.0)
    wall = time.monotonic() - t0
    if receiver.is_alive():
        raise TimeoutError("receiver did not finish")
    if receiver.error is not None:
        raise receiver.error
    if receiver.bytes_received != app_bytes:
        raise AssertionError(
            f"receiver got {receiver.bytes_received} bytes, sender sent {app_bytes}"
        )
    return SocketTransferResult(
        app_bytes=app_bytes,
        wire_bytes=wire_bytes,
        wall_seconds=wall,
        epochs=epochs,
        receiver_bytes=receiver.bytes_received,
    )
