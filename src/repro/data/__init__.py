"""Workload substrate: synthetic corpus, compressibility tools, data sources."""

from .compressibility import mean_measured_ratio, measured_ratio, shannon_entropy
from .corpus import (
    DEFAULT_FILE_SIZE,
    Compressibility,
    SyntheticCorpus,
    generate,
    generate_high,
    generate_low,
    generate_moderate,
    write_corpus_files,
)
from .datasource import (
    DataSource,
    RepeatingSource,
    Segment,
    SwitchingSource,
    iter_blocks,
)
from .markov import MarkovTextModel

__all__ = [
    "Compressibility",
    "SyntheticCorpus",
    "DEFAULT_FILE_SIZE",
    "generate",
    "generate_high",
    "generate_moderate",
    "generate_low",
    "write_corpus_files",
    "shannon_entropy",
    "measured_ratio",
    "mean_measured_ratio",
    "MarkovTextModel",
    "DataSource",
    "RepeatingSource",
    "SwitchingSource",
    "Segment",
    "iter_blocks",
]
