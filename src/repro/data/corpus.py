"""Synthetic stand-ins for the paper's three test files.

The evaluation (Section IV-A) uses three inputs chosen purely for their
compressibility class:

* ``ptt5`` (Canterbury corpus) — **HIGH**: a CCITT fax bitmap that
  common libraries compress to 10–15 % of its size.
* ``alice29.txt`` (Canterbury corpus) — **MODERATE**: English prose,
  ratio 30–50 % depending on the algorithm.
* ``image.jpg`` (a ~250 KB JPEG) — **LOW**: already-compressed data,
  ratio 90–95 %.

We cannot ship the corpus, so this module generates deterministic
synthetic payloads engineered to land in the same ratio bands (asserted
by ``tests/data/test_corpus.py``).  The generators model *why* each
class compresses the way it does:

* HIGH: scanlines of a bilevel image — long runs with row-to-row
  correlated edges (run lengths jitter slightly between rows).
* MODERATE: order-2 Markov English text (letter statistics of prose).
* LOW: pseudo-random bytes (JPEG entropy-coded payload) sprinkled with
  small structured segments (headers / marker tables) to leave a few
  percent of redundancy.
"""

from __future__ import annotations

import enum
import random
from typing import Dict

from .markov import MarkovTextModel


class Compressibility(enum.Enum):
    """The paper's three compressibility classes."""

    HIGH = "HIGH"
    MODERATE = "MODERATE"
    LOW = "LOW"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Size of the paper's third test file (a "standard JPG image of about
#: 250 KB"); we default all synthetic files to roughly this size.
DEFAULT_FILE_SIZE = 250 * 1024


def generate_high(n_bytes: int, seed: int = 0) -> bytes:
    """Bilevel-image-like payload (ptt5 stand-in), zlib ratio ~10-15 %.

    Rows of ``row_width`` bytes contain a handful of black runs whose
    boundaries drift a little from row to row, like scanned line art:
    highly redundant, but not trivially constant.
    """
    rng = random.Random(("high", seed).__hash__() & 0xFFFFFFFF)
    row_width = 216  # bytes per scanline (1728 pixels / 8, the fax standard)
    out = bytearray()
    # Current black runs: list of (start, length) in byte units.
    runs = [(rng.randrange(row_width), rng.randint(2, 12)) for _ in range(3)]
    while len(out) < n_bytes:
        row = bytearray(row_width)
        new_runs = []
        for start, length in runs:
            # Edges drift by -1..1 bytes per row; runs occasionally die.
            if rng.random() < 0.02:
                continue
            start = max(0, min(row_width - 1, start + rng.randint(-1, 1)))
            length = max(1, min(row_width - start, length + rng.randint(-1, 1)))
            for i in range(start, start + length):
                row[i] = 0xFF
            new_runs.append((start, length))
        # Occasionally a new feature begins.
        if rng.random() < 0.08 or not new_runs:
            new_runs.append((rng.randrange(row_width), rng.randint(2, 12)))
        runs = new_runs
        # Sparse salt-and-pepper noise keeps the data from being *too*
        # compressible (real scans have specks); density tuned so zlib
        # lands in the paper's 10-15 % band for ptt5.
        for _ in range(rng.randint(3, 8)):
            row[rng.randrange(row_width)] ^= 0xFF >> rng.randint(0, 7)
        out.extend(row)
    return bytes(out[:n_bytes])


_MARKOV_MODEL: MarkovTextModel | None = None


def _markov_model() -> MarkovTextModel:
    global _MARKOV_MODEL
    if _MARKOV_MODEL is None:
        _MARKOV_MODEL = MarkovTextModel(order=2)
    return _MARKOV_MODEL


def generate_moderate(n_bytes: int, seed: int = 0) -> bytes:
    """English-prose-like payload (alice29.txt stand-in), ratio ~30-50 %."""
    rng = random.Random(("moderate", seed).__hash__() & 0xFFFFFFFF)
    return _markov_model().generate_bytes(n_bytes, rng)


def generate_low(n_bytes: int, seed: int = 0) -> bytes:
    """JPEG-like payload (image.jpg stand-in), ratio ~90-95 %.

    Mostly incompressible entropy-coded noise with small structured
    segments standing in for JPEG markers, quantization tables and
    restart-interval redundancy.
    """
    rng = random.Random(("low", seed).__hash__() & 0xFFFFFFFF)
    out = bytearray()
    while len(out) < n_bytes:
        # ~90 % noise segment.
        noise_len = rng.randint(5000, 9000)
        out.extend(rng.randbytes(noise_len))
        # ~10 % structured segment: a repeated short pattern (tables,
        # zero padding, marker runs).
        pattern = rng.randbytes(rng.randint(2, 8))
        reps = rng.randint(80, 200)
        out.extend(pattern * reps)
    return bytes(out[:n_bytes])


_GENERATORS = {
    Compressibility.HIGH: generate_high,
    Compressibility.MODERATE: generate_moderate,
    Compressibility.LOW: generate_low,
}


def generate(
    compressibility: Compressibility,
    n_bytes: int = DEFAULT_FILE_SIZE,
    seed: int = 0,
) -> bytes:
    """Generate a synthetic payload of the requested class."""
    if n_bytes < 0:
        raise ValueError("n_bytes must be >= 0")
    return _GENERATORS[compressibility](n_bytes, seed)


def write_corpus_files(
    directory: str,
    file_size: int = DEFAULT_FILE_SIZE,
    seed: int = 0,
) -> Dict[Compressibility, str]:
    """Materialize the synthetic corpus to disk.

    Writes one file per compressibility class (``high.bin``,
    ``moderate.txt``, ``low.jpg-like``) into ``directory`` so the
    payloads can be fed to external tools (or to ``repro-compress``).
    Returns the written paths by class.
    """
    import os

    os.makedirs(directory, exist_ok=True)
    names = {
        Compressibility.HIGH: "high.bin",
        Compressibility.MODERATE: "moderate.txt",
        Compressibility.LOW: "low.jpg-like",
    }
    paths: Dict[Compressibility, str] = {}
    for compressibility, filename in names.items():
        path = os.path.join(directory, filename)
        with open(path, "wb") as fp:
            fp.write(generate(compressibility, file_size, seed))
        paths[compressibility] = path
    return paths


class SyntheticCorpus:
    """Cached access to one payload per compressibility class.

    The evaluation jobs re-send the *same* file until 50 GB have been
    generated (Section IV-A), so a single cached payload per class is
    the faithful workload shape.
    """

    def __init__(self, file_size: int = DEFAULT_FILE_SIZE, seed: int = 0) -> None:
        self.file_size = file_size
        self.seed = seed
        self._cache: Dict[Compressibility, bytes] = {}

    def payload(self, compressibility: Compressibility) -> bytes:
        if compressibility not in self._cache:
            self._cache[compressibility] = generate(
                compressibility, self.file_size, self.seed
            )
        return self._cache[compressibility]

    def __iter__(self):
        return iter(Compressibility)
