"""Data sources that feed the sender side of transfers.

The paper's sender task "repeatedly wrote the respective test files ...
to the network channel until a total data volume of 50 GB was generated"
(Section IV-A); Figure 6 additionally switches between two files every
10 GB.  These classes model exactly those producers, for both the real
I/O path (they emit bytes) and the simulator (they also expose the
compressibility class of the bytes they would emit, so the simulator's
codec model can price them without materializing 50 GB).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .corpus import Compressibility, SyntheticCorpus


class DataSource(abc.ABC):
    """A bounded byte producer."""

    @abc.abstractmethod
    def read(self, n: int) -> bytes:
        """Return up to ``n`` bytes; empty bytes means exhausted."""

    @property
    @abc.abstractmethod
    def total_bytes(self) -> int:
        """Total number of bytes this source will ever produce."""

    @property
    @abc.abstractmethod
    def bytes_emitted(self) -> int:
        """Bytes produced so far."""

    @abc.abstractmethod
    def class_at(self, offset: int) -> Compressibility:
        """Compressibility class of the byte at ``offset``.

        Lets the simulator price compression without generating data.
        """

    @property
    def exhausted(self) -> bool:
        return self.bytes_emitted >= self.total_bytes

    def skip(self, n: int) -> int:
        """Advance by up to ``n`` bytes without materializing them.

        Used by the simulator, which prices data by compressibility
        class instead of compressing actual bytes.  Returns the number
        of bytes skipped.  The default implementation reads and
        discards; concrete sources override with O(1) versions.
        """
        return len(self.read(n))


class RepeatingSource(DataSource):
    """Repeat one payload until ``total_bytes`` have been produced."""

    def __init__(
        self,
        payload: bytes,
        total_bytes: int,
        compressibility: Compressibility,
    ) -> None:
        if not payload:
            raise ValueError("payload must be non-empty")
        if total_bytes < 0:
            raise ValueError("total_bytes must be >= 0")
        self._payload = payload
        self._total = total_bytes
        self._pos = 0
        self._compressibility = compressibility

    @classmethod
    def from_corpus(
        cls,
        compressibility: Compressibility,
        total_bytes: int,
        corpus: Optional[SyntheticCorpus] = None,
    ) -> "RepeatingSource":
        corpus = corpus or SyntheticCorpus()
        return cls(corpus.payload(compressibility), total_bytes, compressibility)

    @property
    def total_bytes(self) -> int:
        return self._total

    @property
    def bytes_emitted(self) -> int:
        return self._pos

    def class_at(self, offset: int) -> Compressibility:
        return self._compressibility

    def skip(self, n: int) -> int:
        if n < 0:
            raise ValueError("n must be >= 0")
        n = min(n, self._total - self._pos)
        self._pos += n
        return n

    def read(self, n: int) -> bytes:
        if n < 0:
            raise ValueError("n must be >= 0")
        n = min(n, self._total - self._pos)
        if n <= 0:
            return b""
        out = bytearray()
        plen = len(self._payload)
        while len(out) < n:
            start = self._pos % plen
            take = min(plen - start, n - len(out))
            out.extend(self._payload[start : start + take])
            self._pos += take
        return bytes(out)


@dataclass(frozen=True)
class Segment:
    """A contiguous stretch of one compressibility class."""

    compressibility: Compressibility
    length: int


class SwitchingSource(DataSource):
    """Concatenate segments of different compressibility classes.

    Figure 6's workload is ``SwitchingSource.alternating(HIGH, LOW,
    segment=10 GB, total=50 GB)``.
    """

    def __init__(
        self,
        segments: Sequence[Segment],
        corpus: Optional[SyntheticCorpus] = None,
    ) -> None:
        if not segments:
            raise ValueError("need at least one segment")
        if any(s.length <= 0 for s in segments):
            raise ValueError("segment lengths must be positive")
        self._segments = list(segments)
        self._corpus = corpus or SyntheticCorpus()
        self._boundaries: List[int] = []
        acc = 0
        for seg in self._segments:
            acc += seg.length
            self._boundaries.append(acc)
        self._total = acc
        self._pos = 0

    @classmethod
    def alternating(
        cls,
        first: Compressibility,
        second: Compressibility,
        segment_bytes: int,
        total_bytes: int,
        corpus: Optional[SyntheticCorpus] = None,
    ) -> "SwitchingSource":
        segments: List[Segment] = []
        produced = 0
        toggle = 0
        while produced < total_bytes:
            length = min(segment_bytes, total_bytes - produced)
            segments.append(Segment((first, second)[toggle % 2], length))
            produced += length
            toggle += 1
        return cls(segments, corpus)

    @property
    def total_bytes(self) -> int:
        return self._total

    @property
    def bytes_emitted(self) -> int:
        return self._pos

    def _segment_index(self, offset: int) -> int:
        for i, bound in enumerate(self._boundaries):
            if offset < bound:
                return i
        return len(self._segments) - 1

    def class_at(self, offset: int) -> Compressibility:
        if offset < 0:
            raise ValueError("offset must be >= 0")
        return self._segments[self._segment_index(offset)].compressibility

    def skip(self, n: int) -> int:
        if n < 0:
            raise ValueError("n must be >= 0")
        n = min(n, self._total - self._pos)
        self._pos += n
        return n

    def read(self, n: int) -> bytes:
        if n < 0:
            raise ValueError("n must be >= 0")
        out = bytearray()
        while len(out) < n and self._pos < self._total:
            idx = self._segment_index(self._pos)
            seg = self._segments[idx]
            seg_start = self._boundaries[idx] - seg.length
            within = self._pos - seg_start
            take = min(n - len(out), seg.length - within)
            payload = self._corpus.payload(seg.compressibility)
            plen = len(payload)
            taken = 0
            while taken < take:
                start = (within + taken) % plen
                chunk = min(plen - start, take - taken)
                out.extend(payload[start : start + chunk])
                taken += chunk
            self._pos += take
        return bytes(out)


def iter_blocks(source: DataSource, block_size: int):
    """Yield ``block_size``-sized chunks from ``source`` until exhausted."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    while True:
        chunk = source.read(block_size)
        if not chunk:
            return
        yield chunk
