"""Compressibility estimation helpers.

The decision algorithm itself deliberately never inspects the data
(Section III), but tests, workload generators and the simulator's codec
model need to quantify how compressible payloads are.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable

from ..codecs.base import Codec


def shannon_entropy(data: bytes) -> float:
    """Shannon entropy of the byte distribution, in bits per byte (0..8)."""
    if not data:
        return 0.0
    counts = Counter(data)
    n = len(data)
    return -sum((c / n) * math.log2(c / n) for c in counts.values())


def measured_ratio(data: bytes, codec: Codec) -> float:
    """Compressed/original size ratio under ``codec`` (1.0 = incompressible)."""
    if not data:
        return 1.0
    return len(codec.compress(data)) / len(data)


def mean_measured_ratio(chunks: Iterable[bytes], codec: Codec) -> float:
    """Size-weighted mean ratio across ``chunks``."""
    total_in = 0
    total_out = 0
    for chunk in chunks:
        total_in += len(chunk)
        total_out += len(codec.compress(chunk))
    if total_in == 0:
        return 1.0
    return total_out / total_in
