"""Order-k character Markov model for English-like text generation.

Used by :mod:`repro.data.corpus` to synthesize a stand-in for the
Canterbury corpus file ``alice29.txt`` (the paper's MODERATE
compressibility class, zlib ratio roughly 30–50 %).  Training text is
embedded so generation works fully offline and deterministically.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from typing import Dict, List, Tuple

#: Embedded training text.  Plain descriptive English; only its
#: *statistics* matter (letter frequencies and digraph/trigraph
#: structure typical of English prose).
TRAINING_TEXT = """
the cloud customer can usually assume one of the following reasons for the
degraded performance of the input and output path of a virtual machine. on
the one hand the virtualized path is known to cause processor overhead so in
scenarios with high load it may be the processor resources allocated to the
virtual machine which limit the data throughput. on the other hand several
virtual machines may be located on the same physical host and in fact share
the resources of the host system. as a result the workload induced by one
virtual machine can negatively affect the performance of another machine and
lead to unpredictable fluctuations that are hard to measure from inside.
a variety of projects is currently working to improve the performance and
fairness of shared input and output paths. however since these proposals
require modifications to either the operating system kernel or the manager
of the virtual machines the users of commercial clouds cannot benefit from
those until their providers consider them mature enough to be adopted. for
this reason we present an approach to mitigate the effects of sharing which
can be applied by the customers without assistance of the providers namely
adaptive online compression of the outgoing stream of data. the idea is to
improve the throughput by continuously choosing between different levels of
compression and applying them dynamically to the outgoing data. the level
is selected by a decision model which constantly estimates the gain based
on measures like the current load the available bandwidth or the nature of
the data itself. although several adaptive schemes have been introduced in
recent years it is unclear whether they can be applied in such environments
because most of the existing schemes require a training phase in order to
calibrate their decision model and during that phase an unloaded system with
stable characteristics is assumed. in a cloud where information on the
physical infrastructure and neighbouring machines is not available this
assumption does not necessarily hold. the decision models of existing
schemes rely on the displayed measures of the operating system like the
current utilization or available bandwidth. however the accuracy of these
measures in virtual environments had not been studied so far. when the white
rabbit ran close by her alice started to her feet for it flashed across her
mind that she had never before seen a rabbit with either a waistcoat pocket
or a watch to take out of it and burning with curiosity she ran across the
field after it and fortunately was just in time to see it pop down a large
rabbit hole under the hedge. in another moment down went alice after it
never once considering how in the world she was to get out again. the rabbit
hole went straight on like a tunnel for some way and then dipped suddenly
down so suddenly that alice had not a moment to think about stopping herself
before she found herself falling down a very deep well. either the well was
very deep or she fell very slowly for she had plenty of time as she went
down to look about her and to wonder what was going to happen next.
"""


class MarkovTextModel:
    """Order-``k`` character-level Markov chain over the training text."""

    def __init__(self, order: int = 2, training_text: str = TRAINING_TEXT) -> None:
        if order < 1:
            raise ValueError("order must be >= 1")
        text = " ".join(training_text.split())
        if len(text) <= order:
            raise ValueError("training text shorter than model order")
        self.order = order
        self._transitions: Dict[str, Tuple[List[str], List[int]]] = {}
        table: Dict[str, Counter] = defaultdict(Counter)
        for i in range(len(text) - order):
            state = text[i : i + order]
            table[state][text[i + order]] += 1
        for state, counter in table.items():
            chars, weights = zip(*sorted(counter.items()))
            self._transitions[state] = (list(chars), list(weights))
        self._start_state = text[:order]

    @property
    def n_states(self) -> int:
        return len(self._transitions)

    def generate(self, n_chars: int, rng: random.Random) -> str:
        """Generate ``n_chars`` characters of English-like text."""
        if n_chars <= 0:
            return ""
        out: List[str] = list(self._start_state[: min(self.order, n_chars)])
        state = self._start_state
        while len(out) < n_chars:
            entry = self._transitions.get(state)
            if entry is None:
                # Dead end (only possible for the text's final state):
                # restart from the beginning.
                state = self._start_state
                continue
            chars, weights = entry
            nxt = rng.choices(chars, weights)[0]
            out.append(nxt)
            state = (state + nxt)[-self.order :]
        return "".join(out[:n_chars])

    def generate_bytes(self, n_bytes: int, rng: random.Random) -> bytes:
        """Generate ``n_bytes`` of ASCII text with line breaks every ~72 chars."""
        raw = self.generate(n_bytes, rng)
        chars = list(raw)
        for i in range(72, len(chars), 73):
            chars[i] = "\n"
        return "".join(chars).encode("ascii")
