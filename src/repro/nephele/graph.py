"""Job graphs: the DAG programming model of Nephele.

"Nephele executes data flow programs which are expressed as directed
acyclic graphs (DAGs) ... each vertex of the DAG represents a task of
the overall processing job.  Tasks can exchange data through
communication channels which are modeled as the edges of the job DAG."
(Section III-B)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from .channels import ChannelSpec, ChannelType

if TYPE_CHECKING:  # pragma: no cover
    from .tasks import Task


class JobGraphError(Exception):
    """Raised on malformed job graphs."""


@dataclass
class Vertex:
    """One task of the job."""

    name: str
    task: "Task"
    inputs: List["Edge"] = field(default_factory=list)
    outputs: List["Edge"] = field(default_factory=list)


@dataclass
class Edge:
    """One communication channel between two tasks."""

    source: Vertex
    target: Vertex
    spec: ChannelSpec

    @property
    def name(self) -> str:
        return f"{self.source.name}->{self.target.name}"


class JobGraph:
    """A DAG of tasks connected by typed channels."""

    def __init__(self, name: str = "job") -> None:
        self.name = name
        self._vertices: Dict[str, Vertex] = {}
        self._edges: List[Edge] = []

    # -- construction --------------------------------------------------

    def add_vertex(self, name: str, task: "Task") -> Vertex:
        if name in self._vertices:
            raise JobGraphError(f"duplicate vertex name {name!r}")
        vertex = Vertex(name=name, task=task)
        self._vertices[name] = vertex
        return vertex

    def connect(
        self,
        source: str | Vertex,
        target: str | Vertex,
        channel_type: ChannelType = ChannelType.IN_MEMORY,
        spec: Optional[ChannelSpec] = None,
    ) -> Edge:
        src = self._resolve(source)
        dst = self._resolve(target)
        if src is dst:
            raise JobGraphError(f"self-loop on vertex {src.name!r}")
        edge = Edge(source=src, target=dst, spec=spec or ChannelSpec(channel_type))
        if spec is not None and spec.channel_type != channel_type:
            raise JobGraphError(
                "channel_type argument conflicts with spec.channel_type"
            )
        src.outputs.append(edge)
        dst.inputs.append(edge)
        self._edges.append(edge)
        return edge

    def _resolve(self, ref: str | Vertex) -> Vertex:
        if isinstance(ref, Vertex):
            return ref
        try:
            return self._vertices[ref]
        except KeyError:
            raise JobGraphError(f"unknown vertex {ref!r}") from None

    # -- inspection -----------------------------------------------------

    @property
    def vertices(self) -> List[Vertex]:
        return list(self._vertices.values())

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    def vertex(self, name: str) -> Vertex:
        return self._resolve(name)

    # -- validation -----------------------------------------------------

    def topological_order(self) -> List[Vertex]:
        """Kahn's algorithm; raises on cycles."""
        indegree = {name: len(v.inputs) for name, v in self._vertices.items()}
        ready = [v for v in self._vertices.values() if indegree[v.name] == 0]
        order: List[Vertex] = []
        while ready:
            vertex = ready.pop(0)
            order.append(vertex)
            for edge in vertex.outputs:
                indegree[edge.target.name] -= 1
                if indegree[edge.target.name] == 0:
                    ready.append(edge.target)
        if len(order) != len(self._vertices):
            cyclic = sorted(n for n, d in indegree.items() if d > 0)
            raise JobGraphError(f"job graph has a cycle involving {cyclic}")
        return order

    def validate(self) -> None:
        """Structural checks before execution."""
        if not self._vertices:
            raise JobGraphError("job graph is empty")
        self.topological_order()
        for vertex in self._vertices.values():
            if not vertex.inputs and not vertex.outputs:
                if len(self._vertices) > 1:
                    raise JobGraphError(
                        f"vertex {vertex.name!r} is disconnected from the job"
                    )
