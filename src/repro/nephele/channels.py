"""Channel implementations: in-memory, file, and network.

"Currently, Nephele supports three different types of communication
channels: file, TCP network, and in-memory channels.  For our initial
prototype we integrated our adaptive compression scheme into Nephele's
file and network channels.  The implementation is completely
transparent to the tasks." (Section III-B)

A channel has a writer end (``write_record``/``close``) and a reader
end (``read_record`` returning ``None`` at end-of-stream).  File and
network channels route their byte stream through the block-framing
compression layer — statically or adaptively, per their
:class:`ChannelSpec`; tasks never see a difference.
"""

from __future__ import annotations

import enum
import os
import queue
import socket
import tempfile
import time
from dataclasses import dataclass
from typing import Optional

from ..codecs.block import DEFAULT_BLOCK_SIZE, BlockReader
from ..core.decision import DEFAULT_ALPHA, DEFAULT_EPOCH_SECONDS
from ..core.levels import CompressionLevelTable, default_level_table
from ..core.stream import AdaptiveBlockWriter, StaticBlockWriter
from ..telemetry.events import BUS, TransferProgress
from .records import RecordDecoder, encode_record


def _emit_channel_progress(writer, source: str) -> None:
    """Publish a channel's final byte counts (write side just closed)."""
    bytes_in = writer.bytes_in
    bytes_out = writer.bytes_out
    BUS.publish(
        TransferProgress(
            ts=BUS.now(),
            source=source,
            bytes_in=bytes_in,
            bytes_out=bytes_out,
            ratio=bytes_out / bytes_in if bytes_in else 1.0,
            done=True,
        )
    )


class ChannelType(enum.Enum):
    """Nephele's three channel transports (Section III-B)."""

    IN_MEMORY = "in-memory"
    FILE = "file"
    NETWORK = "network"


class CompressionMode(enum.Enum):
    """How a channel's byte stream is compressed."""

    #: No compression layer at all (also the only mode for in-memory).
    OFF = "off"
    #: Fixed level for the channel's lifetime.
    STATIC = "static"
    #: The paper's adaptive scheme.
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class ChannelSpec:
    """Everything needed to build a channel between two tasks."""

    channel_type: ChannelType = ChannelType.IN_MEMORY
    compression: CompressionMode = CompressionMode.OFF
    static_level: int = 0
    block_size: int = DEFAULT_BLOCK_SIZE
    epoch_seconds: float = DEFAULT_EPOCH_SECONDS
    alpha: float = DEFAULT_ALPHA
    #: Bounded buffering between writer and reader (records for
    #: in-memory, bytes-ish for network); provides backpressure.
    buffer_records: int = 1024

    def __post_init__(self) -> None:
        if (
            self.channel_type is ChannelType.IN_MEMORY
            and self.compression is not CompressionMode.OFF
        ):
            raise ValueError(
                "compression is integrated into file and network channels only"
            )


class ChannelClosedError(Exception):
    """Write attempted on a closed channel."""


class Channel:
    """Common interface; see subclasses."""

    spec: ChannelSpec

    def write_record(self, record: bytes) -> None:
        raise NotImplementedError

    def close_write(self) -> None:
        raise NotImplementedError

    def read_record(self) -> Optional[bytes]:
        raise NotImplementedError

    def __iter__(self):
        while True:
            record = self.read_record()
            if record is None:
                return
            yield record


class InMemoryChannel(Channel):
    """Bounded queue of records; no compression (paper §III-B)."""

    _EOF = object()

    def __init__(self, spec: Optional[ChannelSpec] = None) -> None:
        self.spec = spec or ChannelSpec(ChannelType.IN_MEMORY)
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.spec.buffer_records)
        self._write_closed = False

    def write_record(self, record: bytes) -> None:
        if self._write_closed:
            raise ChannelClosedError("channel closed for writing")
        self._queue.put(bytes(record))

    def close_write(self) -> None:
        if not self._write_closed:
            self._write_closed = True
            self._queue.put(self._EOF)

    def read_record(self) -> Optional[bytes]:
        item = self._queue.get()
        if item is self._EOF:
            self._queue.put(self._EOF)  # keep EOF sticky for re-reads
            return None
        return item


def _make_block_writer(
    sink,
    spec: ChannelSpec,
    levels: Optional[CompressionLevelTable],
    clock,
):
    levels = levels or default_level_table()
    if spec.compression is CompressionMode.ADAPTIVE:
        return AdaptiveBlockWriter(
            sink,
            levels,
            block_size=spec.block_size,
            epoch_seconds=spec.epoch_seconds,
            alpha=spec.alpha,
            clock=clock,
        )
    if spec.compression is CompressionMode.STATIC:
        return StaticBlockWriter(sink, spec.static_level, levels, block_size=spec.block_size)
    return StaticBlockWriter(sink, 0, levels, block_size=spec.block_size)


class FileChannel(Channel):
    """Spill records through an on-disk file, block-compressed.

    Nephele's file channels fully decouple producer and consumer: the
    reader may start only after the writer has closed (enforced here),
    which is also why they are the natural place for compression — the
    whole stream is on disk either way.
    """

    def __init__(
        self,
        spec: Optional[ChannelSpec] = None,
        path: Optional[str] = None,
        levels: Optional[CompressionLevelTable] = None,
        clock=time.monotonic,
    ) -> None:
        self.spec = spec or ChannelSpec(ChannelType.FILE)
        if path is None:
            fd, path = tempfile.mkstemp(prefix="nephele-file-channel-")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self._sink = open(path, "wb")
        self._writer = _make_block_writer(self._sink, self.spec, levels, clock)
        self._write_closed = False
        self._reader: Optional[BlockReader] = None
        self._decoder = RecordDecoder()
        self._source = None

    @property
    def block_writer(self):
        """The underlying (possibly adaptive) block writer, for stats."""
        return self._writer

    def write_record(self, record: bytes) -> None:
        if self._write_closed:
            raise ChannelClosedError("file channel closed for writing")
        self._writer.write(encode_record(record))

    def close_write(self) -> None:
        if self._write_closed:
            return
        self._writer.close()
        if BUS.active:
            _emit_channel_progress(self._writer, "file-channel")
        self._sink.flush()
        self._sink.close()
        self._write_closed = True

    def read_record(self) -> Optional[bytes]:
        if not self._write_closed:
            raise RuntimeError(
                "file channel must be closed for writing before reading"
            )
        if self._reader is None:
            self._source = open(self.path, "rb")
            self._reader = BlockReader(self._source)
        while True:
            record = self._decoder.next_record()
            if record is not None:
                return record
            block = self._reader.read_block()
            if block is None:
                self._decoder.assert_empty()
                return None
            self._decoder.feed(block)

    def dispose(self) -> None:
        """Delete the backing file (called by the execution engine)."""
        if self._source is not None:
            self._source.close()
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)


class NetworkChannel(Channel):
    """Records over a real (local) TCP socket pair, block-compressed.

    Uses an actual ``socket.socketpair`` so the bytes traverse the
    kernel exactly as a TCP network channel's would; the adaptive
    writer observes genuine backpressure through the socket buffers.
    """

    def __init__(
        self,
        spec: Optional[ChannelSpec] = None,
        levels: Optional[CompressionLevelTable] = None,
        clock=time.monotonic,
    ) -> None:
        self.spec = spec or ChannelSpec(ChannelType.NETWORK)
        self._write_sock, self._read_sock = socket.socketpair()
        self._sink = self._write_sock.makefile("wb")
        self._source = self._read_sock.makefile("rb")
        self._writer = _make_block_writer(self._sink, self.spec, levels, clock)
        self._reader = BlockReader(self._source)
        self._decoder = RecordDecoder()
        self._write_closed = False
        self._read_closed = False

    @property
    def block_writer(self):
        return self._writer

    def write_record(self, record: bytes) -> None:
        if self._write_closed:
            raise ChannelClosedError("network channel closed for writing")
        self._writer.write(encode_record(record))

    def close_write(self) -> None:
        if self._write_closed:
            return
        self._writer.close()
        if BUS.active:
            _emit_channel_progress(self._writer, "network-channel")
        self._sink.flush()
        self._sink.close()
        self._write_sock.close()
        self._write_closed = True

    def read_record(self) -> Optional[bytes]:
        while True:
            record = self._decoder.next_record()
            if record is not None:
                return record
            block = self._reader.read_block()
            if block is None:
                self._decoder.assert_empty()
                self._close_read()
                return None
            self._decoder.feed(block)

    def _close_read(self) -> None:
        if not self._read_closed:
            self._source.close()
            self._read_sock.close()
            self._read_closed = True


def build_channel(spec: ChannelSpec, **kwargs) -> Channel:
    """Channel factory used by the execution engine."""
    if spec.channel_type is ChannelType.IN_MEMORY:
        return InMemoryChannel(spec)
    if spec.channel_type is ChannelType.FILE:
        return FileChannel(spec, **kwargs)
    if spec.channel_type is ChannelType.NETWORK:
        return NetworkChannel(spec, **kwargs)
    raise ValueError(f"unknown channel type {spec.channel_type}")
