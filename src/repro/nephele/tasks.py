"""Task programming model.

A task implements :meth:`Task.run` against a :class:`TaskContext`; it
never sees channels, compression, or threads — "the implementation is
completely transparent to the tasks, so there is no modification
required to their program code" (Section III-B).
"""

from __future__ import annotations

import abc
from typing import Callable, Iterator, List, Optional

from ..data.datasource import DataSource
from .channels import Channel


class TaskContext:
    """What a running task can do: read inputs, emit outputs."""

    def __init__(
        self, name: str, inputs: List[Channel], outputs: List[Channel]
    ) -> None:
        self.name = name
        self._inputs = inputs
        self._outputs = outputs

    @property
    def n_inputs(self) -> int:
        return len(self._inputs)

    @property
    def n_outputs(self) -> int:
        return len(self._outputs)

    def read(self, index: int = 0) -> Optional[bytes]:
        """Next record from input ``index``; ``None`` at end-of-stream."""
        return self._inputs[index].read_record()

    def records(self, index: int = 0) -> Iterator[bytes]:
        """Iterate input ``index`` to exhaustion."""
        return iter(self._inputs[index])

    def emit(self, record: bytes, index: int = 0) -> None:
        """Write a record to output ``index``."""
        self._outputs[index].write_record(record)

    def emit_all(self, record: bytes) -> None:
        for channel in self._outputs:
            channel.write_record(record)


class Task(abc.ABC):
    """Base class for all tasks."""

    @abc.abstractmethod
    def run(self, ctx: TaskContext) -> None:
        """Process inputs to outputs.  Channels are closed by the engine."""


class SourceTask(Task):
    """Emit a :class:`~repro.data.datasource.DataSource` as records.

    The paper's sender task: "repeatedly wrote the respective test files
    ... to the network channel until a total data volume of 50 GB was
    generated" — here the repetition lives in the data source.
    """

    def __init__(self, source_factory: Callable[[], DataSource], record_bytes: int = 64 * 1024) -> None:
        if record_bytes <= 0:
            raise ValueError("record_bytes must be positive")
        self._source_factory = source_factory
        self.record_bytes = record_bytes

    def run(self, ctx: TaskContext) -> None:
        source = self._source_factory()
        while True:
            chunk = source.read(self.record_bytes)
            if not chunk:
                return
            ctx.emit_all(chunk)


class CollectTask(Task):
    """Receiver that gathers records (and checks nothing is lost)."""

    def __init__(self, keep_data: bool = False) -> None:
        self.keep_data = keep_data
        self.records_received = 0
        self.bytes_received = 0
        self.collected: List[bytes] = []

    def run(self, ctx: TaskContext) -> None:
        for record in ctx.records():
            self.records_received += 1
            self.bytes_received += len(record)
            if self.keep_data:
                self.collected.append(record)


class MapTask(Task):
    """Apply a pure function record -> record (or None to drop)."""

    def __init__(self, fn: Callable[[bytes], Optional[bytes]]) -> None:
        self.fn = fn

    def run(self, ctx: TaskContext) -> None:
        for record in ctx.records():
            out = self.fn(record)
            if out is not None:
                ctx.emit_all(out)


class FunctionTask(Task):
    """Wrap an arbitrary ``fn(ctx)`` as a task."""

    def __init__(self, fn: Callable[[TaskContext], None]) -> None:
        self.fn = fn

    def run(self, ctx: TaskContext) -> None:
        self.fn(ctx)


class FilterTask(Task):
    """Keep only records for which ``predicate`` holds."""

    def __init__(self, predicate: Callable[[bytes], bool]) -> None:
        self.predicate = predicate
        self.records_dropped = 0

    def run(self, ctx: TaskContext) -> None:
        for record in ctx.records():
            if self.predicate(record):
                ctx.emit_all(record)
            else:
                self.records_dropped += 1


class BatchTask(Task):
    """Coalesce small records into batches of ~``batch_bytes``.

    Useful in front of a compressing channel: larger records mean
    fuller 128 KB blocks and better ratios.
    """

    def __init__(self, batch_bytes: int = 64 * 1024) -> None:
        if batch_bytes <= 0:
            raise ValueError("batch_bytes must be positive")
        self.batch_bytes = batch_bytes

    def run(self, ctx: TaskContext) -> None:
        buffer = bytearray()
        for record in ctx.records():
            buffer.extend(record)
            if len(buffer) >= self.batch_bytes:
                ctx.emit_all(bytes(buffer))
                buffer.clear()
        if buffer:
            ctx.emit_all(bytes(buffer))


class MergeTask(Task):
    """Concatenate all inputs, in input order, onto the outputs.

    Drains input 0 to exhaustion, then input 1, and so on — the simple
    union-of-streams vertex for fan-in topologies.
    """

    def run(self, ctx: TaskContext) -> None:
        for index in range(ctx.n_inputs):
            for record in ctx.records(index):
                ctx.emit_all(record)
