"""Record (de)serialization for channel transport.

Nephele tasks exchange *records*; channels move *bytes*.  This module
provides the length-prefixed record framing the channels use so that
arbitrary byte records survive transport through any channel type.

Wire format per record: 4-byte little-endian length + payload.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, Optional

_LEN = struct.Struct("<I")

#: Records larger than this are rejected (sanity bound, 256 MB).
MAX_RECORD_BYTES = 256 * 1024 * 1024


class RecordSerializationError(Exception):
    """Raised on malformed record frames."""


def encode_record(record: bytes) -> bytes:
    """Length-prefix one record."""
    if len(record) > MAX_RECORD_BYTES:
        raise RecordSerializationError(
            f"record of {len(record)} bytes exceeds the {MAX_RECORD_BYTES} cap"
        )
    return _LEN.pack(len(record)) + record


class RecordDecoder:
    """Incremental decoder: feed bytes, pull complete records."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def next_record(self) -> Optional[bytes]:
        """Return the next complete record, or None if more bytes are needed."""
        if len(self._buffer) < _LEN.size:
            return None
        (length,) = _LEN.unpack_from(self._buffer)
        if length > MAX_RECORD_BYTES:
            raise RecordSerializationError(f"record length {length} exceeds cap")
        end = _LEN.size + length
        if len(self._buffer) < end:
            return None
        record = bytes(self._buffer[_LEN.size : end])
        del self._buffer[:end]
        return record

    def drain(self) -> Iterator[bytes]:
        """Yield all currently complete records."""
        while True:
            record = self.next_record()
            if record is None:
                return
            yield record

    def assert_empty(self) -> None:
        """Raise if a partial record remains (stream ended mid-frame)."""
        if self._buffer:
            raise RecordSerializationError(
                f"{len(self._buffer)} trailing bytes do not form a record"
            )


def read_records(stream: BinaryIO, chunk_size: int = 64 * 1024) -> Iterator[bytes]:
    """Stream records out of a binary file-like object."""
    decoder = RecordDecoder()
    while True:
        chunk = stream.read(chunk_size)
        if not chunk:
            break
        decoder.feed(chunk)
        yield from decoder.drain()
    decoder.assert_empty()
