"""Mini Nephele: DAG jobs, tasks, and (compressing) channels.

The integration substrate of Section III-B — a small dataflow framework
whose file and network channels route transparently through the
adaptive compression module.
"""

from .channels import (
    Channel,
    ChannelClosedError,
    ChannelSpec,
    ChannelType,
    CompressionMode,
    FileChannel,
    InMemoryChannel,
    NetworkChannel,
    build_channel,
)
from .execution import (
    ChannelStats,
    ExecutionEngine,
    JobExecutionError,
    JobResult,
    run_job,
)
from .graph import Edge, JobGraph, JobGraphError, Vertex
from .records import (
    MAX_RECORD_BYTES,
    RecordDecoder,
    RecordSerializationError,
    encode_record,
    read_records,
)
from .tasks import (
    BatchTask,
    CollectTask,
    FilterTask,
    FunctionTask,
    MapTask,
    MergeTask,
    SourceTask,
    Task,
    TaskContext,
)

__all__ = [
    "JobGraph",
    "JobGraphError",
    "Vertex",
    "Edge",
    "Task",
    "TaskContext",
    "SourceTask",
    "CollectTask",
    "MapTask",
    "FunctionTask",
    "FilterTask",
    "BatchTask",
    "MergeTask",
    "Channel",
    "ChannelSpec",
    "ChannelType",
    "CompressionMode",
    "InMemoryChannel",
    "FileChannel",
    "NetworkChannel",
    "build_channel",
    "ChannelClosedError",
    "ExecutionEngine",
    "JobResult",
    "JobExecutionError",
    "ChannelStats",
    "run_job",
    "encode_record",
    "RecordDecoder",
    "read_records",
    "RecordSerializationError",
    "MAX_RECORD_BYTES",
]
