"""Threaded execution engine for job graphs.

Each vertex runs in its own thread (the paper ran tasks on distinct
VMs; threads preserve the concurrency structure, and network channels
still move bytes through real kernel sockets).  Channels are
instantiated per edge from their :class:`~repro.nephele.channels.ChannelSpec`;
output channels are closed automatically when a task returns, which
propagates end-of-stream downstream.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

logger = logging.getLogger(__name__)

from .channels import Channel, ChannelType, FileChannel, build_channel
from .graph import JobGraph, Vertex
from .tasks import TaskContext


class JobExecutionError(Exception):
    """One or more tasks failed; carries the per-task errors."""

    def __init__(self, failures: Dict[str, BaseException]) -> None:
        lines = ", ".join(f"{name}: {exc!r}" for name, exc in failures.items())
        super().__init__(f"job failed: {lines}")
        self.failures = failures


@dataclass
class ChannelStats:
    """Per-edge transport statistics after the run."""

    edge: str
    channel_type: ChannelType
    bytes_in: Optional[int] = None
    bytes_out: Optional[int] = None

    @property
    def compression_ratio(self) -> Optional[float]:
        if not self.bytes_in or self.bytes_out is None:
            return None
        return self.bytes_out / self.bytes_in


@dataclass
class JobResult:
    """Outcome of one job execution."""

    job_name: str
    wall_seconds: float
    channel_stats: List[ChannelStats] = field(default_factory=list)


class ExecutionEngine:
    """Run a validated job graph to completion."""

    def __init__(self, keep_files: bool = False) -> None:
        self.keep_files = keep_files

    def run(self, graph: JobGraph, timeout: Optional[float] = None) -> JobResult:
        graph.validate()
        order = graph.topological_order()

        channels: Dict[int, Channel] = {}
        for edge in graph.edges:
            channels[id(edge)] = build_channel(edge.spec)

        failures: Dict[str, BaseException] = {}
        threads: List[threading.Thread] = []
        file_edges = [
            e for e in graph.edges if e.spec.channel_type is ChannelType.FILE
        ]

        # File channels decouple producer and consumer: a vertex with a
        # file-channel input may only start once its producers finished.
        # We realise this with per-vertex start events.
        start_events: Dict[str, threading.Event] = {
            v.name: threading.Event() for v in order
        }
        done_events: Dict[str, threading.Event] = {
            v.name: threading.Event() for v in order
        }

        def prerequisites(vertex: Vertex) -> List[Vertex]:
            return [
                e.source
                for e in vertex.inputs
                if e.spec.channel_type is ChannelType.FILE
            ]

        def worker(vertex: Vertex) -> None:
            try:
                for dep in prerequisites(vertex):
                    done_events[dep.name].wait()
                start_events[vertex.name].set()
                ctx = TaskContext(
                    vertex.name,
                    inputs=[channels[id(e)] for e in vertex.inputs],
                    outputs=[channels[id(e)] for e in vertex.outputs],
                )
                vertex.task.run(ctx)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                logger.warning("task %r failed: %r", vertex.name, exc)
                failures[vertex.name] = exc
            finally:
                for e in vertex.outputs:
                    try:
                        channels[id(e)].close_write()
                    except BaseException as exc:  # noqa: BLE001
                        failures.setdefault(f"{vertex.name}(close)", exc)
                done_events[vertex.name].set()

        t0 = time.monotonic()
        for vertex in order:
            thread = threading.Thread(
                target=worker, args=(vertex,), name=f"nephele-{vertex.name}", daemon=True
            )
            threads.append(thread)
            thread.start()
        deadline = None if timeout is None else time.monotonic() + timeout
        for thread in threads:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            thread.join(remaining)
            if thread.is_alive():
                raise JobExecutionError(
                    {thread.name: TimeoutError(f"task did not finish in {timeout}s")}
                )
        wall = time.monotonic() - t0

        stats = []
        for edge in graph.edges:
            channel = channels[id(edge)]
            writer = getattr(channel, "block_writer", None)
            stats.append(
                ChannelStats(
                    edge=edge.name,
                    channel_type=edge.spec.channel_type,
                    bytes_in=getattr(writer, "bytes_in", None),
                    bytes_out=getattr(writer, "bytes_out", None),
                )
            )
            if isinstance(channel, FileChannel) and not self.keep_files:
                channel.dispose()

        if failures:
            raise JobExecutionError(failures)
        return JobResult(job_name=graph.name, wall_seconds=wall, channel_stats=stats)


def run_job(graph: JobGraph, timeout: Optional[float] = 120.0) -> JobResult:
    """Convenience wrapper: execute ``graph`` with the default engine."""
    return ExecutionEngine().run(graph, timeout=timeout)
