"""Physical host composition: NIC, disk, and hosted virtual machines."""

from __future__ import annotations

import random
from typing import List, Optional, Union

from .disk import CachedDisk, PlainDisk
from .engine import Environment
from .hypervisor import VirtProfile
from .link import SharedLink
from .rng import RngStreams
from .vm import VirtualMachine


class PhysicalHost:
    """One compute node of the simulated cloud.

    Owns the shared NIC (a :class:`~repro.sim.link.SharedLink`) and the
    physical disk; virtual machines are placed on it and contend for
    both.  The appendix hardware — 1 GbE NIC, a single SATA disk — maps
    to one link and one disk per host.
    """

    def __init__(
        self,
        env: Environment,
        profile: VirtProfile,
        rngs: RngStreams,
        name: str = "host",
        nic_capacity: Optional[float] = None,
    ) -> None:
        self.env = env
        self.profile = profile
        self.rngs = rngs
        self.name = name
        self.nic = SharedLink(
            env, capacity=nic_capacity or profile.net_app_rate, name=f"{name}.nic"
        )
        profile.net_fluctuation.start(env, self.nic, rngs.stream(f"{name}.nic-fluct"))
        self.disk: Union[PlainDisk, CachedDisk]
        disk_rng = rngs.stream(f"{name}.disk")
        if profile.disk_cache is not None:
            self.disk = CachedDisk(env, profile.disk_cache, disk_rng)
        else:
            self.disk = PlainDisk(env, profile.file_write_rate, disk_rng)
        self.vms: List[VirtualMachine] = []

    def spawn_vm(self, name: Optional[str] = None) -> VirtualMachine:
        """Place a new virtual machine on this host."""
        vm_name = name or f"{self.name}.vm{len(self.vms)}"
        vm = VirtualMachine(self, vm_name)
        self.vms.append(vm)
        return vm

    def colocated_load(self, vm: VirtualMachine) -> int:
        """Number of *other* VMs on this host (shared-I/O neighbours)."""
        return sum(1 for other in self.vms if other is not vm)

    def rng(self, purpose: str) -> random.Random:
        return self.rngs.stream(f"{self.name}.{purpose}")
