"""Pre-wired simulation scenarios (one Table II cell per call).

:func:`run_transfer_scenario` assembles environment, shared link,
fluctuation process, background traffic and the transfer process for a
single experiment cell and runs it to completion.  All experiment
harness code (:mod:`repro.experiments`) goes through this entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..data.corpus import Compressibility
from ..data.datasource import DataSource, RepeatingSource
from ..telemetry.events import BUS
from ..schemes.base import CompressionScheme
from ..schemes.rate_based import RateBasedScheme
from ..schemes.static import StaticScheme
from .calibration import FOREGROUND_WEIGHT, CodecSimModel
from .engine import Environment
from .fluctuation import FluctuationModel
from .hypervisor import EVALUATION_PROFILE, VirtProfile
from .link import SharedLink
from .rng import RngStreams
from .transfer import BackgroundTraffic, TransferResult, TransferSim

#: 50 GB, the paper's per-job data volume.
PAPER_TOTAL_BYTES = 50 * 10**9


@dataclass
class ScenarioConfig:
    """One cell of the evaluation matrix."""

    #: Scheme under test; built per run so state never leaks.
    scheme_factory: Callable[[int], CompressionScheme]
    #: Workload; defaults to repeating a HIGH-class payload.
    compressibility: Compressibility = Compressibility.HIGH
    #: Custom source factory (overrides ``compressibility`` if set).
    source_factory: Optional[Callable[[], DataSource]] = None
    #: Total application bytes to move (paper: 50 GB).
    total_bytes: int = PAPER_TOTAL_BYTES
    #: Concurrent background TCP connections (paper: 0-3).
    n_background: int = 0
    #: The paper's ``t``.
    epoch_seconds: float = 2.0
    seed: int = 0
    profile: VirtProfile = field(default_factory=lambda: EVALUATION_PROFILE)
    #: Fluctuation model; ``None`` uses the profile's.
    fluctuation: Optional[FluctuationModel] = None
    #: Codec model; ``None`` uses the calibrated default.
    model: Optional[CodecSimModel] = None
    foreground_weight: float = FOREGROUND_WEIGHT


def make_static_factory(level: int, name: str) -> Callable[[int], CompressionScheme]:
    """Scheme factory for one of Table II's static rows (NO/LIGHT/...)."""

    def factory(n_levels: int) -> CompressionScheme:
        return StaticScheme(n_levels, level, name=name)

    return factory


def make_dynamic_factory(alpha: float = 0.2) -> Callable[[int], CompressionScheme]:
    """Scheme factory for the paper's DYNAMIC row (Algorithm 1)."""

    def factory(n_levels: int) -> CompressionScheme:
        return RateBasedScheme(n_levels, alpha=alpha)

    return factory


def run_transfer_scenario(config: ScenarioConfig) -> TransferResult:
    """Run one scenario to completion and return its result."""
    rngs = RngStreams(config.seed)
    env = Environment()
    model = config.model or CodecSimModel()

    # When telemetry is on, stamp events with simulated seconds for the
    # duration of this scenario, then restore the caller's clock.
    previous_clock = env.bind_telemetry(BUS) if BUS.active else None

    try:
        link = SharedLink(env, capacity=config.profile.net_app_rate, name="nic")
        fluctuation = config.fluctuation or config.profile.net_fluctuation
        fluctuation.start(env, link, rngs.stream("link-fluctuation"))

        background = BackgroundTraffic(env, link, config.n_background)

        if config.source_factory is not None:
            source = config.source_factory()
        else:
            source = RepeatingSource.from_corpus(
                config.compressibility, config.total_bytes
            )

        scheme = config.scheme_factory(model.n_levels)
        sim = TransferSim(
            env,
            link,
            source,
            scheme,
            model,
            rngs.stream("transfer"),
            epoch_seconds=config.epoch_seconds,
            n_background=config.n_background,
            cpu_loss_per_bg=config.profile.steal_per_bg_flow,
            compute_jitter=config.profile.compute_jitter,
            foreground_weight=config.foreground_weight,
        )
        proc = env.process(sim.run(), name="transfer")
        # Background flows and fluctuation processes never end on their
        # own, so step the clock in slices until the transfer finishes.
        while not proc.triggered:
            before = env.now
            env.run(until=env.now + 300.0)
            if env.now == before and not proc.triggered:
                raise RuntimeError("simulation stalled before transfer completion")
        background.stop()
        return proc.value
    finally:
        if previous_clock is not None:
            BUS.clock = previous_clock
