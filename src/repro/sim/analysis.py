"""NumPy-based analysis of transfer traces.

Turns the epoch traces produced by :class:`~repro.sim.transfer.TransferSim`
(and the real-mode controller) into arrays and uniform time grids, the
form downstream users need for plotting the paper's Figures 4–6 with
their own tooling, and provides the summary statistics the experiment
harness reports.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.controller import EpochRecord
from .transfer import TransferEpoch, TransferResult

#: Array fields extracted from a simulation trace.
SIM_FIELDS = (
    "start",
    "end",
    "level",
    "app_rate",
    "wire_rate",
    "vm_cpu_util",
    "host_cpu_util",
)


def trace_arrays(result: TransferResult) -> Dict[str, np.ndarray]:
    """Columnar view of a simulated transfer's epochs."""
    epochs = result.epochs
    return {
        "start": np.array([e.start for e in epochs], dtype=float),
        "end": np.array([e.end for e in epochs], dtype=float),
        "level": np.array([e.level for e in epochs], dtype=int),
        "app_rate": np.array([e.app_rate for e in epochs], dtype=float),
        "wire_rate": np.array([e.wire_rate for e in epochs], dtype=float),
        "vm_cpu_util": np.array([e.vm_cpu_util for e in epochs], dtype=float),
        "host_cpu_util": np.array([e.host_cpu_util for e in epochs], dtype=float),
    }


def controller_arrays(trace: Sequence[EpochRecord]) -> Dict[str, np.ndarray]:
    """Columnar view of a real-mode controller trace."""
    return {
        "start": np.array([r.start for r in trace], dtype=float),
        "end": np.array([r.end for r in trace], dtype=float),
        "level": np.array([r.level_after for r in trace], dtype=int),
        "app_rate": np.array([r.app_rate for r in trace], dtype=float),
    }


def resample_step(
    times: np.ndarray, values: np.ndarray, grid: np.ndarray
) -> np.ndarray:
    """Sample a piecewise-constant signal onto a uniform grid.

    ``values[i]`` is taken to hold from ``times[i]`` onward (step
    interpolation — the correct reading for levels and epoch rates).
    Grid points before the first time get ``values[0]``.
    """
    if times.ndim != 1 or values.shape != times.shape:
        raise ValueError("times and values must be 1-D arrays of equal shape")
    if len(times) == 0:
        raise ValueError("need at least one sample")
    if np.any(np.diff(times) < 0):
        raise ValueError("times must be non-decreasing")
    idx = np.searchsorted(times, grid, side="right") - 1
    idx = np.clip(idx, 0, len(times) - 1)
    return values[idx]


def uniform_grid(result: TransferResult, n_points: int = 200) -> np.ndarray:
    """A uniform time grid spanning the transfer."""
    if n_points < 2:
        raise ValueError("need at least two grid points")
    return np.linspace(0.0, result.completion_time, n_points)


def level_occupancy(result: TransferResult) -> Dict[int, float]:
    """Fraction of *time* spent at each level (not epoch counts)."""
    arrays = trace_arrays(result)
    durations = arrays["end"] - arrays["start"]
    total = float(durations.sum())
    if total <= 0:
        return {}
    occupancy: Dict[int, float] = {}
    for level in np.unique(arrays["level"]):
        mask = arrays["level"] == level
        occupancy[int(level)] = float(durations[mask].sum() / total)
    return occupancy


def rate_statistics(result: TransferResult) -> Dict[str, float]:
    """Duration-weighted application-rate statistics over a trace."""
    arrays = trace_arrays(result)
    durations = arrays["end"] - arrays["start"]
    rates = arrays["app_rate"]
    if durations.sum() <= 0:
        raise ValueError("trace has no duration")
    weights = durations / durations.sum()
    mean = float(np.sum(weights * rates))
    var = float(np.sum(weights * (rates - mean) ** 2))
    return {
        "mean": mean,
        "std": float(np.sqrt(var)),
        "min": float(rates.min()),
        "max": float(rates.max()),
        "p50": float(np.percentile(rates, 50)),
        "p95": float(np.percentile(rates, 95)),
    }


def compare_traces(results: List[TransferResult]) -> Dict[str, Dict[str, float]]:
    """Per-scheme rate statistics for a batch of runs."""
    return {r.scheme_name: rate_statistics(r) for r in results}
