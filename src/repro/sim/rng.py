"""Named deterministic random streams.

Every stochastic component of the simulator (link jitter, EC2 on/off
process, disk cache flush timing, ...) draws from its own named stream
derived from the experiment seed.  This keeps components statistically
independent *and* makes runs reproducible even when the set of active
components changes — adding a sampler does not perturb the link noise.
"""

from __future__ import annotations

import hashlib
import random


class RngStreams:
    """A factory of independent ``random.Random`` streams."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use, then shared)."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt: str) -> "RngStreams":
        """A derived factory, e.g. one per repeat of an experiment."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
