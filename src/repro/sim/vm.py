"""Virtual machine: CPU ledgers + access to the host's shared devices."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .cpu import DualLedger
from .link import Flow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .host import PhysicalHost


class VirtualMachine:
    """One guest on a :class:`~repro.sim.host.PhysicalHost`.

    Carries the dual CPU ledger (VM-displayed vs host-observed, the
    Section II instrument) and convenience methods that charge the
    right cost pair for each I/O operation while moving bytes through
    the host's shared devices.
    """

    def __init__(self, host: "PhysicalHost", name: str) -> None:
        self.host = host
        self.name = name
        self.profile = host.profile
        self.ledger = DualLedger()

    # -- CPU charging per I/O operation -------------------------------

    def charge_net_send(self, nbytes: float) -> None:
        pair = self.profile.net_send
        self.ledger.charge_io(pair.vm, pair.host_extra, nbytes)

    def charge_net_recv(self, nbytes: float) -> None:
        pair = self.profile.net_recv
        self.ledger.charge_io(pair.vm, pair.host_extra, nbytes)

    def charge_file_write(self, nbytes: float) -> None:
        pair = self.profile.file_write
        self.ledger.charge_io(pair.vm, pair.host_extra, nbytes)

    def charge_file_read(self, nbytes: float) -> None:
        pair = self.profile.file_read
        self.ledger.charge_io(pair.vm, pair.host_extra, nbytes)

    # -- device access -------------------------------------------------

    def open_net_flow(self, name: str | None = None, weight: float = 1.0) -> Flow:
        return self.host.nic.open_flow(name or f"{self.name}.flow", weight=weight)

    @property
    def disk(self):
        return self.host.disk

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VirtualMachine {self.name} on {self.host.name}>"
