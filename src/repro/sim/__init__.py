"""Discrete-event virtualization/cloud simulator.

The substrate standing in for the paper's Eucalyptus cloud, XEN/KVM
hosts and Amazon EC2 instances: a deterministic event engine, fluid
shared links with weighted fair sharing, platform profiles with split
VM-view/host-view CPU accounting, disk models (including the XEN
write-back cache artifact), fluctuation processes, and the Section IV
transfer scenario runner.
"""

from .analysis import (
    compare_traces,
    controller_arrays,
    level_occupancy,
    rate_statistics,
    resample_step,
    trace_arrays,
    uniform_grid,
)
from .calibration import (
    CODEC_MODEL,
    CPU_LOSS_PER_BG_FLOW,
    FOREGROUND_WEIGHT,
    LINK_APP_CAPACITY,
    CodecPoint,
    CodecSimModel,
    cpu_available,
)
from .cpu import CATEGORIES, CostVector, CpuLedger, DualLedger, utilization
from .disk import CachedDisk, PlainDisk
from .engine import Environment, Event, Process, SimulationError, Timeout
from .filetransfer import FileWriteSim, run_file_write_scenario
from .fleet import (
    FleetArrivalSpec,
    FleetFlowOutcome,
    FleetFlowSpec,
    FleetResult,
    SimFleetController,
    run_fleet_scenario,
)
from .fluctuation import ConstantCapacity, FluctuationModel, GaussianJitter, MarkovOnOff
from .host import PhysicalHost
from .hypervisor import (
    EVALUATION_PROFILE,
    PROFILES,
    DiskCacheParams,
    IoCostPair,
    VirtProfile,
    build_profiles,
)
from .link import Flow, SharedLink
from .metrics import (
    CpuUtilizationSampler,
    ThroughputSample,
    ThroughputSampler,
    UtilizationSample,
)
from .resources import Semaphore, Store
from .rng import RngStreams
from .scenario import (
    PAPER_TOTAL_BYTES,
    ScenarioConfig,
    make_dynamic_factory,
    make_static_factory,
    run_transfer_scenario,
)
from .transfer import BackgroundTraffic, TransferEpoch, TransferResult, TransferSim
from .vm import VirtualMachine
from .workload import (
    OPERATIONS,
    SoftmaxArrivalProcess,
    WorkloadReport,
    run_file_read,
    run_file_write,
    run_net_recv,
    run_net_send,
)

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "SimulationError",
    "Store",
    "Semaphore",
    "RngStreams",
    "SharedLink",
    "Flow",
    "FluctuationModel",
    "ConstantCapacity",
    "GaussianJitter",
    "MarkovOnOff",
    "CATEGORIES",
    "CostVector",
    "CpuLedger",
    "DualLedger",
    "utilization",
    "VirtProfile",
    "IoCostPair",
    "DiskCacheParams",
    "PROFILES",
    "EVALUATION_PROFILE",
    "build_profiles",
    "PlainDisk",
    "CachedDisk",
    "PhysicalHost",
    "VirtualMachine",
    "ThroughputSampler",
    "ThroughputSample",
    "CpuUtilizationSampler",
    "UtilizationSample",
    "CodecPoint",
    "CodecSimModel",
    "CODEC_MODEL",
    "LINK_APP_CAPACITY",
    "FOREGROUND_WEIGHT",
    "CPU_LOSS_PER_BG_FLOW",
    "cpu_available",
    "TransferSim",
    "TransferResult",
    "TransferEpoch",
    "BackgroundTraffic",
    "FileWriteSim",
    "run_file_write_scenario",
    "FleetFlowSpec",
    "FleetArrivalSpec",
    "FleetFlowOutcome",
    "FleetResult",
    "SimFleetController",
    "run_fleet_scenario",
    "trace_arrays",
    "controller_arrays",
    "resample_step",
    "uniform_grid",
    "level_occupancy",
    "rate_statistics",
    "compare_traces",
    "ScenarioConfig",
    "run_transfer_scenario",
    "make_static_factory",
    "make_dynamic_factory",
    "PAPER_TOTAL_BYTES",
    "WorkloadReport",
    "run_net_send",
    "run_net_recv",
    "run_file_write",
    "run_file_read",
    "OPERATIONS",
    "SoftmaxArrivalProcess",
]
