"""Fluid-flow model of a shared network link.

Co-located virtual machines "in fact share the I/O resources of the
host system" (Section I); Table II's background scenarios are 1–3
concurrent TCP connections saturating the sender host's NIC.  This
module models that contention with the classic *fluid* approximation:
at any instant, each active flow receives a weighted max-min fair share
of the link capacity, subject to its own demand cap (a flow whose
sender is compression-bound does not use its full share; the spare
capacity is redistributed to the other flows).

Calibration: the paper's Table II NO-compression rows imply the
foreground flow's share of the 1 GbE link was consistently *larger*
than a 1/(c+1) fair split — 0.63/0.41/0.35 of the link for c=1/2/3
background connections.  A foreground weight of 1.5 (background weight
1.0) reproduces those fractions to within a few percent; see
:mod:`repro.sim.calibration`.

Rates are bytes/second, sizes are bytes, time is seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from .engine import Environment, Event

#: Residual bytes below which a transmission counts as finished.  Float
#: error of ``remaining - rate * dt`` leaves residues around
#: ``size * 1e-10``; treating anything under a hundredth of a byte as
#: done absorbs those without measurably distorting multi-KB transfers.
_COMPLETION_EPS = 1e-2

#: Never schedule a completion wake-up closer than this: at large
#: simulation times, ``now + tiny`` can round back to ``now`` and
#: starve the event loop at a single timestamp.
_MIN_WAKE_DELAY = 1e-9


@dataclass
class Flow:
    """One logical connection riding the link."""

    link: "SharedLink"
    name: str
    weight: float = 1.0
    #: Demand cap in bytes/s; ``None`` means the flow will use whatever
    #: share it is allocated.
    demand: Optional[float] = None

    # -- live transmission state (owned by the link) -----------------
    remaining: float = 0.0
    rate: float = 0.0
    completion: Optional[Event] = None
    bytes_done: float = 0.0
    _active: bool = field(default=False, repr=False)

    @property
    def transmitting(self) -> bool:
        return self._active

    def set_demand(self, demand: Optional[float]) -> None:
        """Update the demand cap (takes effect immediately)."""
        if demand is not None and demand < 0:
            raise ValueError("demand must be >= 0 or None")
        self.link._advance()
        self.demand = demand
        self.link._recompute()


class SharedLink:
    """A single bottleneck link shared by weighted max-min fair flows."""

    def __init__(
        self,
        env: Environment,
        capacity: float,
        name: str = "link",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._capacity_factor = 1.0
        self._flows: List[Flow] = []
        self._last_update = env.now
        self._wake_version = 0
        #: Total bytes that have crossed the link (for conservation tests).
        self.total_bytes = 0.0

    # -- flow management ---------------------------------------------

    def open_flow(
        self, name: str, weight: float = 1.0, demand: Optional[float] = None
    ) -> Flow:
        if weight <= 0:
            raise ValueError("weight must be positive")
        flow = Flow(link=self, name=name, weight=weight, demand=demand)
        self._flows.append(flow)
        return flow

    def close_flow(self, flow: Flow) -> None:
        if flow.transmitting:
            raise RuntimeError(f"flow {flow.name!r} still transmitting")
        self._flows.remove(flow)
        self._advance()
        self._recompute()

    @property
    def effective_capacity(self) -> float:
        return self.capacity * self._capacity_factor

    def set_capacity_factor(self, factor: float) -> None:
        """Scale the link capacity (driven by fluctuation processes)."""
        if factor < 0:
            raise ValueError("capacity factor must be >= 0")
        self._advance()
        self._capacity_factor = factor
        self._recompute()

    # -- transmission ------------------------------------------------

    def transmit(self, flow: Flow, nbytes: float) -> Event:
        """Event that fires when ``nbytes`` have crossed the link."""
        if flow not in self._flows:
            raise RuntimeError(f"flow {flow.name!r} not open on this link")
        if flow.transmitting:
            raise RuntimeError(f"flow {flow.name!r} already transmitting")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        event = self.env.event()
        if nbytes == 0:
            event.succeed()
            return event
        self._advance()
        flow.remaining = float(nbytes)
        flow.completion = event
        flow._active = True
        self._recompute()
        return event

    def send(self, flow: Flow, nbytes: float) -> Generator[Event, None, None]:
        """Process-style convenience wrapper around :meth:`transmit`."""
        yield self.transmit(flow, nbytes)

    def current_rate(self, flow: Flow) -> float:
        """The flow's instantaneous allocated rate (bytes/s)."""
        self._advance()
        self._recompute()
        return flow.rate

    def allocation_preview(self, extra_demand: Optional[float] = None) -> float:
        """Rate a hypothetical foreground transmission would get *now*.

        Used by the epoch-granularity transfer model to price a send
        without mutating link state.
        """
        probe = Flow(link=self, name="_probe", weight=1.0, demand=extra_demand)
        probe._active = True
        probe.remaining = 1.0
        alloc = self._water_fill(self._active_flows() + [probe])
        return alloc.get(id(probe), 0.0)

    # -- internals ----------------------------------------------------

    def _active_flows(self) -> List[Flow]:
        return [f for f in self._flows if f._active]

    def _advance(self) -> None:
        """Account progress since the last state change."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        for flow in self._active_flows():
            moved = min(flow.remaining, flow.rate * dt)
            flow.remaining -= moved
            flow.bytes_done += moved
            self.total_bytes += moved

    def _water_fill(self, active: List[Flow]) -> Dict[int, float]:
        """Weighted max-min allocation with per-flow demand caps."""
        alloc: Dict[int, float] = {}
        todo = list(active)
        cap = self.effective_capacity
        while todo:
            total_weight = sum(f.weight for f in todo)
            capped = []
            for f in todo:
                share = cap * f.weight / total_weight
                if f.demand is not None and f.demand < share:
                    capped.append(f)
            if not capped:
                for f in todo:
                    alloc[id(f)] = cap * f.weight / total_weight
                break
            for f in capped:
                alloc[id(f)] = f.demand
                cap -= f.demand
                todo.remove(f)
            cap = max(cap, 0.0)
        return alloc

    def _recompute(self) -> None:
        """Re-allocate rates and reschedule the next completion wake-up."""
        active = self._active_flows()
        # Complete anything that has (numerically) finished, crediting
        # the sub-epsilon residue so byte accounting stays exact.
        finished = [f for f in active if f.remaining <= _COMPLETION_EPS]
        for flow in finished:
            flow.bytes_done += flow.remaining
            self.total_bytes += flow.remaining
            flow.remaining = 0.0
            flow._active = False
            flow.rate = 0.0
            event, flow.completion = flow.completion, None
            assert event is not None
            event.succeed()
        active = [f for f in active if f.remaining > _COMPLETION_EPS]

        alloc = self._water_fill(active)
        next_done = math.inf
        for flow in active:
            flow.rate = alloc.get(id(flow), 0.0)
            if flow.rate > 0:
                next_done = min(next_done, flow.remaining / flow.rate)

        self._wake_version += 1
        if next_done is not math.inf:
            version = self._wake_version
            wake = self.env.timeout(max(next_done, _MIN_WAKE_DELAY))
            wake.callbacks.append(lambda _ev: self._on_wake(version))

    def _on_wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # stale wake-up; state changed since it was scheduled
        self._advance()
        self._recompute()
