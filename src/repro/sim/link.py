"""Fluid-flow model of a shared network link.

Co-located virtual machines "in fact share the I/O resources of the
host system" (Section I); Table II's background scenarios are 1–3
concurrent TCP connections saturating the sender host's NIC.  This
module models that contention with the classic *fluid* approximation:
at any instant, each active flow receives a weighted max-min fair share
of the link capacity, subject to its own demand cap (a flow whose
sender is compression-bound does not use its full share; the spare
capacity is redistributed to the other flows).

Calibration: the paper's Table II NO-compression rows imply the
foreground flow's share of the 1 GbE link was consistently *larger*
than a 1/(c+1) fair split — 0.63/0.41/0.35 of the link for c=1/2/3
background connections.  A foreground weight of 1.5 (background weight
1.0) reproduces those fractions to within a few percent; see
:mod:`repro.sim.calibration`.

Scale: the allocator sorts demand-capped flows by normalized demand
(``demand / weight``) once and walks the sorted prefix, so a full
re-price of N flows is O(N log N) — the seed's restart-from-scratch
fill with ``list.remove`` was O(N²) and throttled thousand-flow fleets
(see docs/simulator.md, "Performance and scale").  A dirty flag skips
repricing entirely when nothing allocation-relevant changed, and the
single completion wake-up timer is cancelled/reused instead of being
version-orphaned in the event heap.

Rates are bytes/second, sizes are bytes, time is seconds.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, Generator, List, Optional

from .engine import Environment, Event, Timeout

#: Residual bytes below which a transmission counts as finished.  Float
#: error of ``remaining - rate * dt`` leaves residues around
#: ``size * 1e-10``; treating anything under a hundredth of a byte as
#: done absorbs those without measurably distorting multi-KB transfers.
_COMPLETION_EPS = 1e-2

#: Never schedule a completion wake-up closer than this: at large
#: simulation times, ``now + tiny`` can round back to ``now`` and
#: starve the event loop at a single timestamp.
_MIN_WAKE_DELAY = 1e-9


@dataclass
class Flow:
    """One logical connection riding the link."""

    link: "SharedLink"
    name: str
    weight: float = 1.0
    #: Demand cap in bytes/s; ``None`` means the flow will use whatever
    #: share it is allocated.
    demand: Optional[float] = None

    # -- live transmission state (owned by the link) -----------------
    remaining: float = 0.0
    rate: float = 0.0
    completion: Optional[Event] = None
    bytes_done: float = 0.0
    _active: bool = field(default=False, repr=False)

    @property
    def transmitting(self) -> bool:
        return self._active

    def set_demand(self, demand: Optional[float]) -> None:
        """Update the demand cap (takes effect immediately)."""
        if demand is not None and demand < 0:
            raise ValueError("demand must be >= 0 or None")
        if demand == self.demand:
            return  # allocation unchanged; skip the re-price
        if not self._active:
            # An idle flow's cap does not enter the allocation until it
            # transmits; no need to advance or re-price the fleet.
            self.demand = demand
            return
        link = self.link
        link._advance()
        self.demand = demand
        link._dirty = True
        link._recompute()


def _norm_demand(flow: "Flow") -> float:
    """Water-fill sort key: the share level at which the cap binds."""
    return flow.demand / flow.weight


#: C-level weight accumulator; ``sum(map(...))`` adds left-to-right with
#: a 0 start, bit-identical to the explicit loop it replaces.
_get_weight = attrgetter("weight")


class _Probe:
    """Throwaway stand-in flow used to price :meth:`allocation_preview`."""

    __slots__ = ("weight", "demand")

    def __init__(self, demand: Optional[float]) -> None:
        self.weight = 1.0
        self.demand = demand


def _fill_level(demanders: List[Flow], total_weight: float, cap: float):
    """Water-fill core over demand-capped flows sorted by ``demand/weight``.

    Replays the classic round structure — cap every flow whose demand is
    below its current fair share, redistribute, repeat — but because the
    capped set of each round is a prefix of the normalized-demand order,
    a single advancing pointer visits each flow once: O(N) after the
    sort, and the per-flow arithmetic is identical to the seed
    allocator's (same expressions, same operands), so allocations match
    it bit for bit away from ulp-boundary ties.

    Returns ``(k, cap, total_weight)``: the first ``k`` demanders are
    capped at their own demand; every other flow's rate is
    ``cap * weight / total_weight``.
    """
    i = 0
    n = len(demanders)
    while total_weight > 0.0:
        start = i
        while i < n:
            f = demanders[i]
            if f.demand < cap * f.weight / total_weight:
                i += 1
            else:
                break
        if i == start:
            break  # fixed point: no flow's cap binds at this level
        for f in demanders[start:i]:
            cap -= f.demand
            total_weight -= f.weight
        if cap < 0.0:
            cap = 0.0
    return i, cap, total_weight


class SharedLink:
    """A single bottleneck link shared by weighted max-min fair flows."""

    def __init__(
        self,
        env: Environment,
        capacity: float,
        name: str = "link",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._capacity_factor = 1.0
        #: Open flows by id(flow): O(1) close even with thousands open.
        self._flows: Dict[int, Flow] = {}
        #: Actively transmitting flows by id(flow); progress accounting
        #: and repricing walk only these, never the full open set.
        self._active: Dict[int, Flow] = {}
        self._last_update = env.now
        #: True when the active set / a demand / the capacity changed
        #: since the last re-price; clean recomputes return immediately.
        self._dirty = False
        self._wake: Optional[Timeout] = None
        self._wake_at = math.inf
        # Cached outcome of the last fill, reused by allocation_preview
        # so pricing a probe never rebuilds Flow objects or re-sorts.
        self._sorted_demanders: List[Flow] = []
        self._active_weight = 0.0
        #: Total bytes that have crossed the link (for conservation tests).
        self.total_bytes = 0.0

    # -- flow management ---------------------------------------------

    def open_flow(
        self, name: str, weight: float = 1.0, demand: Optional[float] = None
    ) -> Flow:
        if weight <= 0:
            raise ValueError("weight must be positive")
        flow = Flow(link=self, name=name, weight=weight, demand=demand)
        self._flows[id(flow)] = flow
        return flow

    def close_flow(self, flow: Flow) -> None:
        if flow.transmitting:
            raise RuntimeError(f"flow {flow.name!r} still transmitting")
        if self._flows.pop(id(flow), None) is None:
            raise RuntimeError(
                f"flow {flow.name!r} is not open on this link "
                "(never opened, or already closed)"
            )
        # An idle flow holds no allocation: closing it cannot change any
        # other flow's rate, so the fleet is not re-priced.

    @property
    def effective_capacity(self) -> float:
        return self.capacity * self._capacity_factor

    def set_capacity_factor(self, factor: float) -> None:
        """Scale the link capacity (driven by fluctuation processes)."""
        if factor < 0:
            raise ValueError("capacity factor must be >= 0")
        if factor == self._capacity_factor:
            return
        self._advance()
        self._capacity_factor = factor
        self._dirty = True
        self._recompute()

    # -- transmission ------------------------------------------------

    def transmit(self, flow: Flow, nbytes: float) -> Event:
        """Event that fires when ``nbytes`` have crossed the link."""
        if id(flow) not in self._flows:
            raise RuntimeError(f"flow {flow.name!r} not open on this link")
        if flow.transmitting:
            raise RuntimeError(f"flow {flow.name!r} already transmitting")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        event = self.env.event()
        if nbytes == 0:
            event.succeed()
            return event
        self._advance()
        flow.remaining = float(nbytes)
        flow.completion = event
        flow._active = True
        self._active[id(flow)] = flow
        self._dirty = True
        self._recompute()
        return event

    def send(self, flow: Flow, nbytes: float) -> Generator[Event, None, None]:
        """Process-style convenience wrapper around :meth:`transmit`."""
        yield self.transmit(flow, nbytes)

    def current_rate(self, flow: Flow) -> float:
        """The flow's instantaneous allocated rate (bytes/s)."""
        self._advance()
        self._recompute()
        return flow.rate

    def allocation_preview(self, extra_demand: Optional[float] = None) -> float:
        """Rate a hypothetical foreground transmission would get *now*.

        Used by the epoch-granularity transfer model to price a send
        without mutating link state.  Priced against the cached sorted
        allocation from the last re-price: O(N) per probe with zero
        Flow construction, instead of the seed's throwaway-flow full
        refill.
        """
        self._advance()
        self._recompute()
        cap = self.effective_capacity
        weight = self._active_weight + 1.0  # probe weight
        base = self._sorted_demanders
        if extra_demand is None:
            _, rcap, rweight = _fill_level(base, weight, cap)
            return rcap / rweight if rweight > 0.0 else 0.0
        probe = _Probe(extra_demand)
        idx = bisect_right(base, extra_demand, key=_norm_demand)
        demanders = base[:idx] + [probe] + base[idx:]
        k, rcap, rweight = _fill_level(demanders, weight, cap)
        if idx < k:
            return extra_demand  # the probe's own cap binds
        return rcap / rweight if rweight > 0.0 else 0.0

    # -- internals ----------------------------------------------------

    def _active_flows(self) -> List[Flow]:
        return list(self._active.values())

    def _advance(self) -> None:
        """Account progress since the last state change."""
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        for flow in self._active.values():
            moved = min(flow.remaining, flow.rate * dt)
            flow.remaining -= moved
            flow.bytes_done += moved
            self.total_bytes += moved
            if flow.remaining <= _COMPLETION_EPS:
                self._dirty = True  # a completion is due: force re-price

    def _water_fill(self, active: List[Flow]) -> Dict[int, float]:
        """Weighted max-min allocation with per-flow demand caps.

        Stateless entry point (used by parity tests and benchmarks);
        :meth:`_recompute` runs the same core but writes rates in place.
        """
        demanders = [f for f in active if f.demand is not None]
        demanders.sort(key=_norm_demand)
        weight = sum(map(_get_weight, active))
        k, cap, rweight = _fill_level(demanders, weight, self.effective_capacity)
        if rweight > 0.0:
            alloc = {id(f): cap * f.weight / rweight for f in active}
        else:
            alloc = {id(f): 0.0 for f in active}
        for f in demanders[:k]:
            alloc[id(f)] = f.demand
        return alloc

    def _recompute(self) -> None:
        """Re-allocate rates and reschedule the completion wake-up.

        A no-op unless something allocation-relevant changed since the
        last re-price (`_dirty`), so per-flow events against an
        unchanged fleet — an idle flow closing, a repeated demand cap,
        a rate query — cost O(1) instead of a full refill.
        """
        if not self._dirty:
            return
        self._dirty = False
        active = self._active
        # Complete anything that has (numerically) finished, crediting
        # the sub-epsilon residue so byte accounting stays exact.
        finished = [f for f in active.values() if f.remaining <= _COMPLETION_EPS]
        for flow in finished:
            flow.bytes_done += flow.remaining
            self.total_bytes += flow.remaining
            flow.remaining = 0.0
            flow._active = False
            flow.rate = 0.0
            del active[id(flow)]
            event, flow.completion = flow.completion, None
            assert event is not None
            event.succeed()

        weight = sum(map(_get_weight, active.values()))
        demanders = [f for f in active.values() if f.demand is not None]
        demanders.sort(key=_norm_demand)
        k, cap, rweight = _fill_level(demanders, weight, self.effective_capacity)

        next_done = math.inf
        if rweight > 0.0:
            for f in active.values():
                f.rate = cap * f.weight / rweight
        else:
            for f in active.values():
                f.rate = 0.0
        for f in demanders[:k]:
            f.rate = f.demand
        for f in active.values():
            if f.rate > 0.0:
                t = f.remaining / f.rate
                if t < next_done:
                    next_done = t

        self._sorted_demanders = demanders
        self._active_weight = weight

        if next_done is math.inf:
            if self._wake is not None:
                self._wake.cancel()
                self._wake = None
                self._wake_at = math.inf
            return
        delay = max(next_done, _MIN_WAKE_DELAY)
        at = self.env.now + delay
        if self._wake is not None:
            if self._wake_at == at:
                return  # reuse the already-scheduled timer: no churn
            self._wake.cancel()
        wake = self.env.timeout(delay)
        wake.callbacks.append(self._on_wake)
        self._wake = wake
        self._wake_at = at

    def _on_wake(self, _event: Event) -> None:
        self._wake = None
        self._wake_at = math.inf
        self._advance()
        self._dirty = True
        self._recompute()
