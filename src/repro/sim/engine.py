"""Discrete-event simulation core (a minimal SimPy-like engine).

The virtualization experiments of Section II and the shared-I/O
evaluation of Section IV run on this engine: simulated hosts, VMs,
background flows, fluctuation processes and metric samplers are all
*processes* — Python generators that ``yield`` events — scheduled on a
single deterministic event heap.

Design notes
------------
* Time is a float in **seconds** (simulated).
* Determinism: ties on the heap break by insertion sequence number, and
  all randomness comes from :mod:`repro.sim.rng` streams, so a run is a
  pure function of its seed.
* The engine is deliberately small (events, timeouts, processes); what
  the paper's setting actually needs — fluid-shared links, CPU ledgers,
  caches — lives in dedicated modules built on top.
* Timers are cancellable: :meth:`Timeout.cancel` retracts a scheduled
  wake-up before it fires.  Cancelled entries are skipped on pop and
  periodically compacted out of the heap, so a component that
  reschedules its timer thousands of times (the fluid link reprices on
  every arrival/departure) cannot pollute the heap with stale entries.
* :meth:`Environment.run` also accepts an :class:`Event` as the stop
  condition, which is how fleet harnesses wait for "all N flows done"
  without polling the process list.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Union

from ..telemetry.events import BUS, EventBus

#: Lazy-deletion bound: once more than this many cancelled timers sit in
#: the heap *and* they outnumber the live entries, the heap is rebuilt
#: without them.  Keeps pop cost low without paying a rebuild per cancel.
_COMPACT_MIN = 64


class SimulationError(Exception):
    """Base class for engine errors."""


class Event:
    """A one-shot occurrence processes can wait for.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` triggers
    it, after which waiting processes resume (in FIFO order) at the
    current simulation time.
    """

    __slots__ = ("env", "callbacks", "_triggered", "_value", "_is_error",
                 "_cancelled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[[Event], None]] = []
        self._triggered = False
        self._value: Any = None
        self._is_error = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.env._queue_callbacks(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = exc
        self._is_error = True
        self.env._queue_callbacks(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        # Inlined Event.__init__: one Timeout per yield makes this the
        # engine's hottest allocation site.
        self.env = env
        self.callbacks = []
        self._triggered = True  # scheduled, cannot be succeeded manually
        self._value = value
        self._is_error = False
        self._cancelled = False
        self.delay = delay
        env._schedule(env.now + delay, self)

    def cancel(self) -> None:
        """Retract the timer: its callbacks will never run.

        Safe to call at most any point: cancelling a timer that already
        fired (callbacks drained) is a no-op.  A cancelled entry stays
        in the heap until popped or compacted, but costs O(1) to skip.
        Never cancel a timeout some *other* process is yielding on —
        that process would deadlock; only cancel timers you own.
        """
        if self._cancelled or not self.callbacks:
            return
        self._cancelled = True
        self.callbacks.clear()
        self.env._note_cancel()


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    __slots__ = ("generator", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current time.
        init = Event(env)
        init._triggered = True
        env._schedule(env.now, init)
        init.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        try:
            if event._is_error:
                target = self.generator.throw(event._value)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self._triggered:
                self.fail(exc)
                if not self.callbacks:
                    # Nobody is waiting on this process: re-raise so the
                    # failure is not silently swallowed.
                    raise
                return
            raise
        if target.__class__ is Timeout:
            # Fast path for the dominant yield shape: a freshly created
            # Timeout is already in the heap at its fire time and needs
            # neither the isinstance validation nor the re-schedule
            # check below.
            target.callbacks.append(self._resume)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        target.callbacks.append(self._resume)
        if target._triggered and not isinstance(target, Timeout):
            # Already-triggered event (e.g. an immediately satisfied
            # Store.get): make sure its callbacks run.  Double-scheduling
            # is harmless — callbacks are drained exactly once per pop.
            # Timeouts are excluded: they are already in the heap at
            # their fire time and must be yielded right after creation.
            self.env._schedule(self.env.now, target)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._n_cancelled = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        """Heap pops delivered so far (engine-throughput telemetry).

        Cancelled timers skipped on pop are not counted: they do no
        callback work.
        """
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) entries currently in the heap."""
        return len(self._heap) - self._n_cancelled

    def bind_telemetry(self, bus: Optional[EventBus] = None) -> Callable[[], float]:
        """Drive the telemetry clock with *virtual* time.

        Rebinds ``bus.clock`` to this environment's ``now`` so every
        event published while the simulation runs — epochs, level
        switches, backoff updates, spans — is stamped in simulated
        seconds, giving simulated and real traces one schema.  Returns
        the previous clock so the caller can restore it afterwards.
        """
        bus = bus if bus is not None else BUS
        previous = bus.clock
        bus.clock = lambda: self._now
        return previous

    # -- scheduling ---------------------------------------------------

    def _schedule(self, at: float, event: Event) -> None:
        if at < self._now:
            raise SimulationError(f"cannot schedule in the past ({at} < {self._now})")
        heapq.heappush(self._heap, (at, next(self._seq), event))

    def _queue_callbacks(self, event: Event) -> None:
        """Schedule an already-triggered event's callbacks to run now."""
        self._schedule(self._now, event)

    def _note_cancel(self) -> None:
        """Account one cancelled heap entry; compact when they dominate."""
        self._n_cancelled += 1
        if (
            self._n_cancelled > _COMPACT_MIN
            and self._n_cancelled * 2 > len(self._heap)
        ):
            # In place: run() holds a reference to this exact list.
            self._heap[:] = [e for e in self._heap if not e[2]._cancelled]
            heapq.heapify(self._heap)
            self._n_cancelled = 0

    # -- public API ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        return Process(self, generator, name)

    def run(self, until: Union[float, Event, None] = None) -> float:
        """Execute events until the heap drains or ``until`` is reached.

        ``until`` may be a simulation time (stop the clock there), an
        :class:`Event` (stop right after its callbacks run; raises
        :class:`SimulationError` if the heap drains first), or ``None``
        (drain the heap).  An already-triggered until-event returns
        immediately.  Returns the simulation time at which execution
        stopped.
        """
        heap = self._heap
        pop = heapq.heappop
        until_time: Optional[float] = None
        fired: List[Event] = []
        if until is not None:
            if isinstance(until, Event):
                if until._triggered:
                    return self._now
                until.callbacks.append(fired.append)
            else:
                until_time = until
        while heap:
            at, _, event = heap[0]
            if until_time is not None and at > until_time:
                self._now = until_time
                return self._now
            pop(heap)
            if event._cancelled:
                self._n_cancelled -= 1
                continue
            self._now = at
            self._events_processed += 1
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
            if fired:
                return self._now
        if until is not None and isinstance(until, Event):
            raise SimulationError(
                "run(until=event): event queue drained before the event fired "
                "(deadlock or starvation)"
            )
        if until_time is not None and until_time > self._now:
            self._now = until_time
        return self._now

    def run_process(self, generator: Generator[Event, Any, Any], name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        proc = self.process(generator, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock or starvation)"
            )
        if proc._is_error:
            raise proc._value
        return proc.value
