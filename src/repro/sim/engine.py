"""Discrete-event simulation core (a minimal SimPy-like engine).

The virtualization experiments of Section II and the shared-I/O
evaluation of Section IV run on this engine: simulated hosts, VMs,
background flows, fluctuation processes and metric samplers are all
*processes* — Python generators that ``yield`` events — scheduled on a
single deterministic event heap.

Design notes
------------
* Time is a float in **seconds** (simulated).
* Determinism: ties on the heap break by insertion sequence number, and
  all randomness comes from :mod:`repro.sim.rng` streams, so a run is a
  pure function of its seed.
* The engine is deliberately small (events, timeouts, processes); what
  the paper's setting actually needs — fluid-shared links, CPU ledgers,
  caches — lives in dedicated modules built on top.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional

from ..telemetry.events import BUS, EventBus


class SimulationError(Exception):
    """Base class for engine errors."""


class Event:
    """A one-shot occurrence processes can wait for.

    An event starts *pending*; :meth:`succeed` or :meth:`fail` triggers
    it, after which waiting processes resume (in FIFO order) at the
    current simulation time.
    """

    __slots__ = ("env", "callbacks", "_triggered", "_value", "_is_error")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[[Event], None]] = []
        self._triggered = False
        self._value: Any = None
        self._is_error = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.env._queue_callbacks(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = exc
        self._is_error = True
        self.env._queue_callbacks(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True  # scheduled, cannot be succeeded manually
        self._value = value
        env._schedule(env.now + delay, self)


class Process(Event):
    """A running generator; also an event that fires when it returns."""

    __slots__ = ("generator", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off at the current time.
        init = Event(env)
        init._triggered = True
        env._schedule(env.now, init)
        init.callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        try:
            if event._is_error:
                target = self.generator.throw(event._value)
            else:
                target = self.generator.send(event._value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self._triggered:
                self.fail(exc)
                if not self.callbacks:
                    # Nobody is waiting on this process: re-raise so the
                    # failure is not silently swallowed.
                    raise
                return
            raise
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        target.callbacks.append(self._resume)
        if target._triggered and not isinstance(target, Timeout):
            # Already-triggered event (e.g. an immediately satisfied
            # Store.get): make sure its callbacks run.  Double-scheduling
            # is harmless — callbacks are drained exactly once per pop.
            # Timeouts are excluded: they are already in the heap at
            # their fire time and must be yielded right after creation.
            self.env._schedule(self.env.now, target)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._queued: set[int] = set()
        self._events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        """Heap pops executed so far (engine-throughput telemetry)."""
        return self._events_processed

    def bind_telemetry(self, bus: Optional[EventBus] = None) -> Callable[[], float]:
        """Drive the telemetry clock with *virtual* time.

        Rebinds ``bus.clock`` to this environment's ``now`` so every
        event published while the simulation runs — epochs, level
        switches, backoff updates, spans — is stamped in simulated
        seconds, giving simulated and real traces one schema.  Returns
        the previous clock so the caller can restore it afterwards.
        """
        bus = bus if bus is not None else BUS
        previous = bus.clock
        bus.clock = lambda: self._now
        return previous

    # -- scheduling ---------------------------------------------------

    def _schedule(self, at: float, event: Event) -> None:
        if at < self._now:
            raise SimulationError(f"cannot schedule in the past ({at} < {self._now})")
        heapq.heappush(self._heap, (at, next(self._seq), event))

    def _queue_callbacks(self, event: Event) -> None:
        """Schedule an already-triggered event's callbacks to run now."""
        self._schedule(self._now, event)

    # -- public API ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str = ""
    ) -> Process:
        return Process(self, generator, name)

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the heap drains or ``until`` is reached.

        Returns the simulation time at which execution stopped.
        """
        while self._heap:
            at, _, event = self._heap[0]
            if until is not None and at > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = at
            self._events_processed += 1
            callbacks, event.callbacks = event.callbacks, []
            for callback in callbacks:
                callback(event)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_process(self, generator: Generator[Event, Any, Any], name: str = "") -> Any:
        """Convenience: run a single process to completion, return its value."""
        proc = self.process(generator, name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock or starvation)"
            )
        if proc._is_error:
            raise proc._value
        return proc.value
