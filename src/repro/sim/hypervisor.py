"""Virtualization platform profiles.

A :class:`VirtProfile` bundles everything the simulator needs to know
about one platform from the paper's study — XEN (paravirt), KVM (full
and paravirt), Amazon EC2, and the native baseline:

* per-byte CPU costs of each I/O operation, split into the ledger
  categories, **twice**: the part the VM displays and the extra part
  only the host observes (Figure 1's gap);
* achievable application-level I/O rates (network and file);
* the network fluctuation model (Figure 2);
* the disk write path, with or without the XEN host-page-cache
  behaviour (Figure 3);
* how much vCPU capacity co-located I/O load steals (Table II's
  concurrency effect).

Calibration sources: the rates and fractions come from the paper's own
plots and tables (Figures 1–3, Table II); where the paper gives only a
qualitative statement ("the gap can grow up to a factor of 15") the
numbers are chosen to reproduce exactly that statement.  All
calibration constants live here and in :mod:`repro.sim.calibration` so
they are auditable in one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .cpu import CostVector
from .fluctuation import FluctuationModel, GaussianJitter, MarkovOnOff

MB = 1e6  # bytes


@dataclass(frozen=True)
class IoCostPair:
    """VM-visible and host-extra CPU cost of one I/O operation."""

    vm: CostVector
    host_extra: CostVector

    @classmethod
    def from_utilizations(
        cls,
        vm_percent: Dict[str, float],
        host_percent: Dict[str, float],
        rate_bytes_per_s: float,
    ) -> "IoCostPair":
        """Build from target utilizations at the platform's I/O rate.

        ``host_percent`` is the *total* the host observes; the stored
        host-extra vector is the difference to the VM-visible part.
        """
        vm_cost = CostVector.from_utilization(vm_percent, rate_bytes_per_s)
        host_total = CostVector.from_utilization(host_percent, rate_bytes_per_s)
        extra = CostVector(
            usr=max(0.0, host_total.usr - vm_cost.usr),
            sys=max(0.0, host_total.sys - vm_cost.sys),
            hirq=max(0.0, host_total.hirq - vm_cost.hirq),
            sirq=max(0.0, host_total.sirq - vm_cost.sirq),
            steal=max(0.0, host_total.steal - vm_cost.steal),
        )
        return cls(vm=vm_cost, host_extra=extra)


@dataclass(frozen=True)
class DiskCacheParams:
    """Host write-back page cache (the XEN Figure-3 artifact)."""

    #: Rate at which the host page cache absorbs guest writes (bytes/s).
    absorb_rate: float
    #: Sustained rate of the physical disk (bytes/s).
    drain_rate: float
    #: Dirty-page high watermark: writers stall above this (bytes).
    high_watermark: float
    #: Writers resume once dirty data has drained below this (bytes).
    low_watermark: float


@dataclass(frozen=True)
class VirtProfile:
    """Everything the simulator knows about one virtualization platform."""

    name: str
    display_name: str
    #: Whether an external host view exists (False on EC2: "we were
    #: unable to observe the CPU utilization as reported by the host").
    host_observable: bool

    # CPU cost of I/O, per operation.
    net_send: IoCostPair
    net_recv: IoCostPair
    file_write: IoCostPair
    file_read: IoCostPair

    #: Achievable application-level network rate (bytes/s) with no
    #: co-located load and no compression.
    net_app_rate: float
    #: Network fluctuation model.
    net_fluctuation: FluctuationModel
    #: Plain file-write/read rates (bytes/s, physical path).
    file_write_rate: float
    file_read_rate: float
    #: Host write-back cache params, or None for honest write paths.
    disk_cache: Optional[DiskCacheParams]
    #: Fraction of vCPU capacity lost per co-located busy VM
    #: (Table II: HEAVY rows degrade ~2 %/connection).
    steal_per_bg_flow: float
    #: Relative jitter (sigma) of in-VM compute speed between epochs.
    compute_jitter: float


def _native() -> VirtProfile:
    rate = 115 * MB
    same = {"USR": 2.0, "SYS": 24.0, "HIRQ": 3.0, "SIRQ": 9.0}
    recv = {"USR": 2.0, "SYS": 30.0, "HIRQ": 4.0, "SIRQ": 12.0}
    fw = {"USR": 1.0, "SYS": 12.0, "SIRQ": 2.0}
    fr = {"USR": 1.0, "SYS": 9.0, "SIRQ": 1.0}
    wrate, rrate = 84 * MB, 72 * MB
    return VirtProfile(
        name="native",
        display_name="Native",
        host_observable=True,
        # Native: VM view and host view are the same machine.
        net_send=IoCostPair.from_utilizations(same, same, rate),
        net_recv=IoCostPair.from_utilizations(recv, recv, rate),
        file_write=IoCostPair.from_utilizations(fw, fw, wrate),
        file_read=IoCostPair.from_utilizations(fr, fr, rrate),
        net_app_rate=rate,
        net_fluctuation=GaussianJitter(sigma=0.02, interval=0.25),
        file_write_rate=wrate,
        file_read_rate=rrate,
        disk_cache=None,
        steal_per_bg_flow=0.0,
        compute_jitter=0.01,
    )


def _kvm_full() -> VirtProfile:
    rate = 85 * MB
    wrate, rrate = 80 * MB, 66 * MB
    return VirtProfile(
        name="kvm-full",
        display_name="KVM (Full Virtualization)",
        host_observable=True,
        # Emulated e1000: the guest sees much of the cost itself, the
        # host adds qemu device emulation on top.
        net_send=IoCostPair.from_utilizations(
            {"USR": 2.0, "SYS": 45.0, "HIRQ": 5.0, "SIRQ": 10.0},
            {"USR": 6.0, "SYS": 55.0, "HIRQ": 3.0, "SIRQ": 12.0},
            rate,
        ),
        net_recv=IoCostPair.from_utilizations(
            {"USR": 2.0, "SYS": 50.0, "HIRQ": 6.0, "SIRQ": 12.0},
            {"USR": 6.0, "SYS": 100.0, "HIRQ": 8.0, "SIRQ": 25.0},
            rate,
        ),
        file_write=IoCostPair.from_utilizations(
            {"USR": 1.0, "SYS": 10.0, "SIRQ": 3.0},
            {"USR": 4.0, "SYS": 36.0, "SIRQ": 8.0},
            wrate,
        ),
        file_read=IoCostPair.from_utilizations(
            {"USR": 1.0, "SYS": 8.0, "SIRQ": 2.0},
            {"USR": 3.0, "SYS": 28.0, "SIRQ": 5.0},
            rrate,
        ),
        net_app_rate=rate,
        net_fluctuation=GaussianJitter(sigma=0.04, interval=0.25),
        file_write_rate=wrate,
        file_read_rate=rrate,
        disk_cache=None,
        steal_per_bg_flow=0.02,
        compute_jitter=0.03,
    )


def _kvm_paravirt() -> VirtProfile:
    # The evaluation platform of Section IV: KVM with virtio devices.
    # Table II's NO rows give 50 GB / ~567 s ~= 90.3 MB/s.
    rate = 90.3 * MB
    wrate, rrate = 82 * MB, 68 * MB
    return VirtProfile(
        name="kvm-paravirt",
        display_name="KVM (Paravirtualization)",
        host_observable=True,
        # virtio: the guest sees almost nothing — the paper's worst
        # net-send gap, "up to a factor of 15".
        net_send=IoCostPair.from_utilizations(
            {"USR": 1.0, "SYS": 4.0, "SIRQ": 2.0},  # VM displays ~7 %
            {"USR": 10.0, "SYS": 73.0, "HIRQ": 2.0, "SIRQ": 20.0},  # host ~105 %
            rate,
        ),
        net_recv=IoCostPair.from_utilizations(
            {"USR": 1.0, "SYS": 7.0, "SIRQ": 4.0},
            {"USR": 10.0, "SYS": 85.0, "HIRQ": 3.0, "SIRQ": 22.0},
            rate,
        ),
        file_write=IoCostPair.from_utilizations(
            {"USR": 1.0, "SYS": 6.0, "SIRQ": 2.0},
            {"USR": 3.0, "SYS": 30.0, "SIRQ": 9.0},
            wrate,
        ),
        file_read=IoCostPair.from_utilizations(
            {"USR": 1.0, "SYS": 5.0, "SIRQ": 2.0},
            {"USR": 2.0, "SYS": 19.0, "SIRQ": 5.0},
            rrate,
        ),
        net_app_rate=rate,
        net_fluctuation=GaussianJitter(sigma=0.04, interval=0.25),
        file_write_rate=wrate,
        file_read_rate=rrate,
        disk_cache=None,
        steal_per_bg_flow=0.02,
        compute_jitter=0.03,
    )


def _xen_paravirt() -> VirtProfile:
    rate = 88 * MB
    wrate, rrate = 80 * MB, 65 * MB
    return VirtProfile(
        name="xen-paravirt",
        display_name="XEN (Paravirtualization)",
        host_observable=True,
        net_send=IoCostPair.from_utilizations(
            {"USR": 2.0, "SYS": 25.0, "HIRQ": 1.0, "SIRQ": 8.0, "STEAL": 9.0},
            {"USR": 3.0, "SYS": 40.0, "SIRQ": 12.0},
            rate,
        ),
        net_recv=IoCostPair.from_utilizations(
            {"USR": 2.0, "SYS": 30.0, "HIRQ": 2.0, "SIRQ": 10.0, "STEAL": 8.0},
            {"USR": 3.0, "SYS": 46.0, "SIRQ": 13.0},
            rate,
        ),
        # File writes hit the host page cache at memory speed (~700 MB/s),
        # pegging the guest vCPU during absorption; the cost pair is
        # therefore calibrated at the *absorb* rate.  With the cache's
        # ~11 % fill/stall duty cycle the per-second sampler averages to
        # the small bars of Figure 1c.
        file_write=IoCostPair.from_utilizations(
            {"USR": 4.0, "SYS": 76.0, "SIRQ": 10.0, "STEAL": 10.0},
            {"USR": 8.0, "SYS": 210.0, "SIRQ": 42.0},
            700 * MB,
        ),
        # The paper's other factor-15 case: XEN file read.
        file_read=IoCostPair.from_utilizations(
            {"USR": 0.3, "SYS": 1.5, "SIRQ": 0.4, "STEAL": 0.3},  # VM ~2.5 %
            {"USR": 3.0, "SYS": 28.0, "SIRQ": 6.0},  # host ~37 %
            rrate,
        ),
        net_app_rate=rate,
        net_fluctuation=GaussianJitter(sigma=0.05, interval=0.25),
        file_write_rate=wrate,
        file_read_rate=rrate,
        # 32 GB host RAM: gigabytes of dirty pages absorb guest writes
        # at memory speed before the periodic flush stalls everything.
        disk_cache=DiskCacheParams(
            absorb_rate=700 * MB,
            drain_rate=80 * MB,
            high_watermark=3.2e9,
            low_watermark=0.8e9,
        ),
        steal_per_bg_flow=0.02,
        compute_jitter=0.03,
    )


def _ec2() -> VirtProfile:
    # m1.small: modest share of an older host; heavily fluctuating net.
    rate = 62 * MB
    wrate, rrate = 55 * MB, 48 * MB
    no_host = {"USR": 0.0}
    return VirtProfile(
        name="ec2",
        display_name="Amazon EC2",
        host_observable=False,
        net_send=IoCostPair.from_utilizations(
            {"USR": 2.0, "SYS": 15.0, "SIRQ": 6.0, "STEAL": 12.0}, no_host, rate
        ),
        net_recv=IoCostPair.from_utilizations(
            {"USR": 2.0, "SYS": 22.0, "SIRQ": 8.0, "STEAL": 10.0}, no_host, rate
        ),
        file_write=IoCostPair.from_utilizations(
            {"USR": 1.0, "SYS": 12.0, "SIRQ": 3.0, "STEAL": 5.0}, no_host, wrate
        ),
        file_read=IoCostPair.from_utilizations(
            {"USR": 1.0, "SYS": 7.0, "SIRQ": 2.0, "STEAL": 3.0}, no_host, rrate
        ),
        net_app_rate=rate,
        net_fluctuation=MarkovOnOff(),
        file_write_rate=wrate,
        file_read_rate=rrate,
        disk_cache=None,
        steal_per_bg_flow=0.03,
        compute_jitter=0.08,
    )


def build_profiles() -> Dict[str, VirtProfile]:
    """Fresh copies of all five platform profiles, keyed by short name."""
    profiles = [_native(), _kvm_full(), _kvm_paravirt(), _xen_paravirt(), _ec2()]
    return {p.name: p for p in profiles}


#: All platforms of the Section II study, keyed by short name.
PROFILES: Dict[str, VirtProfile] = build_profiles()

#: The platform the Section IV evaluation ran on.
EVALUATION_PROFILE = PROFILES["kvm-paravirt"]
