"""Calibration constants for the simulator.

Two families of constants live here:

1. **Codec performance model** (:class:`CodecPoint`, :data:`CODEC_MODEL`)
   — compression speed, achieved ratio and decompression speed per
   (compression level × compressibility class).

   *Speeds* are back-calculated from the paper's own Table II: in the
   zero-concurrency column every non-NO cell is compression-bound, so
   ``50 GB / completion time`` recovers the QuickLZ/LZMA throughput on
   the paper's Xeon E5430.  Examples: LIGHT on HIGH = 50 GB/252 s ≈
   203 MB/s; HEAVY on LOW = 50 GB/9011 s ≈ 5.7 MB/s.

   *Ratios* are measured from this repository's actual codecs on the
   synthetic corpus (:mod:`repro.data.corpus`), since those are the
   codecs the real-I/O path runs; a unit test
   (``tests/sim/test_calibration.py``) keeps the constants honest
   against fresh measurements.

   *Decompression speeds* are set to the usual multiples of compression
   speed (LZ-class ~3×, LZMA ~8×); the receiver is never the bottleneck
   in the paper's setting, and tests assert that stays true.

2. **Shared-link and CPU-contention model** — the effective
   application-level link rate on the evaluation platform
   (Table II NO rows: 50 GB/567 s ≈ 90.3 MB/s), the foreground TCP
   flow's bandwidth share weight (1.5, fitted to the NO rows with 1–3
   background connections: measured shares 0.63/0.41/0.35 of the link
   vs model 0.60/0.43/0.33), and the per-background-flow vCPU loss
   (~2 %, fitted to the HEAVY rows, which are purely CPU-bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..codecs.block import DEFAULT_BLOCK_SIZE, HEADER_SIZE
from ..data.corpus import Compressibility

MB = 1e6  # bytes


@dataclass(frozen=True)
class CodecPoint:
    """Performance of one compression level on one data class."""

    #: Application bytes compressed per second on one dedicated core.
    comp_speed: float
    #: Compressed/original size ratio (1.0 = incompressible).
    ratio: float
    #: Application bytes reconstructed per second at the receiver.
    decomp_speed: float
    #: Fractional compression-speed loss per co-located busy connection.
    #: Fitted per level from Table II's concurrency columns: the fast
    #: LZ pass moves ~200 MB/s through the memory hierarchy and loses
    #: ~30 % at 3 background connections, while cache-resident LZMA
    #: loses only ~5 % (paper LIGHT/HIGH: 203→143 MB/s; HEAVY/HIGH:
    #: 27.2→25.7 MB/s).
    contention_sensitivity: float = 0.0

    @property
    def wire_ratio(self) -> float:
        """Ratio including the 20-byte frame header per 128 KB block."""
        return min(
            1.0 + HEADER_SIZE / DEFAULT_BLOCK_SIZE,
            self.ratio + HEADER_SIZE / DEFAULT_BLOCK_SIZE,
        )


_INF = math.inf

#: (level name, class) -> CodecPoint.  Level names follow the paper's
#: NO / LIGHT / MEDIUM / HEAVY ladder.
CODEC_MODEL: Dict[Tuple[str, Compressibility], CodecPoint] = {
    # NO: framing only; "compression" is a memcpy.
    ("NO", Compressibility.HIGH): CodecPoint(_INF, 1.0, _INF, 0.0),
    ("NO", Compressibility.MODERATE): CodecPoint(_INF, 1.0, _INF, 0.0),
    ("NO", Compressibility.LOW): CodecPoint(_INF, 1.0, _INF, 0.0),
    # LIGHT (QuickLZ fast / zlib-1): speeds from Table II col. 1.
    # Contention sensitivity is class-dependent: incompressible input
    # defeats the LZ hash table's locality, so co-located load hits the
    # LOW class hardest (paper LIGHT/LOW: 74.4 -> 32.9 MB/s at c=3).
    ("LIGHT", Compressibility.HIGH): CodecPoint(203 * MB, 0.128, 600 * MB, 0.12),
    ("LIGHT", Compressibility.MODERATE): CodecPoint(81.4 * MB, 0.464, 250 * MB, 0.12),
    ("LIGHT", Compressibility.LOW): CodecPoint(74.4 * MB, 0.912, 220 * MB, 0.22),
    # MEDIUM (QuickLZ better / zlib-6).
    ("MEDIUM", Compressibility.HIGH): CodecPoint(147.6 * MB, 0.090, 450 * MB, 0.045),
    ("MEDIUM", Compressibility.MODERATE): CodecPoint(64.4 * MB, 0.399, 200 * MB, 0.045),
    ("MEDIUM", Compressibility.LOW): CodecPoint(46.8 * MB, 0.911, 150 * MB, 0.13),
    # HEAVY (LZMA): dramatically slower, best ratios on redundant data.
    ("HEAVY", Compressibility.HIGH): CodecPoint(27.2 * MB, 0.076, 220 * MB, 0.02),
    ("HEAVY", Compressibility.MODERATE): CodecPoint(8.9 * MB, 0.366, 70 * MB, 0.02),
    ("HEAVY", Compressibility.LOW): CodecPoint(5.7 * MB, 0.922, 45 * MB, 0.02),
}

#: Paper's level names in ladder order (index == level).
LEVEL_NAMES = ("NO", "LIGHT", "MEDIUM", "HEAVY")


class CodecSimModel:
    """Lookup helper over :data:`CODEC_MODEL` with level indices."""

    def __init__(
        self,
        table: Dict[Tuple[str, Compressibility], CodecPoint] | None = None,
        level_names: Tuple[str, ...] = LEVEL_NAMES,
    ) -> None:
        self.table = dict(table or CODEC_MODEL)
        self.level_names = level_names
        for name in level_names:
            for cls in Compressibility:
                if (name, cls) not in self.table:
                    raise ValueError(f"model missing point for ({name}, {cls})")

    @property
    def n_levels(self) -> int:
        return len(self.level_names)

    def point(self, level: int, cls: Compressibility) -> CodecPoint:
        return self.table[(self.level_names[level], cls)]


# -- shared-link / CPU contention constants ---------------------------

#: Effective application-level TCP rate of the evaluation platform
#: (KVM paravirt, 1 GbE) with no compression and no background load.
LINK_APP_CAPACITY = 90.3 * MB

#: Weighted max-min share weight of the foreground flow (background
#: flows have weight 1.0).
FOREGROUND_WEIGHT = 1.5

#: Fraction of vCPU capacity lost per co-located busy connection.
CPU_LOSS_PER_BG_FLOW = 0.02

#: VM-visible CPU cost of pushing one byte through the paravirt network
#: path (seconds/byte): ~7 % of a core at 90.3 MB/s (Figure 1a).
VM_NET_IO_COST = 0.07 / LINK_APP_CAPACITY


def cpu_available(n_background: int, loss_per_flow: float = CPU_LOSS_PER_BG_FLOW) -> float:
    """vCPU fraction available to the sender with ``n_background`` flows."""
    if n_background < 0:
        raise ValueError("n_background must be >= 0")
    return max(0.05, 1.0 - loss_per_flow * n_background)
