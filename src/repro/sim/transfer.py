"""The Section-IV transfer experiment as a simulation process.

One :class:`TransferSim` models the paper's sample job: a sender task
streams a data source through a compression scheme over a shared link
to a receiver, while 0–3 co-located background connections contend for
the same NIC (Table II) and the bandwidth fluctuates per the platform's
model.

The pipeline is priced with the steady-state fluid approximation: over
a sending quantum, the application data rate is the minimum of

* the CPU-bound compression rate
  ``cpu_avail / (1/comp_speed + wire_ratio * vm_io_cost)`` —
  compression plus the VM-visible I/O processing cost share one vCPU,
  which co-located load degrades (invisible to the guest);
* the flow's link allocation divided by the wire ratio — background
  flows and fluctuation act here; and
* the receiver's decompression rate (the paper includes receiver
  decompression in the application data rate "because of the network's
  flow control mechanisms").

Crucially, the decision scheme under test observes only what it could
observe in reality — the measured application data rate per epoch plus
the (possibly skewed) displayed metrics — and the paper's scheme is the
*same* :class:`~repro.core.decision.DecisionModel` code that runs on
real sockets.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..data.datasource import DataSource
from ..schemes.base import CompressionScheme, EpochObservation
from ..telemetry.events import BUS, EpochClosed, LevelSwitched
from .calibration import (
    CPU_LOSS_PER_BG_FLOW,
    FOREGROUND_WEIGHT,
    VM_NET_IO_COST,
    CodecSimModel,
)
from .engine import Environment, Event
from .link import Flow, SharedLink

#: Bounds on the sending quantum (application bytes).
MIN_QUANTUM = 128 * 1024
MAX_QUANTUM = 32 * 1024 * 1024


@dataclass(frozen=True)
class TransferEpoch:
    """One epoch of the transfer, for traces and Figures 4–6."""

    start: float
    end: float
    level: int
    next_level: int
    app_bytes: float
    app_rate: float
    wire_rate: float
    #: VM-displayed CPU utilization during the epoch (percent).
    vm_cpu_util: float
    #: What the host actually observed (percent; includes hidden costs).
    host_cpu_util: float
    displayed_bandwidth: float


@dataclass
class TransferResult:
    """Outcome of one simulated transfer."""

    scheme_name: str
    completion_time: float = 0.0
    total_app_bytes: float = 0.0
    total_wire_bytes: float = 0.0
    epochs: List[TransferEpoch] = field(default_factory=list)

    @property
    def mean_app_rate(self) -> float:
        if self.completion_time <= 0:
            return 0.0
        return self.total_app_bytes / self.completion_time

    def level_timeline(self) -> List[tuple[float, int]]:
        """(time, level) change points for Figures 4–6 style plots."""
        timeline: List[tuple[float, int]] = []
        last: Optional[int] = None
        for ep in self.epochs:
            if ep.level != last:
                timeline.append((ep.start, ep.level))
                last = ep.level
        return timeline


class BackgroundTraffic:
    """Co-located VMs saturating their share of the sender's NIC.

    "Each co-located virtual machine on the sender's host system
    thereby established a separate TCP connection ... and transmitted
    data as fast as possible." (Section IV-A)
    """

    _CHUNK = 64e6  # bytes per transmit call; size is immaterial

    def __init__(self, env: Environment, link: SharedLink, n_flows: int) -> None:
        if n_flows < 0:
            raise ValueError("n_flows must be >= 0")
        self.env = env
        self.link = link
        self.n_flows = n_flows
        self._stopped = False
        self.flows: List[Flow] = []
        for i in range(n_flows):
            flow = link.open_flow(f"bg{i}", weight=1.0)
            self.flows.append(flow)
            env.process(self._run(flow), name=f"bg{i}")

    def _run(self, flow: Flow) -> Generator[Event, None, None]:
        while not self._stopped:
            yield self.link.transmit(flow, self._CHUNK)

    def stop(self) -> None:
        self._stopped = True


class TransferSim:
    """One sender→receiver compressed transfer on a shared link."""

    def __init__(
        self,
        env: Environment,
        link: SharedLink,
        source: DataSource,
        scheme: CompressionScheme,
        model: CodecSimModel,
        rng: random.Random,
        *,
        epoch_seconds: float = 2.0,
        n_background: int = 0,
        cpu_loss_per_bg: float = CPU_LOSS_PER_BG_FLOW,
        vm_io_cost: float = VM_NET_IO_COST,
        compute_jitter: float = 0.03,
        foreground_weight: float = FOREGROUND_WEIGHT,
        flow_id: int = 0,
        flow_name: str = "fg",
    ) -> None:
        if scheme.n_levels != model.n_levels:
            raise ValueError(
                f"scheme has {scheme.n_levels} levels but model has {model.n_levels}"
            )
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        self.env = env
        self.link = link
        self.source = source
        self.scheme = scheme
        self.model = model
        self.rng = rng
        self.epoch_seconds = epoch_seconds
        self.n_background = n_background
        self.cpu_loss_per_bg = cpu_loss_per_bg
        self.vm_io_cost = vm_io_cost
        self.compute_jitter = compute_jitter
        self.foreground_weight = foreground_weight
        self.flow_id = flow_id
        self.flow_name = flow_name
        #: Fraction of one CPU available to this flow's codec (1.0 =
        #: a whole core).  A fleet controller reallocates this across
        #: co-scheduled transfers; the default reproduces the paper's
        #: single-transfer setup exactly.
        self.cpu_share = 1.0
        self.result = TransferResult(scheme_name=scheme.name)

    # -- rate model ---------------------------------------------------

    def _speed_jitter(self) -> float:
        return max(0.5, self.rng.gauss(1.0, self.compute_jitter))

    def _stage_rates(self, level: int, jitter: float) -> tuple[float, float, float]:
        """(cpu-bound app rate, receiver app rate, wire ratio) now."""
        cls = self.source.class_at(min(self.source.bytes_emitted,
                                       self.source.total_bytes - 1))
        pt = self.model.point(level, cls)
        wire_ratio = pt.wire_ratio
        # Co-located I/O degrades the codec's effective speed via the
        # shared memory hierarchy; sensitivity is per-level (see
        # CodecPoint.contention_sensitivity).
        contention = max(
            0.05, 1.0 - pt.contention_sensitivity * self.n_background
        )
        inv_comp = (
            0.0
            if math.isinf(pt.comp_speed)
            else 1.0 / (pt.comp_speed * jitter * contention * self.cpu_share)
        )
        denom = inv_comp + wire_ratio * self.vm_io_cost
        cpu_rate = 1.0 / denom if denom > 0 else math.inf
        recv_rate = pt.decomp_speed
        return cpu_rate, recv_rate, wire_ratio

    # -- the process --------------------------------------------------

    def run(self) -> Generator[Event, None, TransferResult]:
        env = self.env
        source = self.source
        flow = self.link.open_flow(self.flow_name, weight=self.foreground_weight)
        start_time = env.now
        epoch_start = env.now
        epoch_bytes = 0.0
        epoch_wire = 0.0
        jitter = self._speed_jitter()
        rate_estimate = self.link.capacity  # initial quantum sizing guess

        while not source.exhausted:
            level = self.scheme.current_level
            cpu_rate, recv_rate, wire_ratio = self._stage_rates(level, jitter)
            demand_app = min(cpu_rate, recv_rate)
            flow.set_demand(
                None if math.isinf(demand_app) else demand_app * wire_ratio
            )

            quantum = min(
                MAX_QUANTUM,
                max(MIN_QUANTUM, rate_estimate * self.epoch_seconds / 4.0),
            )
            app_chunk = float(source.skip(int(quantum)))
            if app_chunk <= 0:
                break
            wire_chunk = app_chunk * wire_ratio

            t0 = env.now
            yield self.link.transmit(flow, wire_chunk)
            elapsed = env.now - t0
            if elapsed > 0:
                rate_estimate = app_chunk / elapsed

            epoch_bytes += app_chunk
            epoch_wire += wire_chunk
            self.result.total_app_bytes += app_chunk
            self.result.total_wire_bytes += wire_chunk

            if env.now - epoch_start >= self.epoch_seconds:
                epoch_start, epoch_bytes, epoch_wire = self._close_epoch(
                    epoch_start, epoch_bytes, epoch_wire, level
                )
                jitter = self._speed_jitter()

        # Close the final partial epoch so traces cover the whole run.
        if epoch_bytes > 0 and env.now > epoch_start:
            self._close_epoch(epoch_start, epoch_bytes, epoch_wire,
                              self.scheme.current_level)

        flow.set_demand(None)
        self.link.close_flow(flow)
        self.result.completion_time = env.now - start_time
        return self.result

    def _close_epoch(
        self, epoch_start: float, epoch_bytes: float, epoch_wire: float, level: int
    ) -> tuple[float, float, float]:
        env = self.env
        duration = env.now - epoch_start
        app_rate = epoch_bytes / duration
        wire_rate = epoch_wire / duration

        cls = self.source.class_at(
            min(self.source.bytes_emitted, self.source.total_bytes - 1)
        )
        pt = self.model.point(level, cls)

        # VM view: compression (USR) is fully visible, I/O processing
        # only at the paravirt guest's tiny share.
        comp_frac = (
            0.0
            if math.isinf(pt.comp_speed)
            else app_rate / (pt.comp_speed * self.cpu_share)
        )
        vm_io_frac = wire_rate * self.vm_io_cost
        vm_cpu = 100.0 * (comp_frac + vm_io_frac)
        # Host view: plus the hidden virtualization overhead (roughly a
        # full core per saturated GbE on the evaluation platform) and
        # the capacity lost to co-located load.
        hidden_io = wire_rate * (0.9 / self.link.capacity)
        steal = self.cpu_loss_per_bg * self.n_background
        host_cpu = 100.0 * (comp_frac + vm_io_frac + hidden_io + steal)

        # Bandwidth as the VM would estimate it: an *instantaneous*
        # probe (NWS-style) of its link share at the epoch boundary.
        # This is precisely the metric Section II shows to be
        # treacherous — it rides whatever the fluctuation process is
        # doing at that instant (EC2 outages read as ~zero; spikes and
        # caching artifacts read as far more than the sustainable rate)
        # with heavy-tailed measurement noise on top.
        share = self.foreground_weight / (self.foreground_weight + self.n_background)
        displayed_bw = (
            self.link.effective_capacity * share * self.rng.lognormvariate(0.0, 0.45)
        )

        cpu_rate, recv_rate, wire_ratio = self._stage_rates(level, 1.0)
        queue_slope = (min(cpu_rate, recv_rate) - app_rate) * wire_ratio
        if math.isinf(queue_slope):
            queue_slope = 0.0

        obs = EpochObservation(
            now=env.now,
            epoch_seconds=duration,
            app_rate=app_rate,
            displayed_cpu_util=vm_cpu,
            displayed_bandwidth=displayed_bw,
            queue_slope=queue_slope,
            observed_ratio=(epoch_wire / epoch_bytes) if epoch_bytes > 0 else None,
            flow_id=self.flow_id,
            level=level,
            app_bytes=epoch_bytes,
            worker_weight=self.cpu_share,
        )
        next_level = self.scheme.on_epoch(obs)
        if BUS.active:
            # Same schema as the real-I/O controller, virtual clock
            # domain ("sim" source, env.now timestamps).
            epoch_index = len(self.result.epochs)
            BUS.publish(
                EpochClosed(
                    ts=env.now,
                    source="sim",
                    epoch=epoch_index,
                    start=epoch_start,
                    end=env.now,
                    app_bytes=epoch_bytes,
                    app_rate=app_rate,
                    level=level,
                )
            )
            if next_level != level:
                BUS.publish(
                    LevelSwitched(
                        ts=env.now,
                        source="sim",
                        epoch=epoch_index,
                        level_before=level,
                        level_after=next_level,
                    )
                )
        self.result.epochs.append(
            TransferEpoch(
                start=epoch_start,
                end=env.now,
                level=level,
                next_level=next_level,
                app_bytes=epoch_bytes,
                app_rate=app_rate,
                wire_rate=wire_rate,
                vm_cpu_util=vm_cpu,
                host_cpu_util=host_cpu,
                displayed_bandwidth=displayed_bw,
            )
        )
        return env.now, 0.0, 0.0
