"""Process-synchronization resources for the simulation engine.

:class:`Store` — a bounded FIFO of items (used for block queues and
producer/consumer backpressure, e.g. the receiver window of a TCP
connection or the AdOC scheme's compression→send FIFO).

:class:`Semaphore` — counted resource (CPU cores, disk handles).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .engine import Environment, Event


class Store:
    """Bounded FIFO item store with blocking put/get.

    ``put`` blocks (the yielded event stays pending) while the store is
    full; ``get`` blocks while it is empty.  FIFO fairness on both
    sides.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def _dispatch(self) -> None:
        # Satisfy as many waiters as possible.
        progress = True
        while progress:
            progress = False
            if self._items and self._getters:
                getter = self._getters.popleft()
                getter.succeed(self._items.popleft())
                progress = True
            if not self.is_full and self._putters:
                putter, item = self._putters.popleft()
                self._items.append(item)
                putter.succeed()
                progress = True

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` has been accepted."""
        event = self.env.event()
        if not self.is_full and not self._putters:
            self._items.append(item)
            event.succeed()
            self._dispatch()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Event that fires with the oldest item."""
        event = self.env.event()
        if self._items and not self._getters:
            event.succeed(self._items.popleft())
            self._dispatch()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; ``None`` when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._dispatch()
        return item


class Semaphore:
    """Counted resource with FIFO acquire."""

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        event = self.env.event()
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release without matching acquire")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def held(self) -> Generator[Event, None, None]:
        """``yield from sem.held()`` acquires; caller must release."""
        yield self.acquire()
