"""Disk models, with and without a host write-back page cache.

Figure 3's finding: on XEN "we witnessed significant caching effects.
Due to these caching effects the data rate inside the virtual machine
occasionally appeared to be exceedingly high.  In fact, the data was
only buffered inside the host system's main memory.  Periodically, when
the host system decided to actually flush the buffered data to disk,
the data rate displayed inside the virtual machine dropped to a few
MB/s."

:class:`PlainDisk` is an honest bounded-rate device with small jitter.
:class:`CachedDisk` reproduces the XEN artifact: guest writes are
absorbed at memory speed until a dirty-page high watermark, then stall
completely until the cache drains to the low watermark.  Because the
paper's throughput metric samples *per 20 MB written*, the many fast
samples during absorption dominate the distribution and the displayed
mean is spuriously high — while most of the data still sits in host RAM
when the experiment "finishes".
"""

from __future__ import annotations

import random
from typing import Generator

from .engine import Environment, Event
from .hypervisor import DiskCacheParams


class PlainDisk:
    """Bounded-rate block device with per-chunk Gaussian rate jitter."""

    def __init__(
        self,
        env: Environment,
        rate: float,
        rng: random.Random,
        jitter_sigma: float = 0.05,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.env = env
        self.rate = rate
        self.rng = rng
        self.jitter_sigma = jitter_sigma
        self.bytes_written = 0.0
        self.bytes_read = 0.0

    def _effective_rate(self) -> float:
        factor = max(0.2, self.rng.gauss(1.0, self.jitter_sigma))
        return self.rate * factor

    def write(self, nbytes: float) -> Generator[Event, None, None]:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes:
            yield self.env.timeout(nbytes / self._effective_rate())
            self.bytes_written += nbytes

    def read(self, nbytes: float) -> Generator[Event, None, None]:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes:
            yield self.env.timeout(nbytes / self._effective_rate())
            self.bytes_read += nbytes


class CachedDisk:
    """Disk behind a host write-back page cache (single guest writer).

    The cache drains to the physical disk continuously at
    ``drain_rate``; guest writes are absorbed at ``absorb_rate`` while
    the dirty level is below ``high_watermark`` and stall (writer
    blocked) once it is reached, until the level falls to
    ``low_watermark``.
    """

    def __init__(
        self,
        env: Environment,
        params: DiskCacheParams,
        rng: random.Random,
        jitter_sigma: float = 0.05,
    ) -> None:
        if params.low_watermark < 0 or params.low_watermark >= params.high_watermark:
            raise ValueError("need 0 <= low_watermark < high_watermark")
        if params.absorb_rate <= params.drain_rate:
            raise ValueError("cache only matters when absorb_rate > drain_rate")
        self.env = env
        self.params = params
        self.rng = rng
        self.jitter_sigma = jitter_sigma
        self.dirty = 0.0
        self._last_sync = env.now
        #: Bytes the guest believes it has written.
        self.bytes_written = 0.0
        #: Bytes actually persisted to the physical platters.
        self.bytes_flushed = 0.0

    def _sync(self) -> None:
        """Apply continuous drain since the last state change."""
        now = self.env.now
        dt = now - self._last_sync
        self._last_sync = now
        if dt <= 0:
            return
        drained = min(self.dirty, self.params.drain_rate * dt)
        self.dirty -= drained
        self.bytes_flushed += drained

    @property
    def dirty_bytes(self) -> float:
        self._sync()
        return self.dirty

    @property
    def unflushed_bytes(self) -> float:
        """Data the guest thinks is on disk but is still in host RAM."""
        self._sync()
        return self.bytes_written - self.bytes_flushed

    def write(self, nbytes: float) -> Generator[Event, None, None]:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        p = self.params
        remaining = float(nbytes)
        while remaining > 0:
            self._sync()
            if self.dirty >= p.high_watermark:
                # Flush storm: writer is blocked until the low watermark.
                stall = (self.dirty - p.low_watermark) / p.drain_rate
                yield self.env.timeout(stall)
                self._sync()
                continue
            room = p.high_watermark - self.dirty
            chunk = min(remaining, room)
            # Absorb at memory speed (with a little jitter), while the
            # drain keeps running in the background (handled by _sync).
            absorb = p.absorb_rate * max(0.3, self.rng.gauss(1.0, self.jitter_sigma))
            yield self.env.timeout(chunk / absorb)
            self._sync()
            self.dirty += chunk
            self.bytes_written += chunk
            remaining -= chunk

    def fsync(self) -> Generator[Event, None, None]:
        """Block until everything has hit the platters."""
        self._sync()
        if self.dirty > 0:
            yield self.env.timeout(self.dirty / self.params.drain_rate)
            self._sync()
