"""Bandwidth fluctuation processes.

Section II-B: on the local Eucalyptus cloud "the fluctuations of network
throughput only increased marginally compared to ... the native host
system.  On Amazon EC2, however, we experienced heavy throughput
variations ... TCP/UDP throughput on Amazon EC2 can fluctuate rapidly
between 1 GBit/s and zero, even at a time scale of tens of milliseconds"
(citing Wang & Ng).

Each model is a small process that periodically adjusts a
:class:`~repro.sim.link.SharedLink`'s capacity factor.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Generator

from .engine import Environment, Event, Process
from .link import SharedLink


class FluctuationModel(abc.ABC):
    """Factory for a capacity-modulation process on a link."""

    @abc.abstractmethod
    def start(
        self, env: Environment, link: SharedLink, rng: random.Random
    ) -> Process:
        """Spawn the modulation process (runs until the sim ends)."""


@dataclass(frozen=True)
class ConstantCapacity(FluctuationModel):
    """No fluctuation at all (idealised link)."""

    factor: float = 1.0

    def start(self, env: Environment, link: SharedLink, rng: random.Random) -> Process:
        def proc() -> Generator[Event, None, None]:
            link.set_capacity_factor(self.factor)
            return
            yield  # pragma: no cover - makes this a generator

        return env.process(proc(), name="constant-capacity")


@dataclass(frozen=True)
class GaussianJitter(FluctuationModel):
    """Mild Gaussian capacity jitter (native hosts and the local cloud).

    Every ``interval`` seconds the capacity factor is redrawn from
    ``N(mean, sigma)``, clamped to ``[floor, ceil]``.
    """

    mean: float = 1.0
    sigma: float = 0.03
    interval: float = 0.25
    floor: float = 0.5
    ceil: float = 1.15

    def start(self, env: Environment, link: SharedLink, rng: random.Random) -> Process:
        def proc() -> Generator[Event, None, None]:
            while True:
                factor = min(self.ceil, max(self.floor, rng.gauss(self.mean, self.sigma)))
                link.set_capacity_factor(factor)
                yield env.timeout(self.interval)

        return env.process(proc(), name="gaussian-jitter")


@dataclass(frozen=True)
class MarkovOnOff(FluctuationModel):
    """EC2-style two-state bandwidth process.

    Alternates between an UP state (capacity near nominal, with jitter)
    and a DOWN state (capacity near zero) with exponentially distributed
    sojourn times at the tens-of-milliseconds scale reported by Wang &
    Ng [6].
    """

    mean_up: float = 0.8
    mean_down: float = 0.08
    up_factor_mean: float = 1.0
    up_factor_sigma: float = 0.25
    down_factor: float = 0.02
    floor: float = 0.01
    ceil: float = 1.2
    #: Occasionally a down episode is a real outage lasting on the
    #: order of a second — these produce the near-zero 20 MB samples
    #: visible in Figure 2's EC2 whiskers.
    outage_probability: float = 0.08
    mean_outage: float = 1.2

    def start(self, env: Environment, link: SharedLink, rng: random.Random) -> Process:
        def proc() -> Generator[Event, None, None]:
            while True:
                factor = rng.gauss(self.up_factor_mean, self.up_factor_sigma)
                factor = min(self.ceil, max(self.floor, factor))
                link.set_capacity_factor(factor)
                yield env.timeout(rng.expovariate(1.0 / self.mean_up))
                link.set_capacity_factor(self.down_factor)
                if rng.random() < self.outage_probability:
                    down = rng.expovariate(1.0 / self.mean_outage)
                else:
                    down = rng.expovariate(1.0 / self.mean_down)
                yield env.timeout(down)

        return env.process(proc(), name="markov-on-off")
