"""CPU-time accounting with separate VM-view and host-view ledgers.

The core instrument of Section II-A: the same I/O activity charges CPU
time to *two* ledgers — what the virtual machine's ``/proc/stat`` would
display, and what the host system actually spends.  The gap between the
two (up to 15× in the paper) is a property of the virtualization
profile, not of the workload.

Time is split into the categories the paper plots: user (USR), kernel
(SYS), hardware interrupts (HIRQ), software interrupts (SIRQ), and —
for XEN — STEAL, "the amount of CPU time that the hypervisor has
allocated to tasks other than the observed virtual machine".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Plot categories, in the paper's legend order.
CATEGORIES = ("USR", "SYS", "HIRQ", "SIRQ", "STEAL")


@dataclass(frozen=True)
class CostVector:
    """CPU seconds charged per byte of I/O, split by category."""

    usr: float = 0.0
    sys: float = 0.0
    hirq: float = 0.0
    sirq: float = 0.0
    steal: float = 0.0

    @property
    def total(self) -> float:
        return self.usr + self.sys + self.hirq + self.sirq + self.steal

    def scaled(self, factor: float) -> "CostVector":
        return CostVector(
            usr=self.usr * factor,
            sys=self.sys * factor,
            hirq=self.hirq * factor,
            sirq=self.sirq * factor,
            steal=self.steal * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "USR": self.usr,
            "SYS": self.sys,
            "HIRQ": self.hirq,
            "SIRQ": self.sirq,
            "STEAL": self.steal,
        }

    @classmethod
    def from_utilization(
        cls, percent_by_category: Dict[str, float], rate_bytes_per_s: float
    ) -> "CostVector":
        """Costs that reproduce ``percent_by_category`` at ``rate``.

        This is how profiles are calibrated: the paper reports
        *utilizations at the achieved throughput*; dividing by the
        throughput recovers a per-byte cost.
        """
        if rate_bytes_per_s <= 0:
            raise ValueError("rate must be positive")
        unknown = set(percent_by_category) - set(CATEGORIES)
        if unknown:
            raise ValueError(f"unknown categories: {sorted(unknown)}")
        factor = 1.0 / (100.0 * rate_bytes_per_s)
        return cls(
            usr=percent_by_category.get("USR", 0.0) * factor,
            sys=percent_by_category.get("SYS", 0.0) * factor,
            hirq=percent_by_category.get("HIRQ", 0.0) * factor,
            sirq=percent_by_category.get("SIRQ", 0.0) * factor,
            steal=percent_by_category.get("STEAL", 0.0) * factor,
        )


@dataclass
class CpuLedger:
    """Accumulated CPU seconds per category."""

    seconds: Dict[str, float] = field(
        default_factory=lambda: {cat: 0.0 for cat in CATEGORIES}
    )

    def charge(self, cost: CostVector, nbytes: float) -> None:
        d = cost.as_dict()
        for cat in CATEGORIES:
            self.seconds[cat] += d[cat] * nbytes

    def charge_seconds(self, category: str, seconds: float) -> None:
        if category not in self.seconds:
            raise ValueError(f"unknown category {category!r}")
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self.seconds[category] += seconds

    def total(self) -> float:
        return sum(self.seconds.values())

    def snapshot(self) -> Dict[str, float]:
        return dict(self.seconds)


class DualLedger:
    """VM-displayed and host-observed ledgers for one virtual machine.

    ``vm`` is what a monitoring loop inside the guest would read from
    ``/proc/stat``; ``host`` is what ``xentop`` / the qemu process stats
    attribute to the VM from outside.  The host ledger *includes* the
    VM-visible part (the guest's cycles do run on the host) plus the
    virtualization overhead invisible to the guest.
    """

    def __init__(self) -> None:
        self.vm = CpuLedger()
        self.host = CpuLedger()

    def charge_io(
        self, vm_cost: CostVector, host_extra_cost: CostVector, nbytes: float
    ) -> None:
        """Charge ``nbytes`` of I/O to both views."""
        self.vm.charge(vm_cost, nbytes)
        self.host.charge(vm_cost, nbytes)
        self.host.charge(host_extra_cost, nbytes)

    def charge_compute(self, seconds: float) -> None:
        """Pure guest computation (e.g. compression): USR in both views."""
        self.vm.charge_seconds("USR", seconds)
        self.host.charge_seconds("USR", seconds)


def utilization(
    before: Dict[str, float], after: Dict[str, float], interval: float
) -> Dict[str, float]:
    """Percent utilization per category between two ledger snapshots."""
    if interval <= 0:
        raise ValueError("interval must be positive")
    return {
        cat: 100.0 * (after[cat] - before[cat]) / interval for cat in CATEGORIES
    }
