"""The Section II auxiliary I/O load generators.

"We created a set of small auxiliary programs to generate network and
file I/O load" (Section II-A) — four of them: network send, network
receive, file write, file read.  Each generator here drives the
corresponding device model at the platform's achievable rate, charges
the platform's CPU cost pair to the VM's dual ledger, and reports
20 MB throughput samples, so one run yields both a Figure 1 bar group
(VM vs host CPU utilization) and a Figure 2/3 distribution.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Generator, List

from .cpu import CATEGORIES
from .disk import CachedDisk
from .engine import Environment, Event
from .metrics import CpuUtilizationSampler, ThroughputSampler
from .vm import VirtualMachine

#: I/O chunk driven through the device per step; equals the paper's
#: throughput sampling unit.
CHUNK = 20e6


@dataclass
class WorkloadReport:
    """Everything one auxiliary-program run measured."""

    operation: str
    platform: str
    total_bytes: float
    duration: float
    #: Mean CPU utilization per category, VM-displayed.
    vm_cpu: Dict[str, float]
    #: Mean CPU utilization per category, host-observed.
    host_cpu: Dict[str, float]
    #: 20 MB throughput samples (bytes/s) as seen inside the VM.
    throughput_samples: List[float]

    @property
    def vm_cpu_total(self) -> float:
        return sum(self.vm_cpu.values())

    @property
    def host_cpu_total(self) -> float:
        return sum(self.host_cpu.values())

    @property
    def discrepancy_factor(self) -> float:
        """host/VM displayed CPU ratio (the Figure 1 gap)."""
        if self.vm_cpu_total <= 0:
            return float("inf")
        return self.host_cpu_total / self.vm_cpu_total


def _run_sampled(
    env: Environment,
    vm: VirtualMachine,
    operation: str,
    total_bytes: float,
    step: Generator[Event, None, None] | None,
    io_step,
    charge,
) -> WorkloadReport:
    """Shared driver: move ``total_bytes`` through ``io_step`` in CHUNKs."""
    throughput = ThroughputSampler(env)
    vm_sampler = CpuUtilizationSampler(env, vm.ledger.vm)
    host_sampler = CpuUtilizationSampler(env, vm.ledger.host)
    start = env.now

    def proc() -> Generator[Event, None, None]:
        moved = 0.0
        while moved < total_bytes:
            chunk = min(CHUNK, total_bytes - moved)
            yield from io_step(chunk)
            charge(chunk)
            throughput.progress(chunk)
            moved += chunk

    main = env.process(proc(), name=f"workload-{operation}")
    while not main.triggered:
        before = env.now
        # Step in sampler-sized slices so the run does not overshoot the
        # workload's end by more than one sampling interval (idle
        # samples would dilute the utilization means).
        env.run(until=env.now + vm_sampler.interval)
        if env.now == before and not main.triggered:
            raise RuntimeError(f"workload {operation!r} stalled")
    duration = env.now - start
    # Drop any sample taken after the workload finished.
    end = start + duration
    for sampler in (vm_sampler, host_sampler):
        sampler.samples = [s for s in sampler.samples if s.timestamp <= end]
    return WorkloadReport(
        operation=operation,
        platform=vm.profile.name,
        total_bytes=total_bytes,
        duration=duration,
        vm_cpu=vm_sampler.mean_percent(),
        host_cpu=host_sampler.mean_percent()
        if vm.profile.host_observable
        else {cat: 0.0 for cat in CATEGORIES},
        throughput_samples=throughput.rates(),
    )


def run_net_send(
    env: Environment, vm: VirtualMachine, total_bytes: float
) -> WorkloadReport:
    """TCP send to an (unvirtualized, never-bottleneck) peer."""
    flow = vm.open_net_flow(weight=1.0)

    def io_step(chunk: float) -> Generator[Event, None, None]:
        yield vm.host.nic.transmit(flow, chunk)

    return _run_sampled(
        env, vm, "net-send", total_bytes, None, io_step, vm.charge_net_send
    )


def run_net_recv(
    env: Environment, vm: VirtualMachine, total_bytes: float
) -> WorkloadReport:
    """TCP receive; the wire path is symmetric in this model."""
    flow = vm.open_net_flow(weight=1.0)

    def io_step(chunk: float) -> Generator[Event, None, None]:
        yield vm.host.nic.transmit(flow, chunk)

    return _run_sampled(
        env, vm, "net-recv", total_bytes, None, io_step, vm.charge_net_recv
    )


def run_file_write(
    env: Environment, vm: VirtualMachine, total_bytes: float
) -> WorkloadReport:
    """Sequential file write through the platform's disk path."""
    disk = vm.disk

    def io_step(chunk: float) -> Generator[Event, None, None]:
        yield from disk.write(chunk)

    return _run_sampled(
        env, vm, "file-write", total_bytes, None, io_step, vm.charge_file_write
    )


def run_file_read(
    env: Environment, vm: VirtualMachine, total_bytes: float
) -> WorkloadReport:
    """Sequential raw-I/O file read (the paper uses raw I/O to dodge
    guest caching; reads therefore always hit the device)."""
    disk = vm.disk

    def io_step(chunk: float) -> Generator[Event, None, None]:
        if isinstance(disk, CachedDisk):
            # Reads bypass the write-back cache model: raw I/O from disk.
            yield env.timeout(chunk / disk.params.drain_rate)
        else:
            yield from disk.read(chunk)

    return _run_sampled(
        env, vm, "file-read", total_bytes, None, io_step, vm.charge_file_read
    )


OPERATIONS = {
    "net-send": run_net_send,
    "net-recv": run_net_recv,
    "file-write": run_file_write,
    "file-read": run_file_read,
}


class SoftmaxArrivalProcess:
    """Open-loop arrival counts following a noisy diurnal target curve.

    Models the grid-transfer arrival process of fg-inet/gacs
    (``TransferNumGenerator``, SNIPPETS.md Snippet 2): the target number
    of concurrently live transfers follows a slow cosine ("softmax")
    curve around a mean, perturbed by multiplicative Gaussian noise, and
    whenever the live count is below the target a super-linear burst
    ``int(diff ** |N(1.05, 0.04)|)`` of new transfers arrives.  The
    burst exponent makes deep deficits refill aggressively — the bursty,
    open-loop shape that distinguishes real fleet load from a fixed
    batch of N flows all started at t=0.

    Stdlib-only (``math`` + a :class:`random.Random` stream from
    :class:`~repro.sim.rng.RngStreams`), so arrival sequences are a pure
    function of the experiment seed.
    """

    def __init__(
        self,
        rng: random.Random,
        *,
        mean: float = 8.0,
        swing: float = 4.0,
        period: float = 600.0,
        noise: float = 0.02,
        burst_mu: float = 1.05,
        burst_sigma: float = 0.04,
    ) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        if swing < 0 or swing > mean:
            raise ValueError("swing must be in [0, mean]")
        if period <= 0:
            raise ValueError("period must be positive")
        self.rng = rng
        self.mean = mean
        self.swing = swing
        self.period = period
        self.noise = noise
        self.burst_mu = burst_mu
        self.burst_sigma = burst_sigma

    def target(self, now: float) -> float:
        """The (noisy) desired number of live transfers at ``now``."""
        base = self.mean + self.swing * math.cos(2.0 * math.pi * now / self.period)
        return base * (1.0 + self.rng.gauss(0.0, self.noise))

    def arrivals(self, now: float, live: int) -> int:
        """How many new transfers arrive at ``now`` given ``live`` active."""
        diff = self.target(now) - live
        if diff <= 0:
            return 0
        return int(diff ** abs(self.rng.gauss(self.burst_mu, self.burst_sigma)))
