"""Adaptive compression on the *file write* path (the paper's future work).

"For file I/O we found the aggressive caching mechanisms of some
virtualization technologies to be a major obstacle which we intend to
address for future work." (Section VI)

This module builds that experiment: a sender compresses a data source
and writes the compressed blocks to the platform's disk path — either
an honest bounded-rate disk (KVM-style) or a host write-back cache
(XEN-style).  The decision scheme observes, as always, the application
data rate.

The interesting failure mode this surfaces: with a write-back cache the
application data rate tracks the *absorb* rate (memory speed) during
fill phases and ~zero during flush stalls.  Neither reflects the true
persistence rate, so a rate-based scheme is fed a signal that whipsaws
between "the sink is infinitely fast — compression can't help" and
"everything is stuck — nothing helps".  Completion is therefore
measured **through fsync** — when the data actually reaches the
platters — which is the number a user ultimately cares about.

The two compression stages (compress, write) are pipelined: per
quantum the elapsed time is the maximum of the compression time and the
device-accept time, the standard steady-state two-stage approximation.
"""

from __future__ import annotations

import math
import random
from typing import Generator, List, Union

from ..data.datasource import DataSource
from ..schemes.base import CompressionScheme, EpochObservation
from .calibration import CodecSimModel
from .disk import CachedDisk, PlainDisk
from .engine import Environment, Event
from .transfer import MAX_QUANTUM, MIN_QUANTUM, TransferEpoch, TransferResult


class FileWriteSim:
    """One compressed sequential write of ``source`` to ``disk``."""

    def __init__(
        self,
        env: Environment,
        disk: Union[PlainDisk, CachedDisk],
        source: DataSource,
        scheme: CompressionScheme,
        model: CodecSimModel,
        rng: random.Random,
        *,
        epoch_seconds: float = 2.0,
        compute_jitter: float = 0.03,
        fsync_at_end: bool = True,
    ) -> None:
        if scheme.n_levels != model.n_levels:
            raise ValueError(
                f"scheme has {scheme.n_levels} levels but model has {model.n_levels}"
            )
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        self.env = env
        self.disk = disk
        self.source = source
        self.scheme = scheme
        self.model = model
        self.rng = rng
        self.epoch_seconds = epoch_seconds
        self.compute_jitter = compute_jitter
        self.fsync_at_end = fsync_at_end
        self.result = TransferResult(scheme_name=scheme.name)

    def _comp_rate(self, level: int, jitter: float) -> tuple[float, float]:
        cls = self.source.class_at(
            min(self.source.bytes_emitted, self.source.total_bytes - 1)
        )
        pt = self.model.point(level, cls)
        if math.isinf(pt.comp_speed):
            return math.inf, pt.wire_ratio
        return pt.comp_speed * jitter, pt.wire_ratio

    def run(self) -> Generator[Event, None, TransferResult]:
        env = self.env
        source = self.source
        start = env.now
        epoch_start = env.now
        epoch_bytes = 0.0
        epoch_wire = 0.0
        jitter = max(0.5, self.rng.gauss(1.0, self.compute_jitter))
        rate_estimate = 100e6

        while not source.exhausted:
            level = self.scheme.current_level
            comp_rate, wire_ratio = self._comp_rate(level, jitter)

            quantum = min(
                MAX_QUANTUM, max(MIN_QUANTUM, rate_estimate * self.epoch_seconds / 4.0)
            )
            app_chunk = float(source.skip(int(quantum)))
            if app_chunk <= 0:
                break
            wire_chunk = app_chunk * wire_ratio

            t0 = env.now
            yield from self.disk.write(wire_chunk)
            write_time = env.now - t0
            comp_time = 0.0 if math.isinf(comp_rate) else app_chunk / comp_rate
            if comp_time > write_time:
                # Pipeline bottleneck is the compressor.
                yield env.timeout(comp_time - write_time)
            elapsed = env.now - t0
            if elapsed > 0:
                rate_estimate = app_chunk / elapsed

            epoch_bytes += app_chunk
            epoch_wire += wire_chunk
            self.result.total_app_bytes += app_chunk
            self.result.total_wire_bytes += wire_chunk

            if env.now - epoch_start >= self.epoch_seconds:
                self._close_epoch(epoch_start, epoch_bytes, epoch_wire, level)
                epoch_start, epoch_bytes, epoch_wire = env.now, 0.0, 0.0
                jitter = max(0.5, self.rng.gauss(1.0, self.compute_jitter))

        if epoch_bytes > 0 and env.now > epoch_start:
            self._close_epoch(epoch_start, epoch_bytes, epoch_wire,
                              self.scheme.current_level)

        if self.fsync_at_end and isinstance(self.disk, CachedDisk):
            yield from self.disk.fsync()
        self.result.completion_time = env.now - start
        return self.result

    def _close_epoch(
        self, epoch_start: float, epoch_bytes: float, epoch_wire: float, level: int
    ) -> None:
        env = self.env
        duration = env.now - epoch_start
        app_rate = epoch_bytes / duration
        wire_rate = epoch_wire / duration
        cls = self.source.class_at(
            min(self.source.bytes_emitted, self.source.total_bytes - 1)
        )
        pt = self.model.point(level, cls)
        comp_frac = 0.0 if math.isinf(pt.comp_speed) else app_rate / pt.comp_speed
        vm_cpu = 100.0 * comp_frac
        obs = EpochObservation(
            now=env.now,
            epoch_seconds=duration,
            app_rate=app_rate,
            displayed_cpu_util=vm_cpu,
            # The VM's bandwidth estimate on the file path is the rate
            # the device appears to accept — which a write-back cache
            # inflates to memory speed.
            displayed_bandwidth=wire_rate,
        )
        next_level = self.scheme.on_epoch(obs)
        self.result.epochs.append(
            TransferEpoch(
                start=epoch_start,
                end=env.now,
                level=level,
                next_level=next_level,
                app_bytes=epoch_bytes,
                app_rate=app_rate,
                wire_rate=wire_rate,
                vm_cpu_util=vm_cpu,
                host_cpu_util=vm_cpu,
                displayed_bandwidth=wire_rate,
            )
        )


def run_file_write_scenario(
    *,
    scheme: CompressionScheme,
    source: DataSource,
    cached: bool,
    seed: int = 0,
    epoch_seconds: float = 2.0,
    model: CodecSimModel | None = None,
) -> TransferResult:
    """Convenience: one compressed file write on an honest or cached disk."""
    from .hypervisor import PROFILES
    from .rng import RngStreams

    rngs = RngStreams(seed)
    env = Environment()
    if cached:
        params = PROFILES["xen-paravirt"].disk_cache
        assert params is not None
        disk: Union[PlainDisk, CachedDisk] = CachedDisk(
            env, params, rngs.stream("disk")
        )
    else:
        disk = PlainDisk(
            env, PROFILES["kvm-paravirt"].file_write_rate, rngs.stream("disk")
        )
    sim = FileWriteSim(
        env,
        disk,
        source,
        scheme,
        model or CodecSimModel(),
        rngs.stream("transfer"),
        epoch_seconds=epoch_seconds,
    )
    return env.run_process(sim.run(), name="file-write")
