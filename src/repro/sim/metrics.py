"""Measurement instruments used by the Section II accuracy study.

:class:`ThroughputSampler` reproduces the paper's method exactly: "we
modified our set of auxiliary programs to record timestamps after every
20 MB of generated or consumed I/O data ... With the help of these
timestamps we then calculated the I/O data rate as it appeared from
within the virtual machine." (Section II-B)

:class:`CpuUtilizationSampler` is the ``/proc/stat`` polling loop: it
snapshots a :class:`~repro.sim.cpu.CpuLedger` every second and reports
per-category utilization percentages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List

from .cpu import CATEGORIES, CpuLedger, utilization
from .engine import Environment, Event

#: The paper's sampling granularity for throughput.
SAMPLE_BYTES = 20e6


@dataclass
class ThroughputSample:
    """One 20 MB progress mark."""

    timestamp: float
    nbytes: float
    duration: float

    @property
    def rate(self) -> float:
        if self.duration <= 0:
            return float("inf")
        return self.nbytes / self.duration


class ThroughputSampler:
    """Timestamps every ``sample_bytes`` of progress."""

    def __init__(self, env: Environment, sample_bytes: float = SAMPLE_BYTES) -> None:
        if sample_bytes <= 0:
            raise ValueError("sample_bytes must be positive")
        self.env = env
        self.sample_bytes = sample_bytes
        self.samples: List[ThroughputSample] = []
        self._acc = 0.0
        self._mark = env.now

    def progress(self, nbytes: float) -> None:
        """Report ``nbytes`` of completed I/O."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self._acc += nbytes
        while self._acc >= self.sample_bytes:
            now = self.env.now
            self.samples.append(
                ThroughputSample(
                    timestamp=now,
                    nbytes=self.sample_bytes,
                    duration=now - self._mark,
                )
            )
            self._mark = now
            self._acc -= self.sample_bytes

    def rates(self) -> List[float]:
        return [s.rate for s in self.samples if s.duration > 0]


@dataclass
class UtilizationSample:
    """CPU utilization percentages over one sampling interval."""

    timestamp: float
    percent: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.percent.values())


class CpuUtilizationSampler:
    """Polls a ledger at a fixed interval, like reading /proc/stat."""

    def __init__(
        self, env: Environment, ledger: CpuLedger, interval: float = 1.0
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.ledger = ledger
        self.interval = interval
        self.samples: List[UtilizationSample] = []
        self._proc = env.process(self._run(), name="cpu-sampler")

    def _run(self) -> Generator[Event, None, None]:
        previous = self.ledger.snapshot()
        while True:
            yield self.env.timeout(self.interval)
            current = self.ledger.snapshot()
            self.samples.append(
                UtilizationSample(
                    timestamp=self.env.now,
                    percent=utilization(previous, current, self.interval),
                )
            )
            previous = current

    def mean_percent(self) -> Dict[str, float]:
        """Average utilization per category across all samples."""
        if not self.samples:
            return {cat: 0.0 for cat in CATEGORIES}
        n = len(self.samples)
        return {
            cat: sum(s.percent[cat] for s in self.samples) / n for cat in CATEGORIES
        }

    def mean_total(self) -> float:
        return sum(self.mean_percent().values())
