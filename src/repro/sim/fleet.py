"""Contended-fleet simulation: N transfers, one CPU budget, one NIC.

Where :mod:`repro.sim.scenario` reproduces the paper's single-transfer
cells, this module runs a *fleet* of concurrent compressed transfers
that share a fixed CPU budget (``cores``) and one
:class:`~repro.sim.link.SharedLink` — the setting in which per-flow
adaptation is provably not enough (ROADMAP item 2): each flow's
Algorithm 1 instance sees only its own rate, so the fleet-level
questions (who should compress HEAVY, who should stop compressing, who
deserves the CPU) go unanswered.

:class:`SimFleetController` drives the *same*
:class:`~repro.control.FleetController` / policy objects the serve
layer uses, against simulated time:

* each flow's scheme is wrapped so its per-epoch
  :class:`~repro.core.flowview.FlowView` is forwarded to the controller
  (the sim equivalent of the serve layer's ``FlowRates`` events);
* a clocked process calls ``on_tick`` every ``control_interval``;
* the actuator maps assignments onto the simulator's knobs — level
  pins via :class:`~repro.schemes.managed.ManagedScheme` and CPU-share
  reallocation via :attr:`~repro.sim.transfer.TransferSim.cpu_share`
  (``share_i = min(1, cores * w_i / Σ w_j)`` over live flows).

The uncontrolled baseline splits the CPU budget evenly across live
flows — exactly what an OS scheduler gives N equally-demanding codec
processes — so the comparison isolates the value of the *decisions*,
not of the accounting.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..control import AllocationPolicy, Assignment, FleetController, make_policy
from ..data.corpus import Compressibility, SyntheticCorpus
from ..data.datasource import RepeatingSource
from ..schemes.base import CompressionScheme, EpochObservation
from ..schemes.managed import ManagedScheme
from ..schemes.rate_based import RateBasedScheme
from ..telemetry.events import BUS, FlowRates
from .calibration import LINK_APP_CAPACITY, CodecSimModel
from .engine import Environment
from .link import SharedLink
from .rng import RngStreams
from .transfer import TransferResult, TransferSim
from .workload import SoftmaxArrivalProcess

__all__ = [
    "FleetFlowSpec",
    "FleetArrivalSpec",
    "FleetFlowOutcome",
    "FleetResult",
    "SimFleetController",
    "run_fleet_scenario",
]


@dataclass(frozen=True)
class FleetFlowSpec:
    """One member of the fleet."""

    name: str
    compressibility: Compressibility
    total_bytes: int


@dataclass(frozen=True)
class FleetArrivalSpec:
    """Open-loop arrival schedule for :func:`run_fleet_scenario`.

    Instead of starting every spec'd flow at t=0 (closed batch), flows
    arrive over simulated time following a
    :class:`~repro.sim.workload.SoftmaxArrivalProcess` — the gacs
    softmax-modulated transfer generator (SNIPPETS.md Snippet 2) — with
    the spec list treated as a repeating template cycle.  ``total_flows``
    bounds the run, so the fleet can churn through far more flows than
    are ever concurrently live.
    """

    #: Total flows to spawn before the arrival process stops.
    total_flows: int
    #: Seconds between arrival decisions.
    interval: float = 5.0
    #: Mean of the target live-flow curve.
    mean: float = 8.0
    #: Amplitude of the diurnal modulation (``<= mean``).
    swing: float = 4.0
    #: Period of the modulation, simulated seconds.
    period: float = 600.0
    #: Multiplicative Gaussian noise on the target.
    noise: float = 0.02

    def __post_init__(self) -> None:
        if self.total_flows < 1:
            raise ValueError("total_flows must be >= 1")
        if self.interval <= 0:
            raise ValueError("interval must be positive")


@dataclass(frozen=True)
class FleetFlowOutcome:
    """Per-flow results after the fleet drained."""

    flow_id: int
    name: str
    compressibility: str
    completion_time: float
    app_bytes: float
    mean_app_rate: float
    #: Epochs spent at each level, for shape claims about the policy.
    level_epochs: Dict[int, int]
    #: Arrival time (0.0 for closed-batch runs; set by open-loop arrivals).
    started_at: float = 0.0


@dataclass
class FleetResult:
    """Outcome of one fleet run (one policy arm)."""

    policy: Optional[str]
    flows: List[FleetFlowOutcome] = field(default_factory=list)
    #: Time until the *last* flow finished.
    makespan: float = 0.0
    total_app_bytes: float = 0.0
    rebalances: int = 0
    #: Engine heap pops delivered during the run (throughput telemetry).
    events_processed: int = 0
    #: Real (wall-clock) seconds the run took, for perf-regression eyes.
    wall_seconds: float = 0.0
    #: Flows spawned over the run (== len(flows); explicit for open loop).
    flows_spawned: int = 0
    #: Peak concurrently-live flow count (open-loop runs churn through
    #: far more flows than are ever simultaneously live).
    peak_live: int = 0

    @property
    def events_per_second(self) -> float:
        """Engine throughput over the run's wall time."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds

    @property
    def aggregate_goodput(self) -> float:
        """Fleet-level application bytes/s over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.total_app_bytes / self.makespan

    def completion_percentile(self, pct: float) -> float:
        """Completion-time percentile (nearest-rank) across flows."""
        times = sorted(f.completion_time for f in self.flows)
        if not times:
            return 0.0
        rank = max(0, min(len(times) - 1, math.ceil(pct / 100.0 * len(times)) - 1))
        return times[rank]


class _ObservedScheme(ManagedScheme):
    """ManagedScheme that forwards every epoch view to the controller."""

    def __init__(self, inner: CompressionScheme, controller: FleetController) -> None:
        super().__init__(inner)
        self._controller = controller
        self._app_bytes_total = 0.0

    def on_epoch(self, obs: EpochObservation) -> int:
        # The sim's FlowView carries *per-epoch* bytes; the FlowRates
        # event contract is cumulative (what serve publishes), so
        # accumulate before telling anyone.
        self._app_bytes_total += obs.app_bytes
        self._controller.observe_flow(
            obs.flow_id,
            now=obs.now,
            level=obs.level,
            app_rate=obs.app_rate,
            app_bytes=self._app_bytes_total,
            observed_ratio=obs.observed_ratio,
        )
        if BUS.active:
            BUS.publish(
                FlowRates(
                    ts=obs.now,
                    source="sim",
                    flow_id=obs.flow_id,
                    level=obs.level,
                    app_rate=obs.app_rate,
                    app_bytes=self._app_bytes_total,
                    observed_ratio=obs.observed_ratio,
                    worker_weight=obs.worker_weight,
                )
            )
        return super().on_epoch(obs)


class SimFleetController:
    """Clocked process driving a :class:`FleetController` in sim time."""

    def __init__(
        self,
        env: Environment,
        controller: FleetController,
        interval: float,
    ) -> None:
        self.env = env
        self.controller = controller
        self.interval = interval
        self._stopped = False

    def start(self) -> "SimFleetController":
        self.env.process(self._run(), name="fleet-controller")
        return self

    def stop(self) -> None:
        self._stopped = True

    def _run(self):
        while not self._stopped:
            yield self.env.timeout(self.interval)
            if self._stopped:
                return
            self.controller.on_tick(self.env.now)


def run_fleet_scenario(
    specs: List[FleetFlowSpec],
    *,
    policy: Union[str, AllocationPolicy, None] = None,
    arrivals: Optional[FleetArrivalSpec] = None,
    cores: float = 2.0,
    seed: int = 0,
    epoch_seconds: float = 2.0,
    control_interval: float = 4.0,
    link_capacity: float = LINK_APP_CAPACITY,
    model: Optional[CodecSimModel] = None,
    compute_jitter: float = 0.02,
) -> FleetResult:
    """Run a fleet of concurrent transfers; return fleet-level results.

    ``policy=None`` is the uncontrolled baseline: every flow runs the
    paper's per-flow Algorithm 1 with an even split of the CPU budget.
    Any policy name / instance enables the fleet controller on top of
    the *same* per-flow schemes.

    ``arrivals=None`` is the closed batch: every spec starts at t=0.
    With a :class:`FleetArrivalSpec`, ``arrivals.total_flows`` flows
    arrive open-loop over simulated time (specs cycled as templates),
    so total churn can far exceed peak concurrency.

    Termination is a completion-counter event — the engine stops the
    moment the last flow finishes (no polling loop); if the event queue
    drains first the engine raises
    :class:`~repro.sim.engine.SimulationError`.
    """
    if not specs:
        raise ValueError("need at least one flow spec")
    if cores <= 0:
        raise ValueError("cores must be positive")
    rngs = RngStreams(seed)
    env = Environment()
    model = model or CodecSimModel()
    previous_clock = env.bind_telemetry(BUS) if BUS.active else None
    total_flows = arrivals.total_flows if arrivals is not None else len(specs)

    try:
        link = SharedLink(env, capacity=link_capacity, name="nic")

        controller: Optional[FleetController] = None
        sims: Dict[int, TransferSim] = {}
        schemes: Dict[int, CompressionScheme] = {}
        flow_specs: Dict[int, FleetFlowSpec] = {}
        started: Dict[int, float] = {}
        weights: Dict[int, float] = {}
        live: Dict[int, bool] = {}

        def recompute_shares() -> None:
            active = [i for i, up in live.items() if up]
            if not active:
                return
            total = sum(weights[i] for i in active)
            for i in active:
                sims[i].cpu_share = min(1.0, cores * weights[i] / total)

        if policy is not None:
            policy_obj = make_policy(policy) if isinstance(policy, str) else policy

            def actuate(flow_id: int, asg: Assignment) -> None:
                scheme = schemes.get(flow_id)
                if scheme is None:
                    return  # assignment raced a flow that already drained
                if isinstance(scheme, ManagedScheme):
                    scheme.set_override(asg.level)
                weights[flow_id] = asg.weight
                recompute_shares()

            controller = FleetController(
                policy_obj,
                n_levels=model.n_levels,
                actuator=actuate,
                control_interval=control_interval,
                source="sim-control",
            )

        completions: Dict[int, float] = {}
        results: Dict[int, TransferResult] = {}
        # One corpus for the whole fleet: payload generation is the
        # expensive part and is identical across flows of one class, so
        # open-loop runs spawning hundreds of flows must share the cache.
        corpus = SyntheticCorpus()
        done = env.event()
        state = {"finished": 0, "live": 0, "peak": 0, "spawned": 0}

        def run_flow(i: int):
            if controller is not None:
                controller.flow_opened(i, now=env.now)
            result = yield from sims[i].run()
            results[i] = result
            completions[i] = env.now
            live[i] = False
            state["live"] -= 1
            if controller is not None:
                controller.flow_closed(i)
            # A finished flow returns its CPU share to the pool either way.
            recompute_shares()
            state["finished"] += 1
            if state["finished"] == total_flows:
                done.succeed()

        def spawn_flow(spec: FleetFlowSpec) -> None:
            i = state["spawned"]
            state["spawned"] += 1
            state["live"] += 1
            state["peak"] = max(state["peak"], state["live"])
            inner = RateBasedScheme(model.n_levels)
            scheme: CompressionScheme = (
                _ObservedScheme(inner, controller) if controller is not None else inner
            )
            schemes[i] = scheme
            flow_specs[i] = spec
            started[i] = env.now
            weights[i] = 1.0
            live[i] = True
            source = RepeatingSource.from_corpus(
                spec.compressibility, spec.total_bytes, corpus
            )
            sims[i] = TransferSim(
                env,
                link,
                source,
                scheme,
                model,
                rngs.stream(f"flow-{i}"),
                epoch_seconds=epoch_seconds,
                compute_jitter=compute_jitter,
                foreground_weight=1.0,
                flow_id=i,
                flow_name=spec.name,
            )
            env.process(run_flow(i), name=f"{spec.name}#{i}")
            recompute_shares()

        if arrivals is None:
            for spec in specs:
                spawn_flow(spec)
        else:
            arrival_proc = SoftmaxArrivalProcess(
                rngs.stream("arrivals"),
                mean=arrivals.mean,
                swing=arrivals.swing,
                period=arrivals.period,
                noise=arrivals.noise,
            )

            def spawner():
                while state["spawned"] < total_flows:
                    count = arrival_proc.arrivals(env.now, state["live"])
                    if count == 0 and state["live"] == 0:
                        # Progress guarantee: never idle with nothing
                        # live and flows still owed.
                        count = 1
                    count = min(count, total_flows - state["spawned"])
                    for _ in range(count):
                        spawn_flow(specs[state["spawned"] % len(specs)])
                    if state["spawned"] >= total_flows:
                        return
                    yield env.timeout(arrivals.interval)

            env.process(spawner(), name="fleet-arrivals")

        ticker = (
            SimFleetController(env, controller, control_interval).start()
            if controller is not None
            else None
        )

        wall_start = time.perf_counter()
        events_before = env.events_processed
        env.run(until=done)
        wall_seconds = time.perf_counter() - wall_start
        if ticker is not None:
            ticker.stop()

        fleet = FleetResult(
            policy=controller.policy.name if controller is not None else None,
            rebalances=controller.rebalances if controller is not None else 0,
            events_processed=env.events_processed - events_before,
            wall_seconds=wall_seconds,
            flows_spawned=state["spawned"],
            peak_live=state["peak"],
        )
        for i in range(state["spawned"]):
            spec = flow_specs[i]
            res = results[i]
            level_epochs: Dict[int, int] = {}
            for ep in res.epochs:
                level_epochs[ep.level] = level_epochs.get(ep.level, 0) + 1
            fleet.flows.append(
                FleetFlowOutcome(
                    flow_id=i,
                    name=spec.name,
                    compressibility=spec.compressibility.name,
                    completion_time=completions[i],
                    app_bytes=res.total_app_bytes,
                    mean_app_rate=res.mean_app_rate,
                    level_epochs=level_epochs,
                    started_at=started[i],
                )
            )
            fleet.total_app_bytes += res.total_app_bytes
        fleet.makespan = max(completions.values())
        return fleet
    finally:
        if previous_clock is not None:
            BUS.clock = previous_clock
