"""Algorithm 1 of the paper: the rate-based compression-level decision.

The model "dynamically adapts the compression level as a response to
changes in the application data rate, i.e. the data rate that is
experienced by the application before compressing the data"
(Section III).  It deliberately ignores CPU utilization and displayed
I/O bandwidth, which Section II shows to be unreliable inside virtual
machines, and it needs no training phase.

:func:`get_next_compression_level` is a line-for-line transcription of
the paper's Algorithm 1 operating on an explicit :class:`DecisionState`.
:class:`DecisionModel` wraps it with the state updates the paper
describes in prose — maintaining ``inc`` "outside of the displayed
algorithm depending on the input parameter ccl and the return value
ncl", shifting ``pdr``, and handling the level-range boundaries the
paper leaves unspecified (we *reflect* probes at the edges; reverts are
clamped).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .backoff import BackoffTable

#: Paper defaults (Section IV-A): re-decide every 2 seconds, treat rate
#: changes within ±20 % as fluctuation.
DEFAULT_ALPHA = 0.2
DEFAULT_EPOCH_SECONDS = 2.0


@dataclass
class DecisionState:
    """Mutable state shared across invocations of Algorithm 1.

    Mirrors Table I of the paper:

    ``ccl``   current compression level (initially 0 — no compression)
    ``c``     epochs since the last level change (initially 0)
    ``inc``   whether the previous level change was an increase
              (initially TRUE)
    ``bck``   per-level exponential backoff exponents (initially 0)
    ``pdr``   previous epoch's application data rate (set to ``cdr`` on
              the first call)
    """

    n_levels: int
    ccl: int = 0
    c: int = 0
    inc: bool = True
    bck: BackoffTable = field(default=None)  # type: ignore[assignment]
    pdr: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_levels < 1:
            raise ValueError("need at least one compression level")
        if not 0 <= self.ccl < self.n_levels:
            raise ValueError(f"ccl {self.ccl} out of range 0..{self.n_levels - 1}")
        if self.bck is None:
            self.bck = BackoffTable(self.n_levels)


def get_next_compression_level(
    cdr: float,
    pdr: float,
    ccl: int,
    state: DecisionState,
    alpha: float = DEFAULT_ALPHA,
) -> int:
    """Algorithm 1: ``GetNextCompressionLevel(cdr, pdr, ccl)``.

    Parameters
    ----------
    cdr:
        Application data rate over the last epoch (at level ``ccl``).
    pdr:
        Application data rate over the epoch before that.
    ccl:
        Currently applied compression level.
    state:
        Carries ``c``, ``inc`` and ``bck`` across calls; mutated in
        place exactly as the paper's pseudo code mutates its variables.
    alpha:
        Dead-band width: ``|cdr - pdr| <= alpha * pdr`` counts as "no
        change" (line 4).

    Returns
    -------
    int
        The *unclamped* next compression level ``ncl``.  May be -1 or
        ``n_levels``; :class:`DecisionModel` applies the boundary
        policy.
    """
    d = cdr - pdr  # line 1
    state.c += 1  # line 2
    ncl = ccl  # line 3
    if abs(d) <= alpha * pdr:  # line 4: no change in application data rate
        if state.c >= state.bck.threshold(ccl):  # line 6: backoff over
            if state.inc:  # lines 7-11: optimistic probe
                ncl += 1
            else:
                ncl -= 1
            state.c = 0  # line 12
    elif d > 0:  # line 15: application data rate has improved
        state.bck.reward(ccl)  # line 16
        state.c = 0  # line 17
    else:  # line 19: application data rate has decreased
        state.bck.punish(ccl)  # line 20
        if state.inc:  # lines 21-25: revert the last change
            ncl -= 1
        else:
            ncl += 1
        state.c = 0  # line 26
    return ncl  # line 28


@dataclass(frozen=True)
class Decision:
    """One epoch's outcome, recorded for traces and tests."""

    epoch: int
    cdr: float
    pdr: float
    previous_level: int
    next_level: int
    backoff_snapshot: List[int]

    @property
    def changed(self) -> bool:
        return self.next_level != self.previous_level


class DecisionModel:
    """The full decision process: Algorithm 1 plus its surrounding updates.

    Drive it by calling :meth:`observe` once per epoch with the measured
    application data rate; it returns the level to apply for the next
    epoch.

    Boundary policy (not specified by the paper):

    * An optimistic *probe* past either end of the level range is
      reflected — the probe direction flips and the step is taken the
      other way when possible.  This keeps the "occasionally try a
      neighbour" behaviour alive at the edges instead of wedging.
    * A *revert* (reaction to a degradation) past an end is clamped to
      the end.
    """

    def __init__(
        self,
        n_levels: int,
        alpha: float = DEFAULT_ALPHA,
        initial_level: int = 0,
    ) -> None:
        if n_levels < 1:
            raise ValueError("need at least one compression level")
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.state = DecisionState(n_levels=n_levels, ccl=initial_level)
        self.epoch = 0
        self.history: List[Decision] = []

    @property
    def n_levels(self) -> int:
        return self.state.n_levels

    @property
    def current_level(self) -> int:
        return self.state.ccl

    def _apply_boundaries(self, ncl: int, ccl: int, was_probe: bool) -> int:
        n = self.n_levels
        if 0 <= ncl < n:
            return ncl
        if was_probe:
            # Reflect: probe the other direction instead.
            reflected = ccl - (ncl - ccl)
            if 0 <= reflected < n and reflected != ccl:
                return reflected
            return ccl
        return min(max(ncl, 0), n - 1)

    def observe(self, cdr: float) -> int:
        """Feed one epoch's application data rate; get the next level.

        On the first call ``pdr`` is initialised to ``cdr`` (Table I),
        which lands in the "no change" branch and immediately probes
        level 1 — matching the optimistic start-up the paper's Figure 4
        shows.
        """
        if cdr < 0:
            raise ValueError("data rate must be >= 0")
        state = self.state
        if state.pdr is None:
            state.pdr = cdr
        pdr = state.pdr
        ccl = state.ccl

        raw_ncl = get_next_compression_level(cdr, pdr, ccl, state, self.alpha)
        # A probe is the only path that moves the level while |d| is in
        # the dead band; detect it from the branch taken.
        was_probe = abs(cdr - pdr) <= self.alpha * pdr and raw_ncl != ccl
        ncl = self._apply_boundaries(raw_ncl, ccl, was_probe)

        # "Note that inc is usually updated outside of the displayed
        # algorithm depending on the input parameter ccl and the return
        # value ncl." (Section III-A)
        if ncl > ccl:
            state.inc = True
        elif ncl < ccl:
            state.inc = False
        if ncl == ccl and raw_ncl != ccl and was_probe:
            # Reflection collapsed to staying put (single-level table or
            # both neighbours out of range): flip the direction so the
            # next probe tries the other side.
            state.inc = not state.inc

        self.history.append(
            Decision(
                epoch=self.epoch,
                cdr=cdr,
                pdr=pdr,
                previous_level=ccl,
                next_level=ncl,
                backoff_snapshot=state.bck.snapshot(),
            )
        )
        self.epoch += 1
        state.ccl = ncl
        state.pdr = cdr
        return ncl
