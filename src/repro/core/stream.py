"""Adaptive compression streams over real byte sinks.

"Similar to existing approaches we assume our adaptive compression
module to be placed between the application and the respective I/O
layer.  Instead of passing the data right to the I/O layer it is first
intercepted by the adaptive compression module which, if considered
beneficial, compresses the data according to a specific compression
level." (Section III-A)

:class:`AdaptiveBlockWriter` is that module for any binary file-like
sink (socket ``makefile``, file, pipe).  The receiver side needs no
adaptivity at all — every framed block names its codec — so plain
:class:`~repro.codecs.block.BlockReader` decodes the stream.
"""

from __future__ import annotations

import time
from typing import BinaryIO, Callable, Optional

from ..codecs.block import DEFAULT_BLOCK_SIZE, BlockData
from ..telemetry.events import BUS, TransferProgress
from .controller import AdaptiveController
from .decision import DEFAULT_ALPHA, DEFAULT_EPOCH_SECONDS
from .levels import CompressionLevelTable, default_level_table
from .pipeline import make_block_encoder


class AdaptiveBlockWriter:
    """Write application bytes as adaptively compressed framed blocks.

    Application data is buffered into blocks of ``block_size`` (the
    paper's 128 KB), each block is compressed with the codec of the
    controller's current level and framed self-contained, and the
    controller re-decides the level every ``epoch_seconds`` of clock
    time based on the achieved application data rate.

    ``workers`` > 1 compresses blocks on a thread pipeline
    (:class:`~repro.core.pipeline.ParallelBlockEncoder`) while keeping
    the wire stream byte-identical to the serial path for the same
    level schedule.  The controller still records uncompressed bytes at
    submission time, so level decisions are unchanged; a level switch
    takes effect on subsequently *submitted* blocks.
    ``backend="process"`` runs those codec jobs on worker processes
    instead — same wire bytes, true multi-core scaling (see
    :mod:`repro.core.procpool`).

    The clock is injectable so tests can drive time deterministically.
    """

    def __init__(
        self,
        sink: BinaryIO,
        levels: Optional[CompressionLevelTable] = None,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        epoch_seconds: float = DEFAULT_EPOCH_SECONDS,
        alpha: float = DEFAULT_ALPHA,
        initial_level: int = 0,
        workers: int = 1,
        backend: str = "thread",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.levels = levels or default_level_table()
        self._clock = clock
        self._writer = make_block_encoder(
            sink, workers=workers, backend=backend, source="adaptive-stream"
        )
        self._buffer = bytearray()
        self.block_size = block_size
        self.controller = AdaptiveController(
            n_levels=len(self.levels),
            epoch_seconds=epoch_seconds,
            alpha=alpha,
            initial_level=initial_level,
            clock_start=clock(),
        )
        self._closed = False

    # -- statistics -------------------------------------------------

    @property
    def current_level(self) -> int:
        return self.controller.current_level

    @property
    def current_level_name(self) -> str:
        return self.levels.name(self.controller.current_level)

    @property
    def bytes_in(self) -> int:
        """Application bytes accepted (including still-buffered ones)."""
        return self._writer.bytes_in + len(self._buffer)

    @property
    def bytes_out(self) -> int:
        """Framed bytes handed to the sink."""
        return self._writer.bytes_out

    @property
    def blocks_written(self) -> int:
        return self._writer.blocks_written

    # -- writing ----------------------------------------------------

    def write(self, data: bytes) -> int:
        """Accept application bytes; emit full blocks as they fill."""
        if self._closed:
            raise ValueError("writer is closed")
        self._buffer.extend(data)
        buffered = len(self._buffer)
        if buffered >= self.block_size:
            # Detach all full blocks as one immutable snapshot, then
            # emit zero-copy views of it.  One copy total (the detach),
            # versus copy-per-block + quadratic del with the old
            # ``bytes(buf[:n]); del buf[:n]`` slicing — and the views
            # stay valid for in-flight pipeline workers because the
            # snapshot is immutable and referenced by each view.
            cut = buffered - (buffered % self.block_size)
            carved = bytes(memoryview(self._buffer)[:cut])
            del self._buffer[:cut]
            with memoryview(carved) as view:
                for offset in range(0, cut, self.block_size):
                    self._emit(view[offset : offset + self.block_size])
        return len(data)

    def _emit(self, block: BlockData) -> None:
        codec = self.levels.codec(self.controller.current_level)
        self._writer.write_block(block, codec)
        # The application data rate counts *uncompressed* bytes — "the
        # data rate experienced by the application before compressing
        # the data" (Section I).  With a parallel encoder this happens
        # at submission, so the controller sees bytes as the
        # application hands them over, not when frames drain.
        self.controller.record(block.nbytes if isinstance(block, memoryview) else len(block))
        record = self.controller.poll(self._clock())
        # Per-epoch stream progress: cumulative bytes in/out and the
        # achieved wire ratio, emitted only at epoch boundaries so the
        # per-block hot path stays event-free.
        if record is not None and BUS.active:
            bytes_in = self._writer.bytes_in
            bytes_out = self._writer.bytes_out
            BUS.publish(
                TransferProgress(
                    ts=record.end,
                    source="adaptive-stream",
                    bytes_in=bytes_in,
                    bytes_out=bytes_out,
                    ratio=bytes_out / bytes_in if bytes_in else 1.0,
                )
            )

    def flush(self) -> None:
        """Emit any buffered partial block and drain in-flight frames."""
        if self._buffer:
            block = bytes(self._buffer)
            self._buffer.clear()
            self._emit(block)
        self._writer.flush()

    def close(self) -> None:
        """Flush, stop any pipeline workers, and mark closed.

        The sink itself is left to the caller.
        """
        if not self._closed:
            try:
                self.flush()
            finally:
                self._writer.close()
                self._closed = True

    def abort(self) -> None:
        """Discard buffered data and stop workers without writing.

        Error-path teardown: used when the sink is already broken, so
        flushing would raise a secondary error or block.  Idempotent.
        """
        self._buffer.clear()
        self._writer.abort()
        self._closed = True

    def __enter__(self) -> "AdaptiveBlockWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class StaticBlockWriter:
    """Non-adaptive counterpart: one fixed level for the whole stream.

    Implements Table II's NO/LIGHT/MEDIUM/HEAVY baselines on the real
    I/O path with the same framing as the adaptive writer.  ``workers``
    behaves exactly as on :class:`AdaptiveBlockWriter`.
    """

    def __init__(
        self,
        sink: BinaryIO,
        level: int,
        levels: Optional[CompressionLevelTable] = None,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        workers: int = 1,
        backend: str = "thread",
    ) -> None:
        self.levels = levels or default_level_table()
        if not 0 <= level < len(self.levels):
            raise ValueError(f"level {level} out of range")
        self.level = level
        self.block_size = block_size
        self._writer = make_block_encoder(
            sink, workers=workers, backend=backend, source="static-stream"
        )
        self._buffer = bytearray()
        self._closed = False

    @property
    def bytes_in(self) -> int:
        return self._writer.bytes_in + len(self._buffer)

    @property
    def bytes_out(self) -> int:
        return self._writer.bytes_out

    def write(self, data: bytes) -> int:
        if self._closed:
            raise ValueError("writer is closed")
        self._buffer.extend(data)
        buffered = len(self._buffer)
        if buffered >= self.block_size:
            # Same zero-copy carving as AdaptiveBlockWriter.write.
            cut = buffered - (buffered % self.block_size)
            carved = bytes(memoryview(self._buffer)[:cut])
            del self._buffer[:cut]
            codec = self.levels.codec(self.level)
            with memoryview(carved) as view:
                for offset in range(0, cut, self.block_size):
                    self._writer.write_block(view[offset : offset + self.block_size], codec)
        return len(data)

    def flush(self) -> None:
        if self._buffer:
            self._writer.write_block(bytes(self._buffer), self.levels.codec(self.level))
            self._buffer.clear()
        self._writer.flush()

    def close(self) -> None:
        if not self._closed:
            try:
                self.flush()
            finally:
                self._writer.close()
                self._closed = True

    def abort(self) -> None:
        """Same error-path teardown as :meth:`AdaptiveBlockWriter.abort`."""
        self._buffer.clear()
        self._writer.abort()
        self._closed = True

    def __enter__(self) -> "StaticBlockWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
