"""Process-pool codec backend: codec work on real cores, not GIL slices.

The thread pools of :mod:`repro.core.pipeline` scale only because
``zlib``/``bz2``/``lzma`` release the GIL inside their C calls — the
framing, CRC, scheme bookkeeping and any pure-Python codec still
serialize on one core.  :class:`CodecProcessPool` is the escape hatch:
it fans compress/decompress jobs out to N **worker processes**, so even
pure-Python codec paths scale with cores.

Design constraints, in order:

* **Payloads never travel as pickles.**  Job payloads are copied into a
  :class:`~repro.core.buffers.SharedSlabPool` slab and cross the
  process boundary as a slab index plus a byte length; workers write
  their result back into the same slab in place.  Only when the slab
  ring is exhausted (or a payload exceeds the slab size) does a job
  degrade to inline bytes on the queue/pipe — counted in
  ``inline_jobs``, never an error.
* **Codecs rarely travel at all.**  Every stock codec is resolvable by
  its one-byte wire id from ``DEFAULT_REGISTRY`` in the worker; only a
  codec the default registry does not know (or knows under a different
  name) is pickled, once, and cached per worker.
* **Same result semantics as the thread pool.**  Workers reuse the
  exact serial codec steps (``_compress_payload``/``decode_payload``
  from :mod:`repro.codecs.block`), so output is byte-identical to the
  serial and thread paths.  Worker exceptions come back to the
  submitter's ``on_done`` callback and are re-raised at the call site
  by the owning pipeline, exactly like thread-worker errors; a worker
  that *dies* (OOM-kill, segfaulting extension) fails all in-flight
  jobs with :class:`WorkerCrashedError` instead of hanging the stream.
* **No stray state on exit.**  ``close()`` drains, joins workers and
  unlinks the shared-memory segment; ``terminate()`` is the kill-now
  twin for abort paths; a ``weakref.finalize`` on the slab pool unlinks
  the segment even if the owner leaks the pool.
* **Degrade, don't crash.**  On platforms without usable
  ``multiprocessing.shared_memory`` semantics (restricted sandboxes),
  :func:`process_backend_available` reports False and
  :func:`resolve_backend` substitutes the thread backend with a
  one-time log warning plus a
  :class:`~repro.telemetry.events.CodecBackendFallback` event.

The submit API is deliberately *typed* rather than the thread pool's
``submit(closure)`` — closures cannot cross a process boundary — but
the drain/ownership contract (``close`` drains, errors surface at the
call site, ``stats()`` superset) matches
:class:`~repro.core.pipeline.CodecThreadPool`, which is what lets
:class:`~repro.core.pipeline.ParallelBlockEncoder` and
:class:`~repro.core.pipeline.ParallelBlockDecoder` treat the two
backends uniformly.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import threading
from multiprocessing import connection as _mp_connection
from typing import Callable, Dict, Optional, Set, Tuple

from ..codecs.block import BlockData, BlockHeader, _compress_payload, _nbytes, decode_payload
from ..codecs.errors import CodecError
from ..codecs.registry import DEFAULT_REGISTRY
from ..telemetry.events import BUS, CodecBackendFallback
from .buffers import DEFAULT_SLAB_SIZE, SharedSlab, SharedSlabPool

__all__ = [
    "CodecProcessPool",
    "WorkerCrashedError",
    "ProcessBackendUnavailable",
    "process_backend_available",
    "process_backend_reason",
    "resolve_backend",
    "BACKENDS",
]

logger = logging.getLogger(__name__)

#: Recognised values for the ``backend=`` knobs.
BACKENDS = ("thread", "process")

#: Environment override for the multiprocessing start method (mostly
#: for tests and for hosts where the auto-pick misbehaves).
START_METHOD_ENV = "REPRO_PROC_START_METHOD"


class WorkerCrashedError(RuntimeError):
    """A codec worker process died without completing its jobs.

    Raised at the submitting call site (via the job's ``on_done``) for
    every job that was in flight when the worker disappeared, and from
    any submit attempted after the pool broke.
    """


class ProcessBackendUnavailable(RuntimeError):
    """The process backend cannot run on this platform/configuration."""


# --------------------------------------------------------------------------
# Feature detection and backend resolution
# --------------------------------------------------------------------------

#: Cached probe result: (available, reason-if-not).
_availability: Optional[Tuple[bool, str]] = None
_availability_lock = threading.Lock()
#: Reasons already warned about (one log line per process per reason).
_fallback_warned: Set[str] = set()
#: Cached multiprocessing context (forkserver > spawn > fork).
_mp_ctx = None


def _probe_availability() -> Tuple[bool, str]:
    """Can we actually create+attach shared memory and start processes?"""
    try:
        from multiprocessing import shared_memory
    except ImportError:
        return False, "multiprocessing.shared_memory is not importable"
    try:
        seg = shared_memory.SharedMemory(create=True, size=64)
    except (OSError, ValueError) as exc:
        return False, f"shared-memory creation failed: {exc!r}"
    try:
        seg.buf[:4] = b"ping"
        if bytes(seg.buf[:4]) != b"ping":  # pragma: no cover - paranoia
            return False, "shared-memory readback mismatch"
    finally:
        try:
            seg.close()
        finally:
            try:
                seg.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
    try:
        if not multiprocessing.get_all_start_methods():
            return False, "no multiprocessing start method available"
        _context()
    except (ValueError, OSError, RuntimeError) as exc:
        return False, f"no usable start method: {exc!r}"
    return True, ""


def process_backend_available() -> bool:
    """True iff :class:`CodecProcessPool` can run here (cached probe)."""
    global _availability
    with _availability_lock:
        if _availability is None:
            _availability = _probe_availability()
        return _availability[0]


def process_backend_reason() -> str:
    """Why the process backend is unavailable ('' when it is available)."""
    process_backend_available()
    return _availability[1]  # type: ignore[index]


def _reset_for_tests() -> None:
    """Forget the cached probe and warn-once state (test helper)."""
    global _availability
    with _availability_lock:
        _availability = None
    _fallback_warned.clear()


def _warn_fallback(source: str, reason: str) -> None:
    if reason not in _fallback_warned:
        _fallback_warned.add(reason)
        logger.warning(
            "codec backend 'process' unavailable (%s); falling back to "
            "'thread' for %s",
            reason,
            source,
        )
    if BUS.active:
        BUS.publish(
            CodecBackendFallback(
                ts=BUS.now(),
                source=source,
                requested="process",
                resolved="thread",
                reason=reason,
            )
        )


def resolve_backend(backend: str, *, source: str = "pipeline") -> str:
    """Validate a ``backend=`` knob and apply the availability fallback.

    Returns ``"thread"`` or ``"process"``.  Requesting ``"process"``
    where :func:`process_backend_available` is False resolves to
    ``"thread"`` with a one-time warning and a telemetry event instead
    of an exception — the CLI and daemon must keep working on platforms
    without SHM semantics.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown codec backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "process" and not process_backend_available():
        _warn_fallback(source, process_backend_reason())
        return "thread"
    return backend


def _context():
    """The multiprocessing context codec pools start workers from.

    Preference order: ``forkserver`` (safe with threaded parents —
    every pipeline owner runs threads — and ~ms per worker once the
    server is up), then ``spawn`` (safe, slower), then ``fork`` (fast
    but unsafe with threads; last resort only).  Override with the
    ``REPRO_PROC_START_METHOD`` environment variable.
    """
    global _mp_ctx
    if _mp_ctx is not None:
        return _mp_ctx
    override = os.environ.get(START_METHOD_ENV)
    methods = multiprocessing.get_all_start_methods()
    if override:
        method = override
    elif "forkserver" in methods:
        method = "forkserver"
    elif "spawn" in methods:
        method = "spawn"
    else:
        method = "fork"
    ctx = multiprocessing.get_context(method)
    if method == "forkserver":
        try:
            # Import this module (and the codec stack underneath it)
            # once in the fork server, so each worker forks warm.
            ctx.set_forkserver_preload(["repro.core.procpool"])
        except (ValueError, RuntimeError):  # pragma: no cover
            pass
    _mp_ctx = ctx
    return ctx


# --------------------------------------------------------------------------
# Exception transport
# --------------------------------------------------------------------------


def _dump_exc(exc: BaseException) -> Tuple[Optional[bytes], str, bool]:
    """(pickle-or-None, repr, is-codec-error) for the result pipe.

    The pickle is verified round-trippable *in the worker* — some
    exceptions (e.g. ``OversizedBlockError`` with its multi-arg
    ``__init__``) pickle fine but explode on load, and the load failure
    must not happen in the parent's collector thread.
    """
    is_codec = isinstance(exc, CodecError)
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)
    except Exception:
        blob = None
    return blob, repr(exc), is_codec


def _load_exc(blob: Optional[bytes], text: str, is_codec: bool) -> BaseException:
    """Rebuild a worker exception, degrading to a typed wrapper."""
    if blob is not None:
        try:
            exc = pickle.loads(blob)
            if isinstance(exc, BaseException):
                return exc
        except Exception:  # pragma: no cover - dump side pre-verifies
            pass
    if is_codec:
        return CodecError(f"codec worker failure: {text}")
    return RuntimeError(f"codec worker failure: {text}")


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------
#
# Job tuples on the shared SimpleQueue (None = shutdown sentinel):
#   ("c", token, slab_index, nbytes, inline, codec_id, codec_blob, fallback)
#   ("d", token, slab_index, nbytes, inline, header_tuple, check_crc)
# slab_index is -1 for inline jobs (payload travels in ``inline``).
#
# Result tuples on the per-worker pipe:
#   ("ok", token, header_tuple_or_None, out_len, in_slab, inline_or_None)
#   ("err", token, exc_blob, exc_repr, is_codec_error)
# header_tuple is (codec_id, flags, ulen, clen, crc32) — compress only.


def _resolve_codec(codec_id: int, codec_blob: Optional[bytes], cache: Dict):
    if codec_blob is None:
        return DEFAULT_REGISTRY.get(codec_id)
    codec = cache.get(codec_blob)
    if codec is None:
        codec = pickle.loads(codec_blob)
        cache[codec_blob] = codec
    return codec


def _worker_main(index: int, shm_name: Optional[str], slab_size: int, jobs, conn) -> None:
    """Worker-process entry point (module-level so every start method
    can import it).  Attaches the slab segment by name, then serves
    jobs until the ``None`` sentinel."""
    shm = None
    base = None
    if shm_name is not None:
        from multiprocessing import shared_memory

        # Attach-side registration with the (shared) resource tracker is
        # harmless here: the tracker cache is a set, so the parent's
        # unlink unregisters the name exactly once.
        shm = shared_memory.SharedMemory(name=shm_name)
        base = shm.buf
    codec_cache: Dict = {}
    try:
        while True:
            job = jobs.get()
            if job is None:
                break
            token = job[1]
            region = None
            data = None
            try:
                kind, _, slab_index, nbytes, inline = job[:5]
                if slab_index >= 0:
                    region = memoryview(base)[
                        slab_index * slab_size : (slab_index + 1) * slab_size
                    ]
                    data = region[:nbytes]
                else:
                    data = inline
                if kind == "c":
                    codec_id, codec_blob, allow_fallback = job[5:]
                    codec = _resolve_codec(codec_id, codec_blob, codec_cache)
                    header, payload = _compress_payload(data, codec, allow_fallback)
                    ht = (
                        header.codec_id,
                        header.flags,
                        header.uncompressed_len,
                        header.compressed_len,
                        header.crc32,
                    )
                    clen = header.compressed_len
                    if region is not None and clen <= slab_size:
                        # Stored fallback aliases the input, which is the
                        # slab itself — the result is already in place.
                        if payload is not data:
                            region[:clen] = payload
                        conn.send(("ok", token, ht, clen, True, None))
                    else:
                        conn.send(("ok", token, ht, clen, False, bytes(payload)))
                else:
                    header_tuple, check_crc = job[5:]
                    header = BlockHeader(*header_tuple)
                    out = decode_payload(
                        header, data, DEFAULT_REGISTRY, check_crc=check_crc
                    )
                    if region is not None and len(out) <= slab_size:
                        region[: len(out)] = out
                        conn.send(("ok", token, None, len(out), True, None))
                    else:
                        conn.send(("ok", token, None, len(out), False, out))
            except BaseException as exc:  # noqa: BLE001 - must reach parent
                blob, text, is_codec = _dump_exc(exc)
                conn.send(("err", token, blob, text, is_codec))
            finally:
                if isinstance(data, memoryview):
                    data.release()
                if region is not None:
                    region.release()
    finally:
        conn.close()
        # Deliberately no shm.close(): daemonised workers exit right
        # after this and closing with live exported views would raise.


# --------------------------------------------------------------------------
# Parent-side pool
# --------------------------------------------------------------------------


class _Job:
    __slots__ = ("kind", "slab", "on_done", "header")

    def __init__(
        self,
        kind: str,
        slab: Optional[SharedSlab],
        on_done: Callable,
        header: Optional[BlockHeader] = None,
    ) -> None:
        self.kind = kind
        self.slab = slab
        self.on_done = on_done
        self.header = header


class CodecProcessPool:
    """N codec worker processes fed over shared-memory slabs.

    The process-backed sibling of
    :class:`~repro.core.pipeline.CodecThreadPool`: same ownership and
    drain contract (``close()`` finishes queued jobs then joins;
    ``stats()`` is a superset of the thread pool's keys; job errors
    surface at the submitting call site), but with a typed submit API —
    :meth:`submit_compress` / :meth:`submit_decompress` — because
    closures cannot cross process boundaries.

    Completion is delivered by calling the job's ``on_done`` on the
    pool's collector thread.  Any buffer handed to ``on_done`` is valid
    **only for the duration of the call** (it may be a view of a shared
    slab that is recycled immediately after); callbacks must copy out
    what they keep, and must not block on work that needs further pool
    results.
    """

    def __init__(
        self,
        workers: int,
        *,
        name: str = "repro-codec-proc",
        slab_size: int = DEFAULT_SLAB_SIZE,
        num_slabs: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not process_backend_available():
            raise ProcessBackendUnavailable(process_backend_reason())
        self.workers = workers
        self.name = name
        ctx = _context()
        # Enough slabs that every worker can hold one job while another
        # is queued per worker — submit bursts beyond that go inline.
        self._slabs = SharedSlabPool(
            slab_size=slab_size, num_slabs=num_slabs or max(4, 2 * workers)
        )
        self._jobs = ctx.SimpleQueue()
        self._lock = threading.Lock()
        self._pending: Dict[int, _Job] = {}
        self._next_token = 0
        self._closing = False
        self._closed = False
        self._broken = False
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.job_failures = 0
        self.inline_jobs = 0
        self.callback_failures = 0
        self.last_internal_error: Optional[BaseException] = None
        self._procs = []
        self._conns = []
        for index in range(workers):
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(index, self._slabs.name, slab_size, self._jobs, send_conn),
                name=f"{name}-{index}",
                daemon=True,
            )
            proc.start()
            # The parent keeps only the receive end; the send end must
            # be closed here so worker death surfaces as EOF.
            send_conn.close()
            self._procs.append(proc)
            self._conns.append(recv_conn)
        self._collector = threading.Thread(
            target=self._collect, name=f"{name}-collector", daemon=True
        )
        self._collector.start()

    # -- submission --------------------------------------------------------

    def _add_job(self, job: _Job) -> int:
        with self._lock:
            if self._broken:
                if job.slab is not None:
                    job.slab.release()
                raise WorkerCrashedError(
                    f"{self.name}: pool is broken (a worker crashed)"
                )
            if self._closing or self._closed:
                if job.slab is not None:
                    job.slab.release()
                raise RuntimeError(f"{self.name}: pool is closed")
            token = self._next_token
            self._next_token += 1
            self._pending[token] = job
            self.jobs_submitted += 1
            if job.slab is None:
                self.inline_jobs += 1
            return token

    def _stage_payload(self, data: BlockData):
        """(slab, slab_index, nbytes, inline) for one job payload."""
        nbytes = _nbytes(data)
        slab = self._slabs.try_acquire(nbytes)
        if slab is not None:
            slab.view[:nbytes] = data
            return slab, slab.index, nbytes, None
        return None, -1, nbytes, bytes(data)

    def submit_compress(
        self,
        data: BlockData,
        codec,
        *,
        allow_stored_fallback: bool = True,
        on_done: Callable[
            [Optional[BaseException], Optional[BlockHeader], Optional[BlockData]], None
        ],
    ) -> None:
        """Compress ``data`` with ``codec`` on a worker process.

        ``on_done(exc, header, payload)`` runs on the collector thread:
        either ``exc`` is set, or ``header`` is the frame header and
        ``payload`` the (possibly stored-fallback) payload bytes, valid
        only during the call.
        """
        codec_id = codec.codec_id
        codec_blob = None
        known = DEFAULT_REGISTRY.get(codec_id) if codec_id in DEFAULT_REGISTRY else None
        if known is None or known.name != codec.name:
            codec_blob = pickle.dumps(codec)
        slab, slab_index, nbytes, inline = self._stage_payload(data)
        token = self._add_job(_Job("c", slab, on_done))
        self._jobs.put(
            ("c", token, slab_index, nbytes, inline, codec_id, codec_blob,
             allow_stored_fallback)
        )

    def submit_decompress(
        self,
        header: BlockHeader,
        payload: BlockData,
        *,
        check_crc: bool = False,
        on_done: Callable[[Optional[BaseException], Optional[BlockData]], None],
    ) -> None:
        """Decompress one frame payload on a worker process.

        ``on_done(exc, data)`` runs on the collector thread; ``data``
        is the decompressed bytes, valid only during the call.
        ``check_crc`` defaults to False because every fetcher in this
        codebase verifies the CRC before handing the payload over.
        """
        ht = (
            header.codec_id,
            header.flags,
            header.uncompressed_len,
            header.compressed_len,
            header.crc32,
        )
        slab, slab_index, nbytes, inline = self._stage_payload(payload)
        token = self._add_job(_Job("d", slab, on_done, header))
        self._jobs.put(("d", token, slab_index, nbytes, inline, ht, check_crc))

    # -- completion --------------------------------------------------------

    def _safe_done(self, job: _Job, *args) -> None:
        try:
            job.on_done(*args)
        except BaseException as exc:  # noqa: BLE001 - collector must survive
            with self._lock:
                self.callback_failures += 1
                self.last_internal_error = exc
            logger.exception("%s: on_done callback failed", self.name)

    def _deliver(self, msg) -> None:
        token = msg[1]
        with self._lock:
            job = self._pending.pop(token, None)
        if job is None:  # pragma: no cover - already failed by teardown
            return
        out = None
        try:
            if msg[0] == "ok":
                _, _, ht, out_len, in_slab, inline = msg
                if in_slab:
                    out = job.slab.view[:out_len]
                else:
                    out = inline
                with self._lock:
                    self.jobs_completed += 1
                if job.kind == "c":
                    self._safe_done(job, None, BlockHeader(*ht), out)
                else:
                    self._safe_done(job, None, out)
            else:
                _, _, blob, text, is_codec = msg
                exc = _load_exc(blob, text, is_codec)
                with self._lock:
                    self.jobs_completed += 1
                    self.job_failures += 1
                if job.kind == "c":
                    self._safe_done(job, exc, None, None)
                else:
                    self._safe_done(job, exc, None)
        finally:
            if isinstance(out, memoryview):
                out.release()
            if job.slab is not None:
                job.slab.release()

    def _collect(self) -> None:
        conns = list(self._conns)
        while conns:
            try:
                ready = _mp_connection.wait(conns)
            except OSError:  # pragma: no cover - teardown race
                break
            for conn in ready:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # Worker gone.  Expected during close() (sentinel
                    # honoured, pipe closed); anything else is a crash.
                    conns.remove(conn)
                    with self._lock:
                        closing = self._closing
                    if not closing:
                        self._break()
                    continue
                self._deliver(msg)

    def _break(self) -> None:
        """A worker died mid-service: fail everything, refuse new work."""
        with self._lock:
            if self._broken:
                return
            self._broken = True
            pending = list(self._pending.items())
            self._pending.clear()
        logger.error(
            "%s: codec worker process died unexpectedly; failing %d "
            "in-flight job(s)",
            self.name,
            len(pending),
        )
        for _, job in pending:
            exc = WorkerCrashedError(
                f"{self.name}: worker process died with the job in flight"
            )
            try:
                if job.kind == "c":
                    self._safe_done(job, exc, None, None)
                else:
                    self._safe_done(job, exc, None)
            finally:
                if job.slab is not None:
                    job.slab.release()

    # -- introspection -----------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Jobs submitted but not yet completed (queued + running)."""
        with self._lock:
            return len(self._pending)

    def qsize(self) -> int:
        """Approximate queue depth (the in-flight count: a SimpleQueue
        cannot be sized, and admission control only needs a load
        signal)."""
        return self.in_flight

    @property
    def broken(self) -> bool:
        with self._lock:
            return self._broken

    def stats(self) -> dict:
        """Counter snapshot — a superset of the thread pool's keys."""
        with self._lock:
            return {
                "workers": self.workers,
                "jobs_submitted": self.jobs_submitted,
                "jobs_completed": self.jobs_completed,
                "job_failures": self.job_failures,
                "queued": len(self._pending),
                "inline_jobs": self.inline_jobs,
                "callback_failures": self.callback_failures,
                "backend": "process",
                "broken": self._broken,
                "slabs": self._slabs.stats(),
            }

    # -- shutdown ----------------------------------------------------------

    def _fail_pending(self, exc_factory: Callable[[], BaseException]) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for job in pending:
            exc = exc_factory()
            try:
                if job.kind == "c":
                    self._safe_done(job, exc, None, None)
                else:
                    self._safe_done(job, exc, None)
            finally:
                if job.slab is not None:
                    job.slab.release()

    def close(self, timeout: float = 30.0) -> None:
        """Drain queued jobs, stop workers, unlink shared memory.

        Jobs already submitted are completed (their callbacks run)
        before the workers exit; submits racing with close raise.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            if self._closing:
                self._closed = True
                return
            self._closing = True
        for _ in self._procs:
            self._jobs.put(None)
        for proc in self._procs:
            proc.join(timeout)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - drain watchdog
                logger.warning("%s: worker %s did not drain; killing", self.name, proc.name)
                proc.terminate()
                proc.join(5.0)
        self._collector.join(timeout)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._jobs.close()
        self._fail_pending(
            lambda: WorkerCrashedError(f"{self.name}: pool closed with job in flight")
        )
        self._slabs.close()
        with self._lock:
            self._closed = True

    def terminate(self) -> None:
        """Kill-now teardown for abort paths: no drain, jobs are failed.

        Idempotent, and safe to call after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                return
            self._closing = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(5.0)
        self._collector.join(5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._jobs.close()
        self._fail_pending(
            lambda: WorkerCrashedError(f"{self.name}: pool terminated with job in flight")
        )
        self._slabs.close()
        with self._lock:
            self._closed = True

    def __enter__(self) -> "CodecProcessPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()
