"""Uniform observation/decision interface for the decision layer.

Every scheme in :mod:`repro.schemes` consumes a :class:`FlowView` — an
explicit, immutable snapshot of what one flow observed during an epoch —
and produces a :class:`FlowDecision`.  Before this module existed each
consumer (sim transfer loop, serve flows, replay traces) assembled its
own ad-hoc observation and read the chosen level back out of scheme
internals; lifting the snapshot into one frozen dataclass is what lets
a fleet-level controller (:mod:`repro.control`) reason about many flows
uniformly, and what makes replay traces self-contained.

``FlowView`` is a strict superset of the original per-flow
``EpochObservation``: the first seven fields are unchanged (and keep
their epistemics — ``app_rate`` is measured and trustworthy, the
``displayed_*`` fields are whatever the virtualized OS shows, which
Section II of the paper demonstrates can be off by an order of
magnitude).  The added fields default to single-flow values so every
pre-existing call site and on-disk trace keeps working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["FlowView", "FlowDecision"]


@dataclass(frozen=True)
class FlowView:
    """Everything a decision scheme may look at, once per epoch."""

    #: Simulation/wall time at the end of the epoch (seconds).
    now: float
    #: Length of the epoch (the paper's ``t``).
    epoch_seconds: float
    #: Application data rate achieved during the epoch (bytes/s) —
    #: the *only* input of the paper's scheme.
    app_rate: float
    #: CPU utilization (percent, 0-100+) as displayed inside the VM.
    displayed_cpu_util: float
    #: Available I/O bandwidth (bytes/s) as estimated from inside the VM.
    displayed_bandwidth: float
    #: Growth rate of the compression→send queue (bytes/s; positive
    #: means compression outpaces the network).  For queue-based schemes.
    queue_slope: float = 0.0
    #: The compressibility ratio observed on the last blocks, if the
    #: scheme samples it (None when not measured).
    observed_ratio: Optional[float] = None

    # --- fleet context (defaults describe a lone, unmanaged flow) ---

    #: Identity of the flow this snapshot describes (0 = only flow).
    flow_id: int = 0
    #: Compression level that was applied during the epoch.
    level: int = 0
    #: Application bytes moved during the epoch.
    app_bytes: float = 0.0
    #: Jobs queued in the shared codec pool when the epoch closed.
    codec_queue_depth: int = 0
    #: Size of the shared codec-worker pool (0 = unknown/none).
    codec_workers: int = 0
    #: Concurrent flows sharing the pool/link when the epoch closed.
    active_flows: int = 1
    #: Share of codec capacity currently granted to this flow (1.0 =
    #: full, fleet controllers may shrink it).
    worker_weight: float = 1.0


@dataclass(frozen=True)
class FlowDecision:
    """One scheme decision, annotated with the flow it applies to.

    ``weight`` is the codec-worker share the decision layer requests for
    the next epoch; plain per-flow schemes always say 1.0 and only the
    fleet controller's assignments change it.
    """

    flow_id: int
    epoch: int
    level_before: int
    level_after: int
    weight: float = 1.0
    reason: str = ""

    @property
    def level_changed(self) -> bool:
        return self.level_after != self.level_before
