"""The adaptive controller: epoch clock + decision scheme + trace.

This is the piece both execution environments share.  The real I/O path
(:mod:`repro.io`, :mod:`repro.nephele`) calls :meth:`AdaptiveController.record`
as application bytes pass through and :meth:`AdaptiveController.poll`
with wall-clock time; the simulator (:mod:`repro.sim.transfer`) drives
the very same class with simulated time.  Keeping a single controller
implementation is what makes the simulation results statements about
the *algorithm* rather than about a re-implementation of it.

Since the control-plane refactor the controller no longer owns a bare
:class:`~repro.core.decision.DecisionModel` — it drives any
:class:`~repro.schemes.base.CompressionScheme` through the uniform
:class:`~repro.core.flowview.FlowView` /
:class:`~repro.core.flowview.FlowDecision` interface.  The default
scheme is the paper's rate-based one, constructed with the same
parameters as before, so decisions are byte-for-byte identical to the
pre-refactor path (``model.observe(sample.rate)``).  A fleet controller
may additionally pin the applied level via :meth:`set_level_override`;
the scheme keeps learning open-loop while pinned.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from ..telemetry.events import BUS, EpochClosed, LevelSwitched
from .decision import DEFAULT_ALPHA, DEFAULT_EPOCH_SECONDS
from .flowview import FlowView
from .rate import EpochSample, RateMeter

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..schemes.base import CompressionScheme

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class EpochRecord:
    """One controller epoch, for traces (Figures 4–6 style plots)."""

    epoch: int
    start: float
    end: float
    app_bytes: int
    app_rate: float
    level_before: int
    level_after: int
    backoff_snapshot: List[int]

    @property
    def level_changed(self) -> bool:
        return self.level_after != self.level_before


class AdaptiveController:
    """Re-decides the compression level every ``epoch_seconds``.

    Parameters
    ----------
    n_levels:
        Size of the compression-level ladder.
    epoch_seconds:
        The paper's ``t`` (default 2 s).
    alpha:
        The paper's dead-band parameter (default 0.2).  Only used when
        constructing the default scheme.
    initial_level:
        Starting level; the paper starts at 0 (no compression).  Only
        used when constructing the default scheme.
    clock_start:
        Timestamp of the first epoch's start, in whatever clock the
        caller uses (wall seconds or simulated seconds).
    scheme:
        Decision scheme to drive; defaults to the paper's
        ``RateBasedScheme(n_levels, alpha=alpha, initial_level=initial_level)``.
    flow_id:
        Identity stamped into the per-epoch :class:`FlowView` (0 for a
        lone flow; the serve layer passes the real flow id).
    """

    def __init__(
        self,
        n_levels: int,
        epoch_seconds: float = DEFAULT_EPOCH_SECONDS,
        alpha: float = DEFAULT_ALPHA,
        initial_level: int = 0,
        clock_start: float = 0.0,
        scheme: Optional["CompressionScheme"] = None,
        flow_id: int = 0,
    ) -> None:
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        self.epoch_seconds = epoch_seconds
        if scheme is None:
            # Imported lazily: repro.schemes imports repro.core.flowview,
            # so a module-level import here would be a cycle.
            from ..schemes.rate_based import RateBasedScheme

            scheme = RateBasedScheme(
                n_levels, alpha=alpha, initial_level=initial_level
            )
        self.scheme = scheme
        self.n_levels = n_levels
        self.flow_id = flow_id
        self.meter = RateMeter(clock_start=clock_start)
        self.trace: List[EpochRecord] = []
        self._epoch_index = 0
        self._override: Optional[int] = None

    @property
    def model(self):
        """The inner DecisionModel, when the scheme has one (compat)."""
        return getattr(self.scheme, "model", None)

    @property
    def current_level(self) -> int:
        if self._override is not None:
            return self._override
        return self.scheme.current_level

    @property
    def level_override(self) -> Optional[int]:
        return self._override

    def set_level_override(self, level: Optional[int]) -> None:
        """Pin the applied level (clamped), or ``None`` to release.

        While pinned the scheme still observes every epoch, so its rate
        estimates and backoff state stay warm for release.
        """
        if level is None:
            self._override = None
        else:
            self._override = min(max(int(level), 0), self.n_levels - 1)

    @property
    def total_bytes(self) -> int:
        return self.meter.total_bytes

    def record(self, nbytes: int) -> None:
        """Account application bytes handed to the compression module."""
        self.meter.record(nbytes)

    def poll(self, now: float) -> Optional[EpochRecord]:
        """Re-decide if the current epoch has elapsed.

        Returns the closed epoch's record when a decision was made,
        otherwise ``None``.  Callers should invoke this frequently
        (after every block in practice); the controller ignores calls
        inside an open epoch, so over-calling is free.
        """
        if now - self.meter.epoch_start < self.epoch_seconds:
            return None
        return self.force_decision(now)

    def force_decision(self, now: float) -> EpochRecord:
        """Close the epoch at ``now`` unconditionally and re-decide."""
        sample: EpochSample = self.meter.close_epoch(now)
        level_before = self.current_level
        view = FlowView(
            now=sample.end,
            epoch_seconds=max(sample.end - sample.start, 0.0),
            app_rate=sample.rate,
            displayed_cpu_util=0.0,
            displayed_bandwidth=0.0,
            flow_id=self.flow_id,
            level=level_before,
            app_bytes=float(sample.nbytes),
        )
        decision = self.scheme.decide(view)
        level_after = (
            self._override if self._override is not None else decision.level_after
        )
        record = EpochRecord(
            epoch=self._epoch_index,
            start=sample.start,
            end=sample.end,
            app_bytes=sample.nbytes,
            app_rate=sample.rate,
            level_before=level_before,
            level_after=level_after,
            backoff_snapshot=self.scheme.backoff_snapshot(),
        )
        self.trace.append(record)
        self._epoch_index += 1
        if BUS.active:
            BUS.publish(
                EpochClosed(
                    ts=record.end,
                    source="controller",
                    epoch=record.epoch,
                    start=record.start,
                    end=record.end,
                    app_bytes=record.app_bytes,
                    app_rate=record.app_rate,
                    level=record.level_after,
                )
            )
            if record.level_changed:
                BUS.publish(
                    LevelSwitched(
                        ts=record.end,
                        source="controller",
                        epoch=record.epoch,
                        level_before=record.level_before,
                        level_after=record.level_after,
                    )
                )
        if record.level_changed and logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "epoch %d: rate %.2f MB/s, level %d -> %d (bck=%s)",
                record.epoch,
                record.app_rate / 1e6,
                record.level_before,
                record.level_after,
                record.backoff_snapshot,
            )
        return record

    def level_timeline(self) -> List[tuple[float, int]]:
        """(time, level) change points reconstructed from the trace."""
        timeline: List[tuple[float, int]] = []
        last_level: Optional[int] = None
        for rec in self.trace:
            if rec.level_before != last_level:
                timeline.append((rec.start, rec.level_before))
                last_level = rec.level_before
            if rec.level_changed:
                timeline.append((rec.end, rec.level_after))
                last_level = rec.level_after
        return timeline
