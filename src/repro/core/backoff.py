"""Per-level exponential backoff bookkeeping (Algorithm 1's ``bck`` array).

"A fundamental aspect of our algorithm is that these switches occur less
often for compression levels which have continuously led to improvements
in the data rate.  We achieve this behavior through an exponential
backoff scheme." (Section III-A)
"""

from __future__ import annotations

from typing import List

from ..telemetry.events import BUS, BackoffUpdated


class BackoffTable:
    """The ``bck`` array: one exponential backoff exponent per level.

    ``threshold(level)`` is ``2 ** bck[level]`` — the number of
    consecutive stable epochs that must pass at ``level`` before the
    algorithm probes a neighbouring level again.
    """

    #: Cap on the exponent so ``2**bck`` stays a sane integer even on
    #: very long runs (2**30 epochs at t=2 s is ~68 years).
    MAX_EXPONENT = 30

    def __init__(self, n_levels: int) -> None:
        if n_levels < 1:
            raise ValueError("need at least one level")
        self._bck: List[int] = [0] * n_levels

    def __len__(self) -> int:
        return len(self._bck)

    def exponent(self, level: int) -> int:
        return self._bck[level]

    def threshold(self, level: int) -> int:
        """Number of stable epochs before the next optimistic probe."""
        return 1 << self._bck[level]

    def reward(self, level: int) -> None:
        """Rate improved at ``level``: probe less often (line 16)."""
        if self._bck[level] < self.MAX_EXPONENT:
            self._bck[level] += 1
        if BUS.active:
            BUS.publish(
                BackoffUpdated(
                    ts=BUS.now(),
                    level=level,
                    exponent=self._bck[level],
                    action="reward",
                )
            )

    def punish(self, level: int) -> None:
        """Rate degraded at ``level``: probe eagerly again (line 20)."""
        self._bck[level] = 0
        if BUS.active:
            BUS.publish(
                BackoffUpdated(
                    ts=BUS.now(), level=level, exponent=0, action="punish"
                )
            )

    def snapshot(self) -> List[int]:
        """Copy of the exponents (for traces and tests)."""
        return list(self._bck)
