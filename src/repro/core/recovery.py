"""Recovery on the block-transfer path: resync decoding and retries.

Section III-B's framing makes every 128 KB block self-contained — "each
block contains all the information to be decompressed by the receiver"
— which means corruption *should* cost one block, not the job.  The
strict :class:`~repro.codecs.block.BlockReader` deliberately fails the
whole stream on the first bad byte; :class:`ResyncBlockReader` is the
lenient counterpart that cashes in the self-containment claim: on a
CRC mismatch, bad header or undecodable payload it scans forward for
the next ``MAGIC`` boundary, skips the damaged region, and keeps
decoding, reporting ``blocks_skipped``/``bytes_skipped`` instead of
raising.

:class:`RetryPolicy` is the shared exponential-backoff schedule used by
:func:`repro.io.sockets.run_socket_transfer` for connect retries; it is
deterministic (seeded jitter) so tests can assert exact delays.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import BinaryIO, Callable, Iterator, List, Optional, Tuple, Type

from ..codecs.block import (
    HEADER_SIZE,
    MAGIC,
    BlockHeader,
    decode_header,
    decode_payload,
    verify_crc,
)
from ..codecs.errors import CodecError, CorruptBlockError
from ..codecs.registry import DEFAULT_REGISTRY, CodecRegistry
from ..telemetry.events import BUS, BlockSkipped

__all__ = ["ResyncBlockReader", "ResyncFrameScanner", "RetryPolicy", "retry_call"]

#: Read granularity while refilling the resync buffer.
_READ_CHUNK = 64 * 1024


class ResyncFrameScanner:
    """Scan a damaged framed stream for CRC-valid candidate frames.

    The fetch half of the resync algorithm (see docs/robustness.md),
    factored out so one implementation serves both the serial
    :class:`ResyncBlockReader` and the read-ahead fetcher of the
    :class:`~repro.core.pipeline.ParallelBlockDecoder`:

    1. Scan the buffered stream for the two-byte ``MAGIC``; bytes
       before it are damage, counted into ``bytes_skipped``.
    2. Validate the candidate header (magic, version, sane lengths —
       the same bounds as the strict reader).  An invalid header means
       a false ``MAGIC`` inside damaged bytes: slide one byte and
       rescan.
    3. CRC-check the candidate payload.  On mismatch, slide one byte
       past the candidate's magic and rescan — crucially *without*
       trusting the candidate's claimed payload length, so a corrupted
       length field can never swallow healthy downstream frames.
    4. Each maximal run of discarded bytes counts as **one** entry in
       ``blocks_skipped`` (isolated corruption damages exactly one
       block) and publishes one
       :class:`~repro.telemetry.events.BlockSkipped` event.

    Protocol: :meth:`next_frame` positions a CRC-valid frame at the
    head of the buffer and returns its header; :meth:`payload_view`
    exposes the payload without copying; the caller then either
    :meth:`accept`\\ s the frame (consuming it) or :meth:`reject`\\ s it
    (slide one byte, keep scanning) if decompression still fails —
    preserving the strict "never silently wrong bytes" slide-and-rescan
    semantics end to end.
    """

    def __init__(
        self,
        source: BinaryIO,
        *,
        max_block_len: Optional[int] = None,
        event_source: str = "resync-reader",
    ) -> None:
        self._source = source
        self._readinto = getattr(source, "readinto", None)
        self._max_block_len = max_block_len
        self._event_source = event_source
        self._buffer = bytearray()
        self._eof = False
        self._frame_len = 0
        #: Bytes discarded while scanning since the last good block
        #: (pending until attributed to a skip region).
        self._pending_skip = 0
        #: Raw stream bytes consumed (frames + damage).
        self.bytes_in = 0
        #: Number of damaged regions skipped (>= damaged blocks merged
        #: into contiguous runs, == damaged blocks for isolated faults).
        self.blocks_skipped = 0
        #: Total damaged/undecodable bytes discarded.
        self.bytes_skipped = 0

    # -- buffered input ---------------------------------------------

    def _fill(self, need: int) -> bool:
        """Grow the buffer to ``need`` bytes; False once EOF gets in
        the way."""
        buffered = len(self._buffer)
        while buffered < need and not self._eof:
            want = max(need - buffered, _READ_CHUNK)
            if self._readinto is not None:
                # Scatter-read straight into the buffer tail (the
                # receive loop's ``recv_into`` path): grow, fill, trim.
                self._buffer.extend(bytes(want))
                with memoryview(self._buffer) as view:
                    got = self._readinto(view[buffered:])
                del self._buffer[buffered + (got or 0) :]
                if not got:
                    self._eof = True
                    break
                buffered += got
            else:
                chunk = self._source.read(want)
                if not chunk:
                    self._eof = True
                    break
                self._buffer.extend(chunk)
                buffered += len(chunk)
        return len(self._buffer) >= need

    def _discard(self, n: int) -> None:
        del self._buffer[:n]
        self._pending_skip += n
        self.bytes_in += n

    def _close_skip_region(self) -> None:
        """Fold pending discarded bytes into the public counters."""
        if not self._pending_skip:
            return
        self.blocks_skipped += 1
        self.bytes_skipped += self._pending_skip
        if BUS.active:
            BUS.publish(
                BlockSkipped(
                    ts=BUS.now(),
                    source=self._event_source,
                    bytes_skipped=self._pending_skip,
                    total_blocks_skipped=self.blocks_skipped,
                    total_bytes_skipped=self.bytes_skipped,
                )
            )
        self._pending_skip = 0

    # -- scanning ---------------------------------------------------

    def next_frame(self) -> Optional[BlockHeader]:
        """Advance to the next CRC-valid frame; ``None`` once spent.

        On return the frame occupies the buffer head; read its payload
        with :meth:`payload_view`, then :meth:`accept` or
        :meth:`reject` it.  Never raises on corruption.
        """
        while True:
            if not self._fill(HEADER_SIZE):
                # Too few bytes left to hold any frame: whatever
                # remains is damage (e.g. a truncated final frame).
                if self._buffer:
                    self._discard(len(self._buffer))
                self._close_skip_region()
                return None
            idx = self._buffer.find(MAGIC)
            if idx < 0:
                # Keep the final byte: it may be the first half of a
                # MAGIC split across the chunk boundary.
                self._discard(len(self._buffer) - 1)
                continue
            if idx > 0:
                self._discard(idx)
                continue
            try:
                header = decode_header(
                    self._buffer[:HEADER_SIZE], max_len=self._max_block_len
                )
            except CorruptBlockError:
                self._discard(1)
                continue
            need = HEADER_SIZE + header.compressed_len
            if not self._fill(need):
                # EOF before the claimed payload: either a truncated
                # tail frame or a false header — slide and rescan what
                # we do have.
                self._discard(1)
                continue
            with memoryview(self._buffer) as view:
                ok = verify_crc(header, view[HEADER_SIZE:need])
            if not ok:
                self._discard(1)
                continue
            self._frame_len = need
            return header

    def payload_view(self) -> memoryview:
        """Zero-copy view of the current frame's payload.

        Valid only between :meth:`next_frame` and the following
        :meth:`accept`/:meth:`reject`; release it before either.
        """
        return memoryview(self._buffer)[HEADER_SIZE : self._frame_len]

    def accept(self) -> None:
        """Consume the current frame and close any pending skip region."""
        need, self._frame_len = self._frame_len, 0
        del self._buffer[:need]
        self._close_skip_region()
        self.bytes_in += need

    def reject(self) -> None:
        """Discard one byte of the current candidate and keep scanning.

        The CRC matched but the payload would not decode (possible only
        via checksum collision or a registry mismatch): slide past the
        candidate's magic exactly like any other false positive.
        """
        self._frame_len = 0
        self._discard(1)

    def finish(self) -> None:
        """Account any still-pending damage (early shutdown path)."""
        self._close_skip_region()


class ResyncBlockReader:
    """Decode a framed block stream, skipping damaged regions.

    Drop-in replacement for :class:`~repro.codecs.block.BlockReader`
    (same iteration protocol, same ``blocks_read``/``bytes_in``/
    ``bytes_out`` counters) that never raises on corruption: frames are
    located by a :class:`ResyncFrameScanner` and a frame whose payload
    still fails to decompress after its CRC matched is rejected back to
    the scanner, so decoded output is always a prefix-preserving
    ordered subsequence of the original blocks — never silently wrong
    bytes.
    """

    def __init__(
        self,
        source: BinaryIO,
        registry: CodecRegistry = DEFAULT_REGISTRY,
        *,
        max_block_len: Optional[int] = None,
    ) -> None:
        self._scanner = ResyncFrameScanner(source, max_block_len=max_block_len)
        self._registry = registry
        self.blocks_read = 0
        self.bytes_out = 0

    # -- damage accounting (delegated to the scanner) ---------------

    @property
    def bytes_in(self) -> int:
        return self._scanner.bytes_in

    @property
    def blocks_skipped(self) -> int:
        return self._scanner.blocks_skipped

    @property
    def bytes_skipped(self) -> int:
        return self._scanner.bytes_skipped

    # -- decoding ---------------------------------------------------

    def read_block(self) -> Optional[bytes]:
        """Next decodable block, or ``None`` once the stream is spent.

        Never raises on corruption; damage is skipped and counted.
        """
        while True:
            header = self._scanner.next_frame()
            if header is None:
                return None
            payload = self._scanner.payload_view()
            try:
                data = decode_payload(
                    header, payload, self._registry, check_crc=False
                )
            except CodecError:
                data = None
            finally:
                payload.release()
            if data is None:
                self._scanner.reject()
                continue
            self._scanner.accept()
            self.blocks_read += 1
            self.bytes_out += len(data)
            return data

    def close(self) -> None:
        """No-op: interface parity with the parallel decoder."""

    def abort(self) -> None:
        """No-op counterpart of the parallel decoder's error teardown."""

    def __iter__(self) -> Iterator[bytes]:
        while True:
            block = self.read_block()
            if block is None:
                return
            yield block


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff schedule.

    ``delays()`` yields ``attempts - 1`` sleep durations: ``base``
    doubled each retry, capped at ``max_delay``, with multiplicative
    jitter in ``[1 - jitter, 1 + jitter]`` drawn from ``seed`` so runs
    are reproducible.
    """

    attempts: int = 4
    base: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base < 0 or self.max_delay < 0 or not 0 <= self.jitter < 1:
            raise ValueError("invalid backoff parameters")

    def delays(self) -> Iterator[float]:
        rng = random.Random(self.seed)
        delay = self.base
        for _ in range(self.attempts - 1):
            scale = 1.0 + rng.uniform(-self.jitter, self.jitter)
            yield min(delay, self.max_delay) * scale
            delay = min(delay * 2, self.max_delay)


def retry_call(
    fn: Callable[[], "object"],
    *,
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn`` under ``policy``, re-raising the last failure.

    Only exceptions in ``retry_on`` are retried; anything else
    propagates immediately.  The failed attempts' exceptions are
    attached to the final error via ``__cause__`` chaining.
    """
    failures: List[BaseException] = []
    delays = policy.delays()
    while True:
        try:
            return fn()
        except retry_on as exc:
            failures.append(exc)
            try:
                pause = next(delays)
            except StopIteration:
                raise exc from (failures[-2] if len(failures) > 1 else None)
            sleep(pause)
