"""Recovery on the block-transfer path: resync decoding and retries.

Section III-B's framing makes every 128 KB block self-contained — "each
block contains all the information to be decompressed by the receiver"
— which means corruption *should* cost one block, not the job.  The
strict :class:`~repro.codecs.block.BlockReader` deliberately fails the
whole stream on the first bad byte; :class:`ResyncBlockReader` is the
lenient counterpart that cashes in the self-containment claim: on a
CRC mismatch, bad header or undecodable payload it scans forward for
the next ``MAGIC`` boundary, skips the damaged region, and keeps
decoding, reporting ``blocks_skipped``/``bytes_skipped`` instead of
raising.

:class:`RetryPolicy` is the shared exponential-backoff schedule used by
:func:`repro.io.sockets.run_socket_transfer` for connect retries; it is
deterministic (seeded jitter) so tests can assert exact delays.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import BinaryIO, Callable, Iterator, List, Optional, Tuple, Type

from ..codecs.block import HEADER_SIZE, MAGIC, decode_header, decode_payload
from ..codecs.errors import CodecError, CorruptBlockError
from ..codecs.registry import DEFAULT_REGISTRY, CodecRegistry
from ..telemetry.events import BUS, BlockSkipped

__all__ = ["ResyncBlockReader", "RetryPolicy", "retry_call"]

#: Read granularity while refilling the resync buffer.
_READ_CHUNK = 64 * 1024


class ResyncBlockReader:
    """Decode a framed block stream, skipping damaged regions.

    Drop-in replacement for :class:`~repro.codecs.block.BlockReader`
    (same iteration protocol, same ``blocks_read``/``bytes_in``/
    ``bytes_out`` counters) that never raises on corruption.  The
    resync algorithm (see docs/robustness.md):

    1. Scan the buffered stream for the two-byte ``MAGIC``; bytes
       before it are damage, counted into ``bytes_skipped``.
    2. Validate the candidate header (magic, version, sane lengths —
       the same bounds as the strict reader).  An invalid header means
       a false ``MAGIC`` inside damaged bytes: slide one byte and
       rescan.
    3. CRC-check and decompress the candidate payload.  On any
       failure, slide one byte past the candidate's magic and rescan —
       crucially *without* trusting the candidate's claimed payload
       length, so a corrupted length field can never swallow healthy
       downstream frames.
    4. Each maximal run of discarded bytes counts as **one** entry in
       ``blocks_skipped`` (isolated corruption damages exactly one
       block) and publishes one
       :class:`~repro.telemetry.events.BlockSkipped` event.

    Decoded output is therefore always a prefix-preserving ordered
    subsequence of the original blocks — never silently wrong bytes.
    """

    def __init__(
        self,
        source: BinaryIO,
        registry: CodecRegistry = DEFAULT_REGISTRY,
        *,
        max_block_len: Optional[int] = None,
    ) -> None:
        self._source = source
        self._registry = registry
        self._max_block_len = max_block_len
        self._readinto = getattr(source, "readinto", None)
        self._buffer = bytearray()
        self._eof = False
        #: Bytes discarded while scanning since the last good block
        #: (pending until attributed to a skip region).
        self._pending_skip = 0
        self.blocks_read = 0
        self.bytes_in = 0
        self.bytes_out = 0
        #: Number of damaged regions skipped (>= damaged blocks merged
        #: into contiguous runs, == damaged blocks for isolated faults).
        self.blocks_skipped = 0
        #: Total damaged/undecodable bytes discarded.
        self.bytes_skipped = 0

    # -- buffered input ---------------------------------------------

    def _fill(self, need: int) -> bool:
        """Grow the buffer to ``need`` bytes; False once EOF gets in
        the way."""
        while len(self._buffer) < need and not self._eof:
            want = max(need - len(self._buffer), _READ_CHUNK)
            chunk = self._source.read(want)
            if not chunk:
                self._eof = True
                break
            self._buffer.extend(chunk)
        return len(self._buffer) >= need

    def _discard(self, n: int) -> None:
        del self._buffer[:n]
        self._pending_skip += n
        self.bytes_in += n

    def _close_skip_region(self) -> None:
        """Fold pending discarded bytes into the public counters."""
        if not self._pending_skip:
            return
        self.blocks_skipped += 1
        self.bytes_skipped += self._pending_skip
        if BUS.active:
            BUS.publish(
                BlockSkipped(
                    ts=BUS.now(),
                    source="resync-reader",
                    bytes_skipped=self._pending_skip,
                    total_blocks_skipped=self.blocks_skipped,
                    total_bytes_skipped=self.bytes_skipped,
                )
            )
        self._pending_skip = 0

    # -- decoding ---------------------------------------------------

    def read_block(self) -> Optional[bytes]:
        """Next decodable block, or ``None`` once the stream is spent.

        Never raises on corruption; damage is skipped and counted.
        """
        while True:
            if not self._fill(HEADER_SIZE):
                # Too few bytes left to hold any frame: whatever
                # remains is damage (e.g. a truncated final frame).
                if self._buffer:
                    self._discard(len(self._buffer))
                self._close_skip_region()
                return None
            idx = self._buffer.find(MAGIC)
            if idx < 0:
                # Keep the final byte: it may be the first half of a
                # MAGIC split across the chunk boundary.
                self._discard(len(self._buffer) - 1)
                continue
            if idx > 0:
                self._discard(idx)
                continue
            try:
                header = decode_header(
                    self._buffer[:HEADER_SIZE], max_len=self._max_block_len
                )
            except CorruptBlockError:
                self._discard(1)
                continue
            need = HEADER_SIZE + header.compressed_len
            if not self._fill(need):
                # EOF before the claimed payload: either a truncated
                # tail frame or a false header — slide and rescan what
                # we do have.
                self._discard(1)
                continue
            with memoryview(self._buffer) as view:
                payload = view[HEADER_SIZE:need]
                try:
                    data = decode_payload(header, payload, self._registry)
                except CodecError:
                    data = None
                finally:
                    payload.release()
            if data is None:
                self._discard(1)
                continue
            del self._buffer[:need]
            self._close_skip_region()
            self.blocks_read += 1
            self.bytes_in += need
            self.bytes_out += len(data)
            return data

    def __iter__(self) -> Iterator[bytes]:
        while True:
            block = self.read_block()
            if block is None:
                return
            yield block


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff schedule.

    ``delays()`` yields ``attempts - 1`` sleep durations: ``base``
    doubled each retry, capped at ``max_delay``, with multiplicative
    jitter in ``[1 - jitter, 1 + jitter]`` drawn from ``seed`` so runs
    are reproducible.
    """

    attempts: int = 4
    base: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base < 0 or self.max_delay < 0 or not 0 <= self.jitter < 1:
            raise ValueError("invalid backoff parameters")

    def delays(self) -> Iterator[float]:
        rng = random.Random(self.seed)
        delay = self.base
        for _ in range(self.attempts - 1):
            scale = 1.0 + rng.uniform(-self.jitter, self.jitter)
            yield min(delay, self.max_delay) * scale
            delay = min(delay * 2, self.max_delay)


def retry_call(
    fn: Callable[[], "object"],
    *,
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``fn`` under ``policy``, re-raising the last failure.

    Only exceptions in ``retry_on`` are retried; anything else
    propagates immediately.  The failed attempts' exceptions are
    attached to the final error via ``__cause__`` chaining.
    """
    failures: List[BaseException] = []
    delays = policy.delays()
    while True:
        try:
            return fn()
        except retry_on as exc:
            failures.append(exc)
            try:
                pause = next(delays)
            except StopIteration:
                raise exc from (failures[-2] if len(failures) > 1 else None)
            sleep(pause)
