"""Reusable byte-buffer slabs for the block-framing hot paths.

Every block that crosses the transfer path used to cost fresh
allocations: the encoder built one ``bytearray`` frame per block, the
reader one header buffer and one payload buffer per block.  At the
paper's 128 KB block size a 50 GB transfer performs ~400k such
allocations per side — pure allocator pressure that competes with the
codecs for the same cores the pipeline is trying to saturate.

:class:`BufferPool` removes that per-block cost: it hands out
:class:`PooledBuffer` views carved from a free list of fixed-size
``bytearray`` slabs and takes the slabs back on ``release()``.  Requests
larger than the slab size are served with a one-off allocation (counted
in ``oversize``) so callers never need a size check; requests that find
the free list empty allocate a new slab (a ``miss``) which joins the
pool on release, up to ``max_slabs``.

The pool is thread-safe — the parallel pipelines acquire in their
fetcher/producer threads and release from worker threads — and its
counters (``hits``/``misses``/``oversize``) are plain ints mutated
under the lock, cheap enough to keep unconditionally.  Telemetry stays
zero-cost when idle: the pool itself never publishes; the pipelines
that own a pool publish one
:class:`~repro.telemetry.events.BufferPoolStats` event at close, and
only while a bus subscriber is attached.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional

try:  # Restricted sandboxes may ship multiprocessing without shm.
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform-dependent
    _shared_memory = None

__all__ = [
    "BufferPool",
    "PooledBuffer",
    "SharedSlabPool",
    "SharedSlab",
    "DEFAULT_SLAB_SIZE",
]

#: Default slab size: the paper's 128 KB block plus generous headroom
#: for codec overhead on incompressible data, so every frame the stock
#: writers produce fits in one slab.
DEFAULT_SLAB_SIZE = 160 * 1024


class PooledBuffer:
    """A writable window over a pool slab (or a one-off allocation).

    ``view`` is a :class:`memoryview` of exactly the requested length;
    fill it with ``readinto``-style calls or slice assignment, hand it
    to codecs/CRC without copying, then ``release()`` it.  After
    ``release()`` the view is invalid — the slab may be handed to
    another caller immediately.
    """

    __slots__ = ("view", "_slab", "_pool")

    def __init__(
        self, slab: bytearray, length: int, pool: Optional["BufferPool"]
    ) -> None:
        self._slab = slab
        self._pool = pool
        self.view = memoryview(slab)[:length]

    def __len__(self) -> int:
        return self.view.nbytes

    def release(self) -> None:
        """Return the slab to its pool.  Idempotent."""
        if self._slab is None:
            return
        self.view.release()
        self.view = None  # type: ignore[assignment]
        slab, self._slab = self._slab, None
        if self._pool is not None:
            self._pool._put_back(slab)
            self._pool = None


class BufferPool:
    """Thread-safe free list of reusable ``bytearray`` slabs."""

    def __init__(
        self, slab_size: int = DEFAULT_SLAB_SIZE, max_slabs: int = 32
    ) -> None:
        if slab_size < 1:
            raise ValueError("slab_size must be >= 1")
        if max_slabs < 1:
            raise ValueError("max_slabs must be >= 1")
        self.slab_size = slab_size
        self.max_slabs = max_slabs
        self._free: List[bytearray] = []
        self._lock = threading.Lock()
        #: Acquires served from the free list.
        self.hits = 0
        #: Acquires that had to allocate a new slab.
        self.misses = 0
        #: Acquires larger than ``slab_size`` (one-off, never pooled).
        self.oversize = 0

    def acquire(self, length: int) -> PooledBuffer:
        """A :class:`PooledBuffer` of exactly ``length`` writable bytes."""
        if length > self.slab_size:
            with self._lock:
                self.oversize += 1
            # Too big for the slab class: serve a one-off allocation
            # that release() simply drops.
            return PooledBuffer(bytearray(length), length, None)
        with self._lock:
            if self._free:
                self.hits += 1
                slab = self._free.pop()
            else:
                self.misses += 1
                slab = bytearray(self.slab_size)
        return PooledBuffer(slab, length, self)

    def _put_back(self, slab: bytearray) -> None:
        with self._lock:
            if len(self._free) < self.max_slabs:
                self._free.append(slab)

    @property
    def free_slabs(self) -> int:
        with self._lock:
            return len(self._free)

    def stats(self) -> dict:
        """Counter snapshot (for telemetry events and tests)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "oversize": self.oversize,
                "free_slabs": len(self._free),
            }


def _destroy_segment(shm) -> None:
    """Close and unlink one SharedMemory segment, tolerating partial state.

    Runs via ``weakref.finalize`` — i.e. also at interpreter exit — so a
    :class:`SharedSlabPool` can never leave a stray ``/dev/shm`` file
    behind, even when the owner forgot to call :meth:`close`.
    """
    try:
        shm.close()
    except BufferError:
        # A borrowed view outlived the pool; the mapping stays but the
        # name must still go away.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except OSError:  # pragma: no cover - platform-dependent unlink races
        pass


class SharedSlab:
    """One fixed-size window of a :class:`SharedSlabPool` segment.

    ``view`` is a writable :class:`memoryview` over the *whole* slab
    (``slab_size`` bytes): the submitter copies a job payload into its
    prefix, a worker process — attached to the same segment under the
    same index — may overwrite it in place with the job's result, and
    the owner reads the result prefix back out before ``release()``.
    After ``release()`` the view is invalid and the slab may be handed
    to another caller immediately.
    """

    __slots__ = ("index", "view", "_pool")

    def __init__(self, index: int, view: memoryview, pool: "SharedSlabPool") -> None:
        self.index = index
        self.view = view
        self._pool = pool

    def release(self) -> None:
        """Return the slab to its pool.  Idempotent."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        view, self.view = self.view, None
        pool._release(self.index, view)


class SharedSlabPool:
    """Cross-process sibling of :class:`BufferPool`: a fixed ring of
    slabs carved from one ``multiprocessing.shared_memory`` segment.

    Where :class:`BufferPool` recycles in-process ``bytearray`` slabs,
    this pool owns *one* named shared-memory segment of
    ``slab_size * num_slabs`` bytes that worker **processes** attach to
    by name.  Block payloads then cross the process boundary as a slab
    index plus a byte length — never as pickled bytes — which is what
    makes the process codec backend's per-block IPC O(descriptor), not
    O(payload).

    Unlike :class:`BufferPool`, the slab count is fixed: a full pool
    returns ``None`` from :meth:`try_acquire` (counted in
    ``exhausted``), as does a request larger than ``slab_size``
    (counted in ``oversize``) — callers fall back to inline bytes on
    the pipe.  The free list lives in the owning process only; worker
    processes never allocate, they only read/write the slab a job
    descriptor names.

    Cleanup is belt and braces: :meth:`close` releases every
    outstanding view, closes the mapping and unlinks the segment name;
    a ``weakref.finalize`` hook does the same at garbage collection or
    interpreter exit, so no ``/dev/shm`` entry can outlive the process.
    """

    def __init__(
        self, slab_size: int = DEFAULT_SLAB_SIZE, num_slabs: int = 8
    ) -> None:
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        if slab_size < 1:
            raise ValueError("slab_size must be >= 1")
        if num_slabs < 1:
            raise ValueError("num_slabs must be >= 1")
        self.slab_size = slab_size
        self.num_slabs = num_slabs
        self._shm = _shared_memory.SharedMemory(
            create=True, size=slab_size * num_slabs
        )
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._free: List[int] = list(range(num_slabs))
        self._out: Dict[int, SharedSlab] = {}
        self._closed = False
        self.acquires = 0
        #: try_acquire calls that found no free slab.
        self.exhausted = 0
        #: Requests larger than ``slab_size`` (never served).
        self.oversize = 0
        self._finalizer = weakref.finalize(self, _destroy_segment, self._shm)

    @property
    def name(self) -> str:
        """Segment name worker processes attach to."""
        return self._shm.name

    def try_acquire(self, length: int) -> Optional[SharedSlab]:
        """A free slab able to hold ``length`` bytes, or ``None``.

        Never blocks: the process backend falls back to inline pipe
        bytes when the ring is full or the payload is oversize, so a
        burst of jobs degrades to slower transport instead of deadlock.
        """
        if length > self.slab_size:
            with self._lock:
                self.oversize += 1
            return None
        with self._lock:
            if self._closed or not self._free:
                self.exhausted += 1
                return None
            index = self._free.pop()
            self.acquires += 1
            view = memoryview(self._shm.buf)[
                index * self.slab_size : (index + 1) * self.slab_size
            ]
            slab = SharedSlab(index, view, self)
            self._out[index] = slab
            return slab

    def _release(self, index: int, view: Optional[memoryview]) -> None:
        if view is not None:
            view.release()
        with self._cond:
            self._out.pop(index, None)
            if not self._closed:
                self._free.append(index)
                self._cond.notify()

    @property
    def free_slabs(self) -> int:
        with self._lock:
            return len(self._free)

    def stats(self) -> dict:
        """Counter snapshot (for telemetry events and tests)."""
        with self._lock:
            return {
                "slab_size": self.slab_size,
                "num_slabs": self.num_slabs,
                "acquires": self.acquires,
                "exhausted": self.exhausted,
                "oversize": self.oversize,
                "free_slabs": len(self._free),
            }

    def close(self) -> None:
        """Release every view, close the mapping, unlink the name.

        Idempotent, and safe with slabs still outstanding (the abort
        path tears down mid-flight): their views are force-released so
        the segment can actually be closed.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            outstanding = list(self._out.values())
            self._out.clear()
            self._free.clear()
        for slab in outstanding:
            view, slab.view = slab.view, None
            slab._pool = None
            if view is not None:
                view.release()
        self._finalizer()

    def __enter__(self) -> "SharedSlabPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
