"""Reusable byte-buffer slabs for the block-framing hot paths.

Every block that crosses the transfer path used to cost fresh
allocations: the encoder built one ``bytearray`` frame per block, the
reader one header buffer and one payload buffer per block.  At the
paper's 128 KB block size a 50 GB transfer performs ~400k such
allocations per side — pure allocator pressure that competes with the
codecs for the same cores the pipeline is trying to saturate.

:class:`BufferPool` removes that per-block cost: it hands out
:class:`PooledBuffer` views carved from a free list of fixed-size
``bytearray`` slabs and takes the slabs back on ``release()``.  Requests
larger than the slab size are served with a one-off allocation (counted
in ``oversize``) so callers never need a size check; requests that find
the free list empty allocate a new slab (a ``miss``) which joins the
pool on release, up to ``max_slabs``.

The pool is thread-safe — the parallel pipelines acquire in their
fetcher/producer threads and release from worker threads — and its
counters (``hits``/``misses``/``oversize``) are plain ints mutated
under the lock, cheap enough to keep unconditionally.  Telemetry stays
zero-cost when idle: the pool itself never publishes; the pipelines
that own a pool publish one
:class:`~repro.telemetry.events.BufferPoolStats` event at close, and
only while a bus subscriber is attached.
"""

from __future__ import annotations

import threading
from typing import List, Optional

__all__ = ["BufferPool", "PooledBuffer", "DEFAULT_SLAB_SIZE"]

#: Default slab size: the paper's 128 KB block plus generous headroom
#: for codec overhead on incompressible data, so every frame the stock
#: writers produce fits in one slab.
DEFAULT_SLAB_SIZE = 160 * 1024


class PooledBuffer:
    """A writable window over a pool slab (or a one-off allocation).

    ``view`` is a :class:`memoryview` of exactly the requested length;
    fill it with ``readinto``-style calls or slice assignment, hand it
    to codecs/CRC without copying, then ``release()`` it.  After
    ``release()`` the view is invalid — the slab may be handed to
    another caller immediately.
    """

    __slots__ = ("view", "_slab", "_pool")

    def __init__(
        self, slab: bytearray, length: int, pool: Optional["BufferPool"]
    ) -> None:
        self._slab = slab
        self._pool = pool
        self.view = memoryview(slab)[:length]

    def __len__(self) -> int:
        return self.view.nbytes

    def release(self) -> None:
        """Return the slab to its pool.  Idempotent."""
        if self._slab is None:
            return
        self.view.release()
        self.view = None  # type: ignore[assignment]
        slab, self._slab = self._slab, None
        if self._pool is not None:
            self._pool._put_back(slab)
            self._pool = None


class BufferPool:
    """Thread-safe free list of reusable ``bytearray`` slabs."""

    def __init__(
        self, slab_size: int = DEFAULT_SLAB_SIZE, max_slabs: int = 32
    ) -> None:
        if slab_size < 1:
            raise ValueError("slab_size must be >= 1")
        if max_slabs < 1:
            raise ValueError("max_slabs must be >= 1")
        self.slab_size = slab_size
        self.max_slabs = max_slabs
        self._free: List[bytearray] = []
        self._lock = threading.Lock()
        #: Acquires served from the free list.
        self.hits = 0
        #: Acquires that had to allocate a new slab.
        self.misses = 0
        #: Acquires larger than ``slab_size`` (one-off, never pooled).
        self.oversize = 0

    def acquire(self, length: int) -> PooledBuffer:
        """A :class:`PooledBuffer` of exactly ``length`` writable bytes."""
        if length > self.slab_size:
            with self._lock:
                self.oversize += 1
            # Too big for the slab class: serve a one-off allocation
            # that release() simply drops.
            return PooledBuffer(bytearray(length), length, None)
        with self._lock:
            if self._free:
                self.hits += 1
                slab = self._free.pop()
            else:
                self.misses += 1
                slab = bytearray(self.slab_size)
        return PooledBuffer(slab, length, self)

    def _put_back(self, slab: bytearray) -> None:
        with self._lock:
            if len(self._free) < self.max_slabs:
                self._free.append(slab)

    @property
    def free_slabs(self) -> int:
        with self._lock:
            return len(self._free)

    def stats(self) -> dict:
        """Counter snapshot (for telemetry events and tests)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "oversize": self.oversize,
                "free_slabs": len(self._free),
            }
