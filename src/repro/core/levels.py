"""Compression level tables.

"We assume that our adaptive compression algorithm can choose between a
fixed set of n compression levels. ... The individual compression levels
must be ordered by their respective time/compression ratio.  Compression
level 0 stands for no compression."  (Section III-A)

The default table reproduces the paper's four levels (Section III-B):

====== ======== ============================== =========================
Level  Name     Paper                          This library
====== ======== ============================== =========================
0      NO       no compression                 :class:`NullCodec`
1      LIGHT    QuickLZ, fastest setting       ``zlib`` level 1
2      MEDIUM   QuickLZ, better-ratio setting  ``zlib`` level 6
3      HEAVY    LZMA                           ``lzma`` preset 4
====== ======== ============================== =========================

(Preset 4 is the smallest preset that strictly out-compresses zlib-6 on
the MODERATE corpus, keeping the ladder ordered by time/compression
ratio as the paper requires.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..codecs.base import Codec
from ..codecs.lzma_codec import LzmaCodec
from ..codecs.null_codec import NullCodec
from ..codecs.zlib_codec import LightZlibCodec, MediumZlibCodec

#: Canonical names of the paper's four levels, by index.
PAPER_LEVEL_NAMES = ("NO", "LIGHT", "MEDIUM", "HEAVY")


@dataclass(frozen=True)
class CompressionLevel:
    """One rung of the ladder: an index, a display name and a codec."""

    index: int
    name: str
    codec: Codec

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.index}:{self.name}"


class CompressionLevelTable:
    """An ordered, immutable sequence of compression levels.

    Level 0 must be the null codec (the paper's "no compression"),
    because the decision algorithm's semantics — e.g. "without
    compression the application data rate is not affected by the
    compressibility of the data" (Section IV-B) — depend on it.
    """

    def __init__(self, levels: Sequence[CompressionLevel]) -> None:
        if not levels:
            raise ValueError("need at least one level")
        for i, level in enumerate(levels):
            if level.index != i:
                raise ValueError(
                    f"level at position {i} has index {level.index}; levels "
                    "must be contiguous from 0"
                )
        if levels[0].codec.codec_id != 0:
            raise ValueError("level 0 must use the null codec (no compression)")
        names = [lvl.name for lvl in levels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate level names: {names}")
        self._levels = tuple(levels)

    @classmethod
    def from_codecs(cls, codecs: Sequence[Codec], names: Sequence[str] | None = None) -> "CompressionLevelTable":
        if names is None:
            names = [c.name.upper() for c in codecs]
        if len(names) != len(codecs):
            raise ValueError("names and codecs must have the same length")
        return cls(
            [
                CompressionLevel(index=i, name=name, codec=codec)
                for i, (name, codec) in enumerate(zip(names, codecs))
            ]
        )

    def __len__(self) -> int:
        return len(self._levels)

    def __getitem__(self, index: int) -> CompressionLevel:
        return self._levels[index]

    def __iter__(self) -> Iterator[CompressionLevel]:
        return iter(self._levels)

    def codec(self, index: int) -> Codec:
        return self._levels[index].codec

    def name(self, index: int) -> str:
        return self._levels[index].name

    def index_of(self, name: str) -> int:
        for level in self._levels:
            if level.name == name:
                return level.index
        raise KeyError(f"no level named {name!r}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(lvl.name for lvl in self._levels)


def default_level_table() -> CompressionLevelTable:
    """The paper's NO / LIGHT / MEDIUM / HEAVY ladder."""
    return CompressionLevelTable.from_codecs(
        [NullCodec(), LightZlibCodec(), MediumZlibCodec(), LzmaCodec(preset=4)],
        names=list(PAPER_LEVEL_NAMES),
    )
