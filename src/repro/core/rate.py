"""Application data rate measurement.

The decision model's single input is "the amount of application data
which has been received from the application, (possibly) compressed,
and passed to the I/O layer during [the last t seconds]"
(Section III-A).  :class:`RateMeter` accumulates those bytes and turns
them into a rate at epoch boundaries; :class:`RateWindow` keeps a small
history for smoothing and traces.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional


@dataclass(frozen=True)
class EpochSample:
    """Bytes moved during one closed epoch."""

    start: float
    end: float
    nbytes: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def rate(self) -> float:
        """Bytes per second over the epoch (0 for an empty epoch)."""
        if self.duration <= 0:
            return 0.0
        return self.nbytes / self.duration


class RateMeter:
    """Accumulates application bytes within the current epoch."""

    def __init__(self, clock_start: float = 0.0) -> None:
        self._epoch_start = clock_start
        self._bytes = 0
        self.total_bytes = 0

    @property
    def epoch_start(self) -> float:
        return self._epoch_start

    @property
    def pending_bytes(self) -> int:
        return self._bytes

    def record(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        self._bytes += nbytes
        self.total_bytes += nbytes

    def close_epoch(self, now: float) -> EpochSample:
        """End the current epoch at ``now`` and start the next one."""
        if now < self._epoch_start:
            raise ValueError(
                f"clock went backwards: epoch started at {self._epoch_start}, "
                f"now is {now}"
            )
        sample = EpochSample(start=self._epoch_start, end=now, nbytes=self._bytes)
        self._epoch_start = now
        self._bytes = 0
        return sample


class RateWindow:
    """Fixed-size history of epoch samples with aggregate helpers."""

    def __init__(self, maxlen: int = 64) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._samples: Deque[EpochSample] = deque(maxlen=maxlen)

    def push(self, sample: EpochSample) -> None:
        self._samples.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def last(self) -> Optional[EpochSample]:
        return self._samples[-1] if self._samples else None

    def mean_rate(self) -> float:
        """Duration-weighted mean rate over the window."""
        total_bytes = sum(s.nbytes for s in self._samples)
        total_time = sum(s.duration for s in self._samples)
        if total_time <= 0:
            return 0.0
        return total_bytes / total_time

    def rates(self) -> list[float]:
        return [s.rate for s in self._samples]
