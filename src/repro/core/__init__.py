"""The paper's primary contribution: rate-based adaptive compression.

Algorithm 1 (:func:`get_next_compression_level` / :class:`DecisionModel`),
the epoch-driven :class:`AdaptiveController`, compression level tables,
and adaptive block-stream writers.
"""

from .backoff import BackoffTable
from .controller import AdaptiveController, EpochRecord
from .decision import (
    DEFAULT_ALPHA,
    DEFAULT_EPOCH_SECONDS,
    Decision,
    DecisionModel,
    DecisionState,
    get_next_compression_level,
)
from .levels import (
    PAPER_LEVEL_NAMES,
    CompressionLevel,
    CompressionLevelTable,
    default_level_table,
)
from .buffers import DEFAULT_SLAB_SIZE, BufferPool, PooledBuffer
from .flowview import FlowDecision, FlowView
from .pipeline import (
    ParallelBlockDecoder,
    ParallelBlockEncoder,
    make_block_decoder,
    make_block_encoder,
)
from .rate import EpochSample, RateMeter, RateWindow
from .recovery import ResyncBlockReader, ResyncFrameScanner, RetryPolicy, retry_call
from .stream import AdaptiveBlockWriter, StaticBlockWriter

__all__ = [
    "get_next_compression_level",
    "DecisionModel",
    "DecisionState",
    "Decision",
    "DEFAULT_ALPHA",
    "DEFAULT_EPOCH_SECONDS",
    "BackoffTable",
    "AdaptiveController",
    "EpochRecord",
    "FlowView",
    "FlowDecision",
    "RateMeter",
    "RateWindow",
    "EpochSample",
    "CompressionLevel",
    "CompressionLevelTable",
    "default_level_table",
    "PAPER_LEVEL_NAMES",
    "AdaptiveBlockWriter",
    "StaticBlockWriter",
    "ParallelBlockEncoder",
    "ParallelBlockDecoder",
    "make_block_encoder",
    "make_block_decoder",
    "BufferPool",
    "PooledBuffer",
    "DEFAULT_SLAB_SIZE",
    "ResyncBlockReader",
    "ResyncFrameScanner",
    "RetryPolicy",
    "retry_call",
]
