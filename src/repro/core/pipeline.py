"""Threaded block-compression pipeline with strict in-order framing.

The real-I/O writers historically compressed every 128 KB block on the
sender thread, so a HEAVY/LZMA level starved the socket between blocks.
CPython's ``zlib``/``bz2``/``lzma`` all release the GIL while they run,
which means plain threads recover genuine compression parallelism on
multi-core hosts — no processes, no serialization of the payloads.

:class:`ParallelBlockEncoder` fans blocks out to N worker threads and
reassembles the resulting frames *strictly in submission order*, so the
wire format is byte-identical to the serial
:class:`~repro.codecs.block.BlockWriter` for the same (data, codec)
sequence.  Design points:

* **Bounded submission window.**  At most ``max_in_flight`` blocks may
  be queued/compressing/awaiting emission at once; ``write_block``
  blocks (draining finished frames while it waits) when the window is
  full, so memory stays bounded and a slow sink back-pressures the
  producer exactly like the serial path.
* **Single producer, worker consumers.**  ``write_block``/``flush``/
  ``close`` must be called from one thread (the writer's thread); only
  that thread touches the sink, so sinks need not be thread-safe.
* **Errors surface at the call site.**  A worker exception is latched
  and re-raised from the next ``write_block``/``flush``/``close``; no
  further frames are written after an error so the failure is never
  silently papered over mid-stream.
* **Clean shutdown.**  ``close`` drains all in-flight blocks, then
  stops and joins every worker.  It is idempotent.

:class:`ParallelBlockDecoder` is the receive-side mirror: a read-ahead
**fetcher thread** pulls framed blocks off the source doing only the
cheap, inherently serial work (header parse + CRC), fans the payloads to
N decompress workers, and ``read_block`` reassembles plaintext strictly
in order — byte-identical to the serial
:class:`~repro.codecs.block.BlockReader`.  The same bounded-window,
error-latching and shutdown rules apply, mirrored for the read
direction:

* **Bounded read-ahead window.**  The fetcher stops at most
  ``max_in_flight`` frames ahead of the consumer, so a slow consumer
  back-pressures the fetcher and memory stays bounded.
* **Single consumer.**  ``read_block``/``close``/``abort`` must be
  called from one thread; only the fetcher touches the source.
* **Errors surface at the call site.**  A fetcher or worker exception
  is latched; ``read_block`` first drains every block *before* the
  failed one (exactly the prefix the serial reader would have
  returned), then re-raises.
* **Resync composition.**  With ``resync=True`` the fetcher runs the
  :class:`~repro.core.recovery.ResyncFrameScanner`, so workers never
  see damaged frames: corruption is skipped and counted during the
  fetch, and decoding continues.

Both pipelines accept a :class:`~repro.core.buffers.BufferPool` to
recycle frame/payload buffers instead of allocating per block.

Both pipelines execute their codec jobs on a :class:`CodecThreadPool`.
By default each pipeline owns a private pool sized by ``workers`` —
exactly the historical one-pipeline-per-thread-set shape.  Passing
``codec_pool=`` instead makes the pipeline one of many clients of a
*shared* pool: the :mod:`repro.serve` connection manager runs every
flow's compress and decompress jobs on one pool this way, so a daemon
with hundreds of flows still holds one bounded set of codec threads.
Ordering, windowing and error latching stay per-pipeline; only the
execution substrate is shared.

``backend="process"`` swaps the execution substrate for a
:class:`~repro.core.procpool.CodecProcessPool` — codec jobs run in
worker *processes* fed over shared-memory slabs, so even the GIL-bound
parts of the job (pure-Python codecs, framing glue) scale with cores.
The ordering, windowing, error-latching and byte-identity contracts
are unchanged: only where the codec call executes differs.  Worker
exceptions still re-raise at the call site (a worker-process *crash*
surfaces as :class:`~repro.core.procpool.WorkerCrashedError`), and on
platforms without shared-memory semantics the knob quietly degrades to
the thread backend (see :func:`~repro.core.procpool.resolve_backend`).

Telemetry keeps PR 1's zero-cost-when-idle property: queue-depth gauges
(:class:`~repro.telemetry.events.PipelineQueueDepth`), per-worker
compress/decompress spans (``pipeline.compress`` /
``pipeline.decompress``) and the close-time pool snapshot
(:class:`~repro.telemetry.events.BufferPoolStats`) are only constructed
when a bus subscriber is attached.
"""

from __future__ import annotations

import queue
import threading
from typing import BinaryIO, Iterator, List, Optional, Union

from ..codecs.base import Codec
from ..codecs.block import (
    FORMAT_VERSION,
    HEADER,
    HEADER_SIZE,
    MAGIC,
    BlockData,
    BlockHeader,
    BlockReader,
    BlockWriter,
    EncodedBlock,
    EncodedParts,
    decode_payload,
    encode_block,
    encode_block_parts,
)
from ..codecs.errors import CodecError
from ..codecs.registry import DEFAULT_REGISTRY, CodecRegistry
from .buffers import BufferPool
from .procpool import CodecProcessPool, _warn_fallback, resolve_backend
from .recovery import ResyncBlockReader, ResyncFrameScanner
from ..telemetry.events import BUS, BufferPoolStats, PipelineQueueDepth
from ..telemetry.spans import span

__all__ = [
    "CodecThreadPool",
    "ParallelBlockEncoder",
    "ParallelBlockDecoder",
    "make_block_encoder",
    "make_block_decoder",
    "DEFAULT_MAX_IN_FLIGHT_PER_WORKER",
]

#: Submission-window depth per worker: enough to keep every worker busy
#: while the producer refills, small enough to bound frame memory.
DEFAULT_MAX_IN_FLIGHT_PER_WORKER = 2

#: Sentinel telling a worker thread to exit.
_SHUTDOWN = None


class CodecThreadPool:
    """N worker threads executing codec jobs for any number of clients.

    The execution substrate both pipelines run on — and the piece that
    lets *many* of them share one set of threads: a pipeline (or a
    :mod:`repro.serve` flow) submits self-contained job thunks, the
    pool runs them on whichever worker frees up first, and the job
    itself delivers its result back to its owner (in-order reassembly,
    error latching and windowing stay with the owner, where the
    ordering requirements live).

    Jobs are ``fn(worker_index)`` callables and must not raise: each
    owner catches its own failures and latches them into its own error
    state.  A job that raises anyway (an owner bug) is counted in
    ``job_failures`` and recorded in ``last_internal_error`` — the
    worker thread survives, because one misbehaving flow must never
    take down the threads every other flow runs on.

    ``close`` drains already-queued jobs, then stops and joins every
    worker.  Idempotent; ``submit`` after close raises.
    """

    def __init__(self, workers: int, *, name: str = "repro-codec") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._jobs: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._closed = False
        #: Lifetime job counters (under ``_lock``); exposed via
        #: :meth:`stats` so shared-pool users can verify every flow
        #: really ran through this one pool.
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.job_failures = 0
        self.last_internal_error: Optional[BaseException] = None
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(i,),
                name=f"{name}-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def workers(self) -> int:
        return len(self._threads)

    @property
    def closed(self) -> bool:
        return self._closed

    def qsize(self) -> int:
        """Jobs queued but not yet picked up by a worker."""
        return self._jobs.qsize()

    @property
    def in_flight(self) -> int:
        """Jobs submitted but not yet finished (queued + running)."""
        with self._lock:
            return self.jobs_submitted - self.jobs_completed

    def submit(self, fn) -> None:
        """Queue ``fn(worker_index)`` for execution on some worker."""
        if self._closed:
            raise ValueError("codec pool is closed")
        with self._lock:
            self.jobs_submitted += 1
        self._jobs.put(fn)

    def _worker(self, index: int) -> None:
        while True:
            job = self._jobs.get()
            if job is _SHUTDOWN:
                return
            try:
                job(index)
            except BaseException as exc:  # noqa: BLE001 - owner bug, keep worker alive
                with self._lock:
                    self.job_failures += 1
                    self.last_internal_error = exc
            finally:
                with self._lock:
                    self.jobs_completed += 1

    def close(self) -> None:
        """Drain queued jobs, then stop and join the workers.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._jobs.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join()

    def stats(self) -> dict:
        """Counter snapshot (for telemetry events and tests)."""
        with self._lock:
            return {
                "workers": len(self._threads),
                "jobs_submitted": self.jobs_submitted,
                "jobs_completed": self.jobs_completed,
                "job_failures": self.job_failures,
                "queued": self._jobs.qsize(),
            }

    def __enter__(self) -> "CodecThreadPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ParallelBlockEncoder:
    """Compress framed blocks on worker threads, emit them in order.

    Drop-in replacement for :class:`~repro.codecs.block.BlockWriter`
    on the write side of the stream layer: same ``write_block(data,
    codec)`` call, same ``blocks_written``/``bytes_in``/``bytes_out``
    counters, same wire bytes — plus ``flush``/``close`` that drain the
    in-flight window.  See the module docstring for the concurrency
    contract.
    """

    def __init__(
        self,
        sink: BinaryIO,
        *,
        workers: int = 0,
        max_in_flight: Optional[int] = None,
        allow_stored_fallback: bool = True,
        source: str = "pipeline",
        pool: Optional[BufferPool] = None,
        codec_pool: Optional[CodecThreadPool] = None,
        backend: str = "thread",
    ) -> None:
        self._codec_pool: Optional[CodecThreadPool] = None
        self._proc_pool: Optional[CodecProcessPool] = None
        if codec_pool is None:
            if workers < 1:
                raise ValueError("workers must be >= 1")
            if resolve_backend(backend, source=source) == "process":
                self._proc_pool = CodecProcessPool(
                    workers, name="repro-pipeline-proc"
                )
            else:
                self._codec_pool = CodecThreadPool(workers, name="repro-pipeline")
            self._owns_pool = True
        else:
            # Shared substrate: this encoder is one of many clients of
            # ``codec_pool`` and must never stop or join it.  ``workers``
            # (when given) only sizes the default in-flight window.  A
            # shared pool may be either backend — the typed submit API
            # is what marks a process pool.
            if hasattr(codec_pool, "submit_compress"):
                self._proc_pool = codec_pool
            else:
                self._codec_pool = codec_pool
            self._owns_pool = False
            workers = workers if workers >= 1 else codec_pool.workers
        if max_in_flight is None:
            max_in_flight = DEFAULT_MAX_IN_FLIGHT_PER_WORKER * workers
        if self._owns_pool and max_in_flight < workers:
            raise ValueError("max_in_flight must be >= workers")
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self._sink = sink
        # Vectored sinks take (header, payload) parts and the frame is
        # never assembled; otherwise frames go out contiguous, carved
        # from the pool when one is provided.
        self._sink_writev = getattr(sink, "writev", None)
        self._pool = pool if self._sink_writev is None else None
        self._allow_stored_fallback = allow_stored_fallback
        self._source = source
        self._max_in_flight = max_in_flight
        self._cond = threading.Condition()
        #: seq -> EncodedBlock, filled by workers, drained in order by
        #: the producer thread (guarded by ``_cond``).
        self._results: dict = {}
        self._error: Optional[BaseException] = None
        self._next_submit = 0
        self._next_emit = 0
        self._closed = False
        #: After abort on a shared pool: jobs still queued there must
        #: drop (and release) their results instead of latching them.
        self._discard = False
        self.blocks_written = 0
        #: Uncompressed bytes *submitted* (counted at submission so the
        #: stream layer's accounting includes in-flight blocks).
        self.bytes_in = 0
        #: Framed bytes handed to the sink (counted at emission).
        self.bytes_out = 0

    # -- introspection ----------------------------------------------

    @property
    def workers(self) -> int:
        return self.codec_pool.workers

    @property
    def codec_pool(self):
        """The thread or process pool this encoder's jobs run on."""
        return self._codec_pool if self._codec_pool is not None else self._proc_pool

    @property
    def backend(self) -> str:
        """Which execution substrate compress jobs run on."""
        return "process" if self._proc_pool is not None else "thread"

    @property
    def in_flight(self) -> int:
        """Blocks submitted but not yet framed to the sink."""
        return self._next_submit - self._next_emit

    # -- worker side ------------------------------------------------

    def _run_job(self, index: int, seq: int, data: BlockData, codec: Codec) -> None:
        """One compress job, run on a pool worker thread."""
        try:
            if BUS.active:
                with span("pipeline.compress", worker=index, codec=codec.name):
                    block = self._encode(data, codec)
            else:
                block = self._encode(data, codec)
        except BaseException as exc:  # noqa: BLE001 - re-raised at call site
            with self._cond:
                if self._error is None:
                    self._error = exc
                self._cond.notify_all()
        else:
            with self._cond:
                if self._discard:
                    # Aborted while this job sat in a shared pool's
                    # queue: nobody will emit it, so return its buffer.
                    block.release()
                    return
                self._results[seq] = block
                self._cond.notify_all()

    def _encode(self, data: BlockData, codec: Codec):
        """One worker's encode step: parts for vectored sinks, else a
        (possibly pool-backed) contiguous frame."""
        if self._sink_writev is not None:
            return encode_block_parts(
                data, codec, allow_stored_fallback=self._allow_stored_fallback
            )
        return encode_block(
            data,
            codec,
            allow_stored_fallback=self._allow_stored_fallback,
            pool=self._pool,
        )

    def _assemble(self, header: BlockHeader, payload: BlockData):
        """Frame a process-worker result (compressed on another core;
        only the cheap header packing happens here).  The payload view
        is only valid during this call, so it is copied exactly once —
        into the outgoing frame (or a ``bytes`` for vectored sinks)."""
        plen = header.compressed_len
        if self._sink_writev is not None:
            header_bytes = HEADER.pack(
                MAGIC,
                FORMAT_VERSION,
                header.codec_id,
                header.flags,
                header.uncompressed_len,
                plen,
                header.crc32,
            )
            return EncodedParts(
                header=header, header_bytes=header_bytes, payload=bytes(payload)
            )
        buf = None
        if self._pool is not None:
            buf = self._pool.acquire(HEADER_SIZE + plen)
            frame = buf.view
        else:
            frame = bytearray(HEADER_SIZE + plen)
        HEADER.pack_into(
            frame,
            0,
            MAGIC,
            FORMAT_VERSION,
            header.codec_id,
            header.flags,
            header.uncompressed_len,
            plen,
            header.crc32,
        )
        frame[HEADER_SIZE:] = payload
        return EncodedBlock(frame=frame, header=header, buf=buf)

    def _proc_done(
        self,
        seq: int,
        exc: Optional[BaseException],
        header: Optional[BlockHeader],
        payload: Optional[BlockData],
    ) -> None:
        """Process-pool completion callback (runs on its collector)."""
        if exc is not None:
            with self._cond:
                if self._error is None:
                    self._error = exc
                self._cond.notify_all()
            return
        block = self._assemble(header, payload)
        with self._cond:
            if self._discard:
                block.release()
                return
            self._results[seq] = block
            self._cond.notify_all()

    # -- producer side ----------------------------------------------

    def _collect_ready(self, *, wait_for_head: bool) -> List[EncodedBlock]:
        """Pop the contiguous run of finished frames at the emit head.

        With ``wait_for_head`` the call blocks until the head frame (or
        an error) arrives.  A latched worker error is re-raised here —
        this is the single place exceptions cross back to the caller.
        """
        with self._cond:
            if wait_for_head:
                while (
                    self._error is None
                    and self._next_emit < self._next_submit
                    and self._next_emit not in self._results
                ):
                    self._cond.wait()
            if self._error is not None:
                raise self._error
            ready: List[EncodedBlock] = []
            while self._next_emit in self._results:
                ready.append(self._results.pop(self._next_emit))
                self._next_emit += 1
            return ready

    def _write_out(self, blocks: List[EncodedBlock]) -> None:
        """Write finished frames to the sink (producer thread, no lock)."""
        for block in blocks:
            if self._sink_writev is not None:
                self._sink_writev((block.header_bytes, block.payload))
            self.blocks_written += 1
            # Count before release(): a pool-backed frame's length is
            # unreadable once its view has gone back to the pool.
            self.bytes_out += block.frame_len
            if self._sink_writev is None:
                self._sink.write(block.frame)
                block.release()

    def write_block(self, data: BlockData, codec: Codec) -> None:
        """Queue ``data`` for compression with ``codec``.

        The frame is written to the sink asynchronously but strictly in
        submission order.  ``data`` must not be mutated until the block
        has been emitted (pass ``bytes`` or a view of an immutable
        buffer); the stream layer's detached-snapshot carving satisfies
        this by construction.
        """
        if self._closed:
            raise ValueError("encoder is closed")
        self._write_out(self._collect_ready(wait_for_head=False))
        while self._next_submit - self._next_emit >= self._max_in_flight:
            self._write_out(self._collect_ready(wait_for_head=True))
        seq = self._next_submit
        self._next_submit += 1
        self.bytes_in += data.nbytes if isinstance(data, memoryview) else len(data)
        if self._proc_pool is not None:
            self._proc_pool.submit_compress(
                data,
                codec,
                allow_stored_fallback=self._allow_stored_fallback,
                on_done=lambda exc, header, payload, seq=seq: self._proc_done(
                    seq, exc, header, payload
                ),
            )
        else:
            self._codec_pool.submit(
                lambda index, seq=seq, data=data, codec=codec: self._run_job(
                    index, seq, data, codec
                )
            )
        if BUS.active:
            pool = self.codec_pool
            BUS.publish(
                PipelineQueueDepth(
                    ts=BUS.now(),
                    source=self._source,
                    depth=pool.qsize(),
                    in_flight=self._next_submit - self._next_emit,
                    workers=pool.workers,
                )
            )

    def flush(self) -> None:
        """Block until every submitted block has been framed and written."""
        while self._next_emit < self._next_submit:
            self._write_out(self._collect_ready(wait_for_head=True))

    def close(self) -> None:
        """Drain in-flight blocks, then stop and join the workers.

        Idempotent.  A latched worker error is re-raised after the
        workers have been joined, so the thread pool never leaks even
        on the failure path.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.flush()
        finally:
            self._shutdown_workers()
            if self._pool is not None and BUS.active:
                BUS.publish(
                    BufferPoolStats(
                        ts=BUS.now(), source=self._source, **self._pool.stats()
                    )
                )

    def abort(self) -> None:
        """Stop and join the workers without emitting pending frames.

        The error-path counterpart of :meth:`close`: when the sink is
        already known to be broken (socket reset, receiver died),
        draining would either raise again or block on a dead peer.
        ``abort`` discards everything in flight, never touches the
        sink, and swallows the latched worker error — the caller is
        already propagating the original failure.  Idempotent, and safe
        after ``close``.
        """
        self._closed = True
        self._shutdown_workers(drain=False)
        with self._cond:
            self._next_emit = self._next_submit
            self._error = None

    def _shutdown_workers(self, *, drain: bool = True) -> None:
        # From here on any job still queued (possible when the pool is
        # shared, or on the owned-pool error path) drops its result.
        with self._cond:
            self._discard = True
        if self._owns_pool:
            if self._proc_pool is not None:
                # close() drains worker processes; the abort path must
                # never wait on them (the sink is already broken).
                if drain:
                    self._proc_pool.close()
                else:
                    self._proc_pool.terminate()
            else:
                self._codec_pool.close()
        with self._cond:
            for block in self._results.values():
                block.release()
            self._results.clear()

    def __enter__(self) -> "ParallelBlockEncoder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_block_encoder(
    sink: BinaryIO,
    *,
    workers: int = 1,
    allow_stored_fallback: bool = True,
    max_in_flight: Optional[int] = None,
    source: str = "pipeline",
    pool: Optional[BufferPool] = None,
    codec_pool: Optional[CodecThreadPool] = None,
    backend: str = "thread",
) -> Union[BlockWriter, ParallelBlockEncoder]:
    """Serial or parallel block encoder behind one interface.

    ``workers=1`` returns the plain serial
    :class:`~repro.codecs.block.BlockWriter` — byte-for-byte and
    code-path-for-code-path today's behaviour, with zero threading
    overhead.  ``workers>1`` returns a :class:`ParallelBlockEncoder`.
    ``pool`` recycles frame buffers on the parallel path; the serial
    writer hands frames back to its caller, so it never pools them.
    ``codec_pool`` routes compress jobs to a shared
    :class:`CodecThreadPool` (always the parallel class then, whatever
    ``workers`` says) instead of spawning threads owned by this encoder.
    ``backend="process"`` runs codec jobs on worker processes
    (:class:`~repro.core.procpool.CodecProcessPool`) — even at
    ``workers=1`` that returns the parallel class, because a single
    worker process still takes the codec off the producer's core.  The
    knob degrades to threads where the process backend is unavailable.
    """
    if codec_pool is not None:
        return ParallelBlockEncoder(
            sink,
            workers=workers if workers > 1 else 0,
            max_in_flight=max_in_flight,
            allow_stored_fallback=allow_stored_fallback,
            source=source,
            pool=pool,
            codec_pool=codec_pool,
        )
    if workers < 1:
        raise ValueError("workers must be >= 1")
    backend = resolve_backend(backend, source=source)
    if workers == 1 and backend == "thread":
        return BlockWriter(sink, allow_stored_fallback=allow_stored_fallback)
    return ParallelBlockEncoder(
        sink,
        workers=workers,
        max_in_flight=max_in_flight,
        allow_stored_fallback=allow_stored_fallback,
        source=source,
        pool=pool,
        backend=backend,
    )


class _SkippedFrame:
    """Placeholder result for a frame dropped by a resync-mode worker."""

    __slots__ = ("frame_len",)

    def __init__(self, frame_len: int) -> None:
        self.frame_len = frame_len


class ParallelBlockDecoder:
    """Decompress framed blocks on worker threads, yield them in order.

    Drop-in replacement for :class:`~repro.codecs.block.BlockReader`
    (and, with ``resync=True``, for
    :class:`~repro.core.recovery.ResyncBlockReader`): same
    ``read_block()``/iteration protocol, same
    ``blocks_read``/``bytes_in``/``bytes_out`` (and
    ``blocks_skipped``/``bytes_skipped``) counters, byte-identical
    output.  See the module docstring for the concurrency contract;
    call :meth:`close` (or use it as a context manager) so the threads
    are joined deterministically.

    In resync mode the fetcher runs the
    :class:`~repro.core.recovery.ResyncFrameScanner`, so only CRC-valid
    frames ever reach the workers.  The one semantic difference from
    the serial resync reader is deliberately tiny: a frame whose CRC
    matched but whose payload still fails to decompress (possible only
    via checksum collision or a codec-registry mismatch) is counted as
    one skipped block instead of triggering a byte-by-byte rescan —
    the fetcher has already read past it.
    """

    def __init__(
        self,
        source: BinaryIO,
        registry: CodecRegistry = DEFAULT_REGISTRY,
        *,
        workers: int = 0,
        max_in_flight: Optional[int] = None,
        max_block_len: Optional[int] = None,
        resync: bool = False,
        pool: Optional[BufferPool] = None,
        event_source: str = "decode-pipeline",
        codec_pool: Optional[CodecThreadPool] = None,
        backend: str = "thread",
    ) -> None:
        self._codec_pool: Optional[CodecThreadPool] = None
        self._proc_pool: Optional[CodecProcessPool] = None
        if codec_pool is None:
            if workers < 1:
                raise ValueError("workers must be >= 1")
            backend = resolve_backend(backend, source=event_source)
            if backend == "process" and registry is not DEFAULT_REGISTRY:
                # Worker processes resolve codecs from their own default
                # registry; a custom registry cannot follow them there.
                _warn_fallback(
                    event_source,
                    "custom codec registry cannot cross the process boundary",
                )
                backend = "thread"
            if backend == "process":
                self._proc_pool = CodecProcessPool(workers, name="repro-decode-proc")
            else:
                self._codec_pool = CodecThreadPool(workers, name="repro-decode")
            self._owns_pool = True
        else:
            # Shared substrate (see ParallelBlockEncoder): never stopped
            # or joined by this decoder.
            if hasattr(codec_pool, "submit_decompress"):
                self._proc_pool = codec_pool
            else:
                self._codec_pool = codec_pool
            self._owns_pool = False
            workers = workers if workers >= 1 else codec_pool.workers
        if max_in_flight is None:
            max_in_flight = DEFAULT_MAX_IN_FLIGHT_PER_WORKER * workers
        if self._owns_pool and max_in_flight < workers:
            raise ValueError("max_in_flight must be >= workers")
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self._registry = registry
        self._resync = resync
        self._pool = pool
        self._event_source = event_source
        self._scanner: Optional[ResyncFrameScanner] = None
        self._reader: Optional[BlockReader] = None
        if resync:
            self._scanner = ResyncFrameScanner(
                source, max_block_len=max_block_len, event_source=event_source
            )
        else:
            self._reader = BlockReader(
                source, registry, max_block_len=max_block_len, pool=pool
            )
        self._cond = threading.Condition()
        #: seq -> decoded bytes | _SkippedFrame, filled by workers,
        #: drained in order by the consumer (guarded by ``_cond``).
        self._results: dict = {}
        self._error: Optional[BaseException] = None
        #: Seq of the earliest failed frame — the consumer drains every
        #: block before it (the serial reader's good prefix), *then*
        #: raises.
        self._error_seq: Optional[int] = None
        #: Frames handed to workers so far / next seq the consumer emits.
        self._fetched = 0
        self._next_emit = 0
        self._fetch_done = False
        self._stop = False
        self._closed = False
        #: After abort/close: jobs still queued on a shared pool drop
        #: their frames instead of decoding and latching them.
        self._discard = False
        #: Read-ahead permits: the fetcher takes one per frame, the
        #: consumer returns it once the block is emitted (or skipped).
        self._window = threading.Semaphore(max_in_flight)
        self.blocks_read = 0
        self.bytes_out = 0
        #: Resync-mode frames dropped by workers post-CRC (see class
        #: docstring); folded into ``blocks_skipped``/``bytes_skipped``.
        self._worker_skipped_blocks = 0
        self._worker_skipped_bytes = 0
        self._fetcher = threading.Thread(
            target=self._fetch_loop, name="repro-decode-fetch", daemon=True
        )
        self._fetcher.start()

    # -- introspection ----------------------------------------------

    @property
    def workers(self) -> int:
        return self.codec_pool.workers

    @property
    def codec_pool(self):
        """The thread or process pool this decoder's jobs run on."""
        return self._codec_pool if self._codec_pool is not None else self._proc_pool

    @property
    def backend(self) -> str:
        """Which execution substrate decompress jobs run on."""
        return "process" if self._proc_pool is not None else "thread"

    @property
    def bytes_in(self) -> int:
        """Raw stream bytes consumed by the fetcher."""
        if self._scanner is not None:
            return self._scanner.bytes_in
        return self._reader.bytes_in

    @property
    def blocks_skipped(self) -> int:
        """Damaged regions skipped (resync mode; 0 in strict mode)."""
        scanned = self._scanner.blocks_skipped if self._scanner is not None else 0
        return scanned + self._worker_skipped_blocks

    @property
    def bytes_skipped(self) -> int:
        """Damaged/undecodable bytes discarded (resync mode)."""
        scanned = self._scanner.bytes_skipped if self._scanner is not None else 0
        return scanned + self._worker_skipped_bytes

    # -- fetcher side -----------------------------------------------

    def _fetch_one(self):
        """Next ``(header, payload buffer)`` off the source, or None.

        Strict mode delegates to :meth:`BlockReader.read_frame`
        (CRC verified there; corruption raises).  Resync mode scans for
        the next CRC-valid frame and detaches its payload from the scan
        buffer — into a pool slab when we have a pool — so the scanner
        can keep sliding while workers decompress.
        """
        if self._reader is not None:
            return self._reader.read_frame()
        header = self._scanner.next_frame()
        if header is None:
            return None
        view = self._scanner.payload_view()
        try:
            if self._pool is not None:
                payload = self._pool.acquire(view.nbytes)
                payload.view[:] = view
            else:
                payload = bytearray(view)
        finally:
            view.release()
        self._scanner.accept()
        return header, payload

    def _fetch_loop(self) -> None:
        while True:
            self._window.acquire()
            if self._stop:
                break
            try:
                frame = self._fetch_one()
            except BaseException as exc:  # noqa: BLE001 - re-raised at call site
                with self._cond:
                    self._latch_error(exc, self._fetched)
                    self._fetch_done = True
                    self._cond.notify_all()
                return
            if frame is None:
                break
            with self._cond:
                seq = self._fetched
                self._fetched += 1
            header, payload = frame
            try:
                if self._proc_pool is not None:
                    # submit_decompress stages the payload into a shared
                    # slab synchronously, so the fetch buffer can go
                    # back to the pool before the job even runs.
                    buffer = payload.view if hasattr(payload, "view") else payload
                    try:
                        self._proc_pool.submit_decompress(
                            header,
                            buffer,
                            check_crc=False,
                            on_done=lambda exc, data, seq=seq, header=header: (
                                self._proc_done(seq, header, exc, data)
                            ),
                        )
                    finally:
                        if hasattr(payload, "release"):
                            payload.release()
                else:
                    self._codec_pool.submit(
                        lambda index, seq=seq, header=header, payload=payload: (
                            self._run_job(index, seq, header, payload)
                        )
                    )
            except BaseException as exc:  # noqa: BLE001 - broken/closed pool
                with self._cond:
                    self._latch_error(exc, seq)
                    self._fetch_done = True
                    self._cond.notify_all()
                return
            if BUS.active:
                pool = self.codec_pool
                BUS.publish(
                    PipelineQueueDepth(
                        ts=BUS.now(),
                        source=self._event_source,
                        depth=pool.qsize(),
                        in_flight=seq + 1 - self._next_emit,
                        workers=pool.workers,
                    )
                )
        with self._cond:
            self._fetch_done = True
            self._cond.notify_all()

    # -- worker side ------------------------------------------------

    def _latch_error(self, exc: BaseException, seq: int) -> None:
        """Record the earliest-seq failure (caller holds ``_cond``)."""
        if self._error_seq is None or seq < self._error_seq:
            self._error = exc
            self._error_seq = seq

    def _decode_one(self, header, payload) -> bytes:
        buffer = payload.view if hasattr(payload, "view") else payload
        try:
            return decode_payload(header, buffer, self._registry, check_crc=False)
        finally:
            if hasattr(payload, "release"):
                payload.release()

    def _run_job(self, index: int, seq: int, header, payload) -> None:
        """One decompress job, run on a pool worker thread."""
        if self._discard:
            # Aborted while this job sat in a shared pool's queue:
            # don't burn a worker on a block nobody will read.
            if hasattr(payload, "release"):
                payload.release()
            return
        try:
            if BUS.active:
                codec_name = self._registry.get(header.codec_id).name
                with span(
                    "pipeline.decompress", worker=index, codec=codec_name
                ):
                    data = self._decode_one(header, payload)
            else:
                data = self._decode_one(header, payload)
        except CodecError as exc:
            if self._resync:
                # CRC already matched, so this is a post-checksum
                # decode failure: count the frame as skipped and
                # keep the stream going (see class docstring).
                marker = _SkippedFrame(HEADER_SIZE + header.compressed_len)
                with self._cond:
                    self._results[seq] = marker
                    self._cond.notify_all()
            else:
                with self._cond:
                    self._latch_error(exc, seq)
                    self._cond.notify_all()
        except BaseException as exc:  # noqa: BLE001 - re-raised at call site
            with self._cond:
                self._latch_error(exc, seq)
                self._cond.notify_all()
        else:
            with self._cond:
                if self._discard:
                    return
                self._results[seq] = data
                self._cond.notify_all()

    def _proc_done(
        self,
        seq: int,
        header,
        exc: Optional[BaseException],
        data: Optional[BlockData],
    ) -> None:
        """Process-pool completion callback (runs on its collector).

        Mirrors :meth:`_run_job`'s result handling, including the
        resync rule: a post-CRC codec failure becomes one skipped frame
        instead of a latched error.  ``data`` may be a shared-slab view
        valid only during this call, so it is materialised here.
        """
        if exc is not None:
            if self._resync and isinstance(exc, CodecError):
                marker = _SkippedFrame(HEADER_SIZE + header.compressed_len)
                with self._cond:
                    self._results[seq] = marker
                    self._cond.notify_all()
            else:
                with self._cond:
                    self._latch_error(exc, seq)
                    self._cond.notify_all()
            return
        block = data if isinstance(data, bytes) else bytes(data)
        with self._cond:
            if self._discard:
                return
            self._results[seq] = block
            self._cond.notify_all()

    # -- consumer side ----------------------------------------------

    def read_block(self) -> Optional[bytes]:
        """Next decoded block in stream order; ``None`` at end of stream.

        Blocks until the in-order head is decompressed.  A latched
        fetcher/worker error is raised only once every block before the
        failure point has been returned, matching the serial reader's
        "good prefix, then raise" behaviour.
        """
        while True:
            with self._cond:
                while True:
                    if self._next_emit in self._results:
                        item = self._results.pop(self._next_emit)
                        self._next_emit += 1
                        break
                    if self._error_seq is not None and self._next_emit >= self._error_seq:
                        raise self._error
                    if self._fetch_done and self._next_emit >= self._fetched:
                        return None
                    self._cond.wait()
            self._window.release()
            if isinstance(item, _SkippedFrame):
                self._worker_skipped_blocks += 1
                self._worker_skipped_bytes += item.frame_len
                continue
            self.blocks_read += 1
            self.bytes_out += len(item)
            return item

    def close(self) -> None:
        """Stop and join the fetcher and workers.  Idempotent.

        Unread blocks are discarded — the read-side mirror of the
        encoder's ``abort``: teardown never blocks on decoding data the
        caller has decided not to consume.  A latched error is *not*
        re-raised here; errors belong to :meth:`read_block`.
        """
        if self._closed:
            return
        self._closed = True
        self._shutdown_threads()
        if self._scanner is not None:
            self._scanner.finish()
        if self._pool is not None and BUS.active:
            BUS.publish(
                BufferPoolStats(
                    ts=BUS.now(), source=self._event_source, **self._pool.stats()
                )
            )

    def abort(self) -> None:
        """Teardown without telemetry: the error-path twin of :meth:`close`.

        Safe when the source is already known to be broken; never
        touches the bus so failure handling stays allocation-free.
        Drops any latched error — the caller is already propagating the
        original failure.
        """
        if self._closed:
            return
        self._closed = True
        self._shutdown_threads()
        with self._cond:
            self._error = None
            self._error_seq = None

    def _shutdown_threads(self) -> None:
        self._stop = True
        self._discard = True
        # Wake the fetcher if it is parked on a full window (one permit
        # is enough: it re-checks ``_stop`` right after acquiring).
        self._window.release()
        self._fetcher.join()
        if self._owns_pool:
            if self._proc_pool is not None:
                # The decoder's close() discards unread work by
                # contract, so the kill-now teardown is always right:
                # never decompress blocks nobody will read.
                self._proc_pool.terminate()
            else:
                self._codec_pool.close()
        with self._cond:
            self._results.clear()

    def __enter__(self) -> "ParallelBlockDecoder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __iter__(self) -> Iterator[bytes]:
        while True:
            block = self.read_block()
            if block is None:
                return
            yield block


def make_block_decoder(
    source: BinaryIO,
    registry: CodecRegistry = DEFAULT_REGISTRY,
    *,
    workers: int = 1,
    resync: bool = False,
    max_block_len: Optional[int] = None,
    max_in_flight: Optional[int] = None,
    pool: Optional[BufferPool] = None,
    event_source: str = "decode-pipeline",
    codec_pool: Optional[CodecThreadPool] = None,
    backend: str = "thread",
) -> Union[BlockReader, ResyncBlockReader, ParallelBlockDecoder]:
    """Serial or parallel block decoder behind one interface.

    ``workers=1`` returns the plain serial reader — the strict
    :class:`~repro.codecs.block.BlockReader` or, with ``resync=True``,
    :class:`~repro.core.recovery.ResyncBlockReader` — i.e. exactly
    today's code path with zero threading overhead.  ``workers>1``
    returns a :class:`ParallelBlockDecoder`.  ``codec_pool`` routes
    decompress jobs to a shared :class:`CodecThreadPool` (always the
    parallel class then) instead of threads owned by this decoder.
    ``backend="process"`` decompresses on worker processes (see
    :func:`make_block_encoder`); it returns the parallel class even at
    ``workers=1`` and degrades to threads when unavailable (or when a
    custom ``registry`` is in play — codecs cannot follow the jobs
    across the process boundary).
    """
    if codec_pool is not None:
        return ParallelBlockDecoder(
            source,
            registry,
            workers=workers if workers > 1 else 0,
            max_in_flight=max_in_flight,
            max_block_len=max_block_len,
            resync=resync,
            pool=pool,
            event_source=event_source,
            codec_pool=codec_pool,
        )
    if workers < 1:
        raise ValueError("workers must be >= 1")
    backend = resolve_backend(backend, source=event_source)
    if workers == 1 and backend == "thread":
        if resync:
            return ResyncBlockReader(source, registry, max_block_len=max_block_len)
        return BlockReader(source, registry, max_block_len=max_block_len, pool=pool)
    return ParallelBlockDecoder(
        source,
        registry,
        workers=workers,
        max_in_flight=max_in_flight,
        max_block_len=max_block_len,
        resync=resync,
        pool=pool,
        event_source=event_source,
        backend=backend,
    )
