"""Threaded block-compression pipeline with strict in-order framing.

The real-I/O writers historically compressed every 128 KB block on the
sender thread, so a HEAVY/LZMA level starved the socket between blocks.
CPython's ``zlib``/``bz2``/``lzma`` all release the GIL while they run,
which means plain threads recover genuine compression parallelism on
multi-core hosts — no processes, no serialization of the payloads.

:class:`ParallelBlockEncoder` fans blocks out to N worker threads and
reassembles the resulting frames *strictly in submission order*, so the
wire format is byte-identical to the serial
:class:`~repro.codecs.block.BlockWriter` for the same (data, codec)
sequence.  Design points:

* **Bounded submission window.**  At most ``max_in_flight`` blocks may
  be queued/compressing/awaiting emission at once; ``write_block``
  blocks (draining finished frames while it waits) when the window is
  full, so memory stays bounded and a slow sink back-pressures the
  producer exactly like the serial path.
* **Single producer, worker consumers.**  ``write_block``/``flush``/
  ``close`` must be called from one thread (the writer's thread); only
  that thread touches the sink, so sinks need not be thread-safe.
* **Errors surface at the call site.**  A worker exception is latched
  and re-raised from the next ``write_block``/``flush``/``close``; no
  further frames are written after an error so the failure is never
  silently papered over mid-stream.
* **Clean shutdown.**  ``close`` drains all in-flight blocks, then
  stops and joins every worker.  It is idempotent.

Telemetry keeps PR 1's zero-cost-when-idle property: queue-depth gauges
(:class:`~repro.telemetry.events.PipelineQueueDepth`) and per-worker
compress spans (``pipeline.compress``) are only constructed when a bus
subscriber is attached.
"""

from __future__ import annotations

import queue
import threading
from typing import BinaryIO, List, Optional, Union

from ..codecs.base import Codec
from ..codecs.block import BlockData, BlockWriter, EncodedBlock, encode_block
from ..telemetry.events import BUS, PipelineQueueDepth
from ..telemetry.spans import span

__all__ = ["ParallelBlockEncoder", "make_block_encoder", "DEFAULT_MAX_IN_FLIGHT_PER_WORKER"]

#: Submission-window depth per worker: enough to keep every worker busy
#: while the producer refills, small enough to bound frame memory.
DEFAULT_MAX_IN_FLIGHT_PER_WORKER = 2

#: Sentinel telling a worker thread to exit.
_SHUTDOWN = None


class ParallelBlockEncoder:
    """Compress framed blocks on worker threads, emit them in order.

    Drop-in replacement for :class:`~repro.codecs.block.BlockWriter`
    on the write side of the stream layer: same ``write_block(data,
    codec)`` call, same ``blocks_written``/``bytes_in``/``bytes_out``
    counters, same wire bytes — plus ``flush``/``close`` that drain the
    in-flight window.  See the module docstring for the concurrency
    contract.
    """

    def __init__(
        self,
        sink: BinaryIO,
        *,
        workers: int,
        max_in_flight: Optional[int] = None,
        allow_stored_fallback: bool = True,
        source: str = "pipeline",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_in_flight is None:
            max_in_flight = DEFAULT_MAX_IN_FLIGHT_PER_WORKER * workers
        if max_in_flight < workers:
            raise ValueError("max_in_flight must be >= workers")
        self._sink = sink
        self._allow_stored_fallback = allow_stored_fallback
        self._source = source
        self._max_in_flight = max_in_flight
        self._jobs: "queue.SimpleQueue" = queue.SimpleQueue()
        self._cond = threading.Condition()
        #: seq -> EncodedBlock, filled by workers, drained in order by
        #: the producer thread (guarded by ``_cond``).
        self._results: dict = {}
        self._error: Optional[BaseException] = None
        self._next_submit = 0
        self._next_emit = 0
        self._closed = False
        self.blocks_written = 0
        #: Uncompressed bytes *submitted* (counted at submission so the
        #: stream layer's accounting includes in-flight blocks).
        self.bytes_in = 0
        #: Framed bytes handed to the sink (counted at emission).
        self.bytes_out = 0
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(i,),
                name=f"repro-pipeline-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- introspection ----------------------------------------------

    @property
    def workers(self) -> int:
        return len(self._threads)

    @property
    def in_flight(self) -> int:
        """Blocks submitted but not yet framed to the sink."""
        return self._next_submit - self._next_emit

    # -- worker side ------------------------------------------------

    def _worker(self, index: int) -> None:
        while True:
            job = self._jobs.get()
            if job is _SHUTDOWN:
                return
            seq, data, codec = job
            try:
                if BUS.active:
                    with span("pipeline.compress", worker=index, codec=codec.name):
                        block = encode_block(
                            data,
                            codec,
                            allow_stored_fallback=self._allow_stored_fallback,
                        )
                else:
                    block = encode_block(
                        data,
                        codec,
                        allow_stored_fallback=self._allow_stored_fallback,
                    )
            except BaseException as exc:  # noqa: BLE001 - re-raised at call site
                with self._cond:
                    if self._error is None:
                        self._error = exc
                    self._cond.notify_all()
            else:
                with self._cond:
                    self._results[seq] = block
                    self._cond.notify_all()

    # -- producer side ----------------------------------------------

    def _collect_ready(self, *, wait_for_head: bool) -> List[EncodedBlock]:
        """Pop the contiguous run of finished frames at the emit head.

        With ``wait_for_head`` the call blocks until the head frame (or
        an error) arrives.  A latched worker error is re-raised here —
        this is the single place exceptions cross back to the caller.
        """
        with self._cond:
            if wait_for_head:
                while (
                    self._error is None
                    and self._next_emit < self._next_submit
                    and self._next_emit not in self._results
                ):
                    self._cond.wait()
            if self._error is not None:
                raise self._error
            ready: List[EncodedBlock] = []
            while self._next_emit in self._results:
                ready.append(self._results.pop(self._next_emit))
                self._next_emit += 1
            return ready

    def _write_out(self, blocks: List[EncodedBlock]) -> None:
        """Write finished frames to the sink (producer thread, no lock)."""
        for block in blocks:
            self._sink.write(block.frame)
            self.blocks_written += 1
            self.bytes_out += block.frame_len

    def write_block(self, data: BlockData, codec: Codec) -> None:
        """Queue ``data`` for compression with ``codec``.

        The frame is written to the sink asynchronously but strictly in
        submission order.  ``data`` must not be mutated until the block
        has been emitted (pass ``bytes`` or a view of an immutable
        buffer); the stream layer's detached-snapshot carving satisfies
        this by construction.
        """
        if self._closed:
            raise ValueError("encoder is closed")
        self._write_out(self._collect_ready(wait_for_head=False))
        while self._next_submit - self._next_emit >= self._max_in_flight:
            self._write_out(self._collect_ready(wait_for_head=True))
        seq = self._next_submit
        self._next_submit += 1
        self.bytes_in += data.nbytes if isinstance(data, memoryview) else len(data)
        self._jobs.put((seq, data, codec))
        if BUS.active:
            BUS.publish(
                PipelineQueueDepth(
                    ts=BUS.now(),
                    source=self._source,
                    depth=self._jobs.qsize(),
                    in_flight=self._next_submit - self._next_emit,
                    workers=len(self._threads),
                )
            )

    def flush(self) -> None:
        """Block until every submitted block has been framed and written."""
        while self._next_emit < self._next_submit:
            self._write_out(self._collect_ready(wait_for_head=True))

    def close(self) -> None:
        """Drain in-flight blocks, then stop and join the workers.

        Idempotent.  A latched worker error is re-raised after the
        workers have been joined, so the thread pool never leaks even
        on the failure path.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.flush()
        finally:
            self._shutdown_workers()

    def abort(self) -> None:
        """Stop and join the workers without emitting pending frames.

        The error-path counterpart of :meth:`close`: when the sink is
        already known to be broken (socket reset, receiver died),
        draining would either raise again or block on a dead peer.
        ``abort`` discards everything in flight, never touches the
        sink, and swallows the latched worker error — the caller is
        already propagating the original failure.  Idempotent, and safe
        after ``close``.
        """
        self._closed = True
        self._shutdown_workers()
        with self._cond:
            self._next_emit = self._next_submit
            self._error = None

    def _shutdown_workers(self) -> None:
        for _ in self._threads:
            self._jobs.put(_SHUTDOWN)
        for thread in self._threads:
            thread.join()
        self._results.clear()

    def __enter__(self) -> "ParallelBlockEncoder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_block_encoder(
    sink: BinaryIO,
    *,
    workers: int = 1,
    allow_stored_fallback: bool = True,
    max_in_flight: Optional[int] = None,
    source: str = "pipeline",
) -> Union[BlockWriter, ParallelBlockEncoder]:
    """Serial or parallel block encoder behind one interface.

    ``workers=1`` returns the plain serial
    :class:`~repro.codecs.block.BlockWriter` — byte-for-byte and
    code-path-for-code-path today's behaviour, with zero threading
    overhead.  ``workers>1`` returns a :class:`ParallelBlockEncoder`.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers == 1:
        return BlockWriter(sink, allow_stored_fallback=allow_stored_fallback)
    return ParallelBlockEncoder(
        sink,
        workers=workers,
        max_in_flight=max_in_flight,
        allow_stored_fallback=allow_stored_fallback,
        source=source,
    )
