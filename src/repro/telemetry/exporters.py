"""Exporters: JSONL event traces, Prometheus text, in-memory capture.

``JsonlExporter`` and ``InMemoryExporter`` subscribe to an event bus;
``PrometheusTextExporter`` renders a metrics registry on demand.  All
numeric output is sanitised so a trace is always *valid* JSON —
``inf``/``nan`` become ``null`` (the paper-adjacent lesson from
``codecs/stats.py``: a clock tie must never leak ``Infinity`` into a
serialised artifact).
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import IO, Any, Dict, List, Optional, Union

from .events import BUS, EventBus, TelemetryEvent
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "event_to_dict",
    "InMemoryExporter",
    "JsonlExporter",
    "PrometheusTextExporter",
]


def _sanitize(value: Any) -> Any:
    """Make a value JSON-safe: non-finite floats become ``None``."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


def event_to_dict(event: TelemetryEvent) -> Dict[str, Any]:
    """Event → plain dict with a ``type`` discriminator field."""
    out: Dict[str, Any] = {"type": type(event).__name__}
    for field in dataclasses.fields(event):
        out[field.name] = _sanitize(getattr(event, field.name))
    if "tags" in out and out["tags"]:
        out["tags"] = {str(k): _sanitize(v) for k, v in out["tags"]}
    return out


class _BusExporter:
    """Common attach/detach plumbing for event-consuming exporters."""

    def __init__(self) -> None:
        self._bus: Optional[EventBus] = None
        self._handle = None

    def attach(self, bus: Optional[EventBus] = None) -> "_BusExporter":
        if self._bus is not None:
            raise RuntimeError("exporter already attached")
        self._bus = bus if bus is not None else BUS
        self._handle = self._bus.subscribe(self.handle)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._handle)
            self._bus = None
            self._handle = None

    def handle(self, event: TelemetryEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def __enter__(self) -> "_BusExporter":
        return self.attach() if self._bus is None else self

    def __exit__(self, *exc_info) -> None:
        self.detach()


class InMemoryExporter(_BusExporter):
    """Collect events into a list — the test exporter."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[TelemetryEvent] = []

    def handle(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def of_type(self, event_type: type) -> List[TelemetryEvent]:
        return [e for e in self.events if isinstance(e, event_type)]

    def clear(self) -> None:
        self.events.clear()


class JsonlExporter(_BusExporter):
    """Write one JSON object per event to a file or file-like object."""

    def __init__(self, target: Union[str, IO[str]]) -> None:
        super().__init__()
        if isinstance(target, str):
            self._fp: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_fp = True
        else:
            self._fp = target
            self._owns_fp = False
        self.events_written = 0

    def handle(self, event: TelemetryEvent) -> None:
        line = json.dumps(
            event_to_dict(event), separators=(",", ":"), allow_nan=False
        )
        self._fp.write(line + "\n")
        self.events_written += 1

    def close(self) -> None:
        self.detach()
        self._fp.flush()
        if self._owns_fp:
            self._fp.close()

    def __exit__(self, *exc_info) -> None:
        self.close()


def _prom_name(name: str) -> str:
    """Metric name → Prometheus-legal name (dots/dashes → underscores)."""
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def _prom_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


class PrometheusTextExporter:
    """Render a :class:`MetricsRegistry` in Prometheus text format.

    Pull-style: call :meth:`render` whenever a scrape (or a test)
    wants the current state; nothing subscribes to the bus.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else REGISTRY

    def render(self) -> str:
        lines: List[str] = []
        for name, metric in self.registry:
            pname = _prom_name(name)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {_prom_number(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {_prom_number(metric.value)}")
            elif isinstance(metric, Histogram):
                lines.append(f"# TYPE {pname} histogram")
                cumulative = 0
                for bound, count in zip(metric.bounds, metric.counts):
                    cumulative += count
                    lines.append(
                        f'{pname}_bucket{{le="{_prom_number(bound)}"}} {cumulative}'
                    )
                lines.append(f'{pname}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{pname}_sum {_prom_number(metric.sum)}")
                lines.append(f"{pname}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")
