"""Exporters: JSONL event traces, Prometheus text, in-memory capture.

``JsonlExporter`` and ``InMemoryExporter`` subscribe to an event bus;
``PrometheusTextExporter`` renders a metrics registry on demand.  All
numeric output is sanitised so a trace is always *valid* JSON —
``inf``/``nan`` become ``null`` (the paper-adjacent lesson from
``codecs/stats.py``: a clock tie must never leak ``Infinity`` into a
serialised artifact).
"""

from __future__ import annotations

import dataclasses
import json
import math
import time
from typing import IO, Any, Dict, List, Optional, Union

from .events import BUS, EventBus, TelemetryEvent
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "event_to_dict",
    "InMemoryExporter",
    "JsonlExporter",
    "PrometheusTextExporter",
    "prom_label_escape",
    "prom_metric_name",
    "prom_number",
]


def _sanitize(value: Any) -> Any:
    """Make a value JSON-safe: non-finite floats become ``None``."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


def event_to_dict(event: TelemetryEvent) -> Dict[str, Any]:
    """Event → plain dict with a ``type`` discriminator field."""
    out: Dict[str, Any] = {"type": type(event).__name__}
    for field in dataclasses.fields(event):
        out[field.name] = _sanitize(getattr(event, field.name))
    if "tags" in out and out["tags"]:
        out["tags"] = {str(k): _sanitize(v) for k, v in out["tags"]}
    return out


class _BusExporter:
    """Common attach/detach plumbing for event-consuming exporters."""

    def __init__(self) -> None:
        self._bus: Optional[EventBus] = None
        self._handle = None

    def attach(self, bus: Optional[EventBus] = None) -> "_BusExporter":
        if self._bus is not None:
            raise RuntimeError("exporter already attached")
        self._bus = bus if bus is not None else BUS
        self._handle = self._bus.subscribe(self.handle)
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self._handle)
            self._bus = None
            self._handle = None

    def handle(self, event: TelemetryEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def __enter__(self) -> "_BusExporter":
        return self.attach() if self._bus is None else self

    def __exit__(self, *exc_info) -> None:
        self.detach()


class InMemoryExporter(_BusExporter):
    """Collect events into a list — the test exporter."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[TelemetryEvent] = []

    def handle(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def of_type(self, event_type: type) -> List[TelemetryEvent]:
        return [e for e in self.events if isinstance(e, event_type)]

    def clear(self) -> None:
        self.events.clear()


class JsonlExporter(_BusExporter):
    """Write one JSON object per event to a file or file-like object.

    Flushing is *bounded*, not per-event and not only-at-close: the
    buffer is pushed to the OS every ``flush_every_events`` events or
    whenever ``flush_every_seconds`` have elapsed since the last flush,
    whichever comes first.  A daemon that crashes therefore loses at
    most one small tail of the trace — and the tail is exactly what a
    postmortem needs.  Set ``flush_every_events=1`` for write-through,
    or ``0`` to disable count-based flushing (time-based still applies).
    """

    def __init__(
        self,
        target: Union[str, IO[str]],
        *,
        flush_every_events: int = 64,
        flush_every_seconds: float = 1.0,
    ) -> None:
        super().__init__()
        if flush_every_events < 0:
            raise ValueError("flush_every_events must be >= 0")
        if flush_every_seconds <= 0:
            raise ValueError("flush_every_seconds must be positive")
        if isinstance(target, str):
            self._fp: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_fp = True
        else:
            self._fp = target
            self._owns_fp = False
        self.flush_every_events = flush_every_events
        self.flush_every_seconds = flush_every_seconds
        self.events_written = 0
        self.flushes = 0
        self._unflushed = 0
        self._last_flush = time.monotonic()

    def handle(self, event: TelemetryEvent) -> None:
        line = json.dumps(
            event_to_dict(event), separators=(",", ":"), allow_nan=False
        )
        self._fp.write(line + "\n")
        self.events_written += 1
        self._unflushed += 1
        now = time.monotonic()
        if (
            self.flush_every_events and self._unflushed >= self.flush_every_events
        ) or now - self._last_flush >= self.flush_every_seconds:
            self.flush(now)

    def flush(self, now: Optional[float] = None) -> None:
        """Push buffered lines to the OS (crash-tail bound)."""
        self._fp.flush()
        self.flushes += 1
        self._unflushed = 0
        self._last_flush = now if now is not None else time.monotonic()

    def close(self) -> None:
        self.detach()
        self._fp.flush()
        if self._owns_fp:
            self._fp.close()

    def __exit__(self, *exc_info) -> None:
        self.close()


def prom_metric_name(name: str) -> str:
    """Metric name → Prometheus-legal name.

    Dots/dashes become underscores and a leading digit gets an
    underscore prefix — the exposition format requires names to match
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``, and a registry name like
    ``"4k.blocks"`` must not produce output a scraper rejects.
    """
    sanitized = "".join(c if (c.isalnum() or c == "_") else "_" for c in name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def prom_number(value: float) -> str:
    """Render a sample value per the exposition format.

    Non-finite values have reserved spellings — ``+Inf``/``-Inf``/
    ``NaN`` — that a Prometheus parser accepts; ``repr(inf)`` (the old
    behaviour for NaN's cousin cases) does not.
    """
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def prom_label_escape(value: object) -> str:
    """Escape a label value per the exposition format.

    Inside ``label="..."`` a backslash, a double quote and a newline
    must be written ``\\\\``, ``\\"`` and ``\\n`` respectively — a peer
    string like ``"bad\\nhost"`` must never split a sample line in two.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


# Backwards-compatible private aliases (pre-operability-PR names).
_prom_name = prom_metric_name
_prom_number = prom_number


class PrometheusTextExporter:
    """Render a :class:`MetricsRegistry` in Prometheus text format.

    Pull-style: call :meth:`render` whenever a scrape (or a test)
    wants the current state; nothing subscribes to the bus.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else REGISTRY

    def render(self) -> str:
        lines: List[str] = []
        for name, metric in self.registry:
            pname = prom_metric_name(name)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {pname} counter")
                lines.append(f"{pname} {prom_number(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {pname} gauge")
                lines.append(f"{pname} {prom_number(metric.value)}")
            elif isinstance(metric, Histogram):
                lines.append(f"# TYPE {pname} histogram")
                cumulative = 0
                for bound, count in zip(metric.bounds, metric.counts):
                    cumulative += count
                    lines.append(
                        f'{pname}_bucket{{le="{prom_number(bound)}"}} {cumulative}'
                    )
                lines.append(f'{pname}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{pname}_sum {prom_number(metric.sum)}")
                lines.append(f"{pname}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")
