"""Opt-in wiring: turn raw events into metrics and exported traces.

Nothing in :mod:`repro` records telemetry until something here (or a
hand-rolled subscriber) attaches to the bus — the instrumented hooks in
``core``, ``codecs``, ``io``, ``nephele`` and ``sim`` all no-op while
``BUS.active`` is false.

The two entry points:

* :func:`install_metric_subscribers` — subscribe the event→metric
  bridge (counters, byte totals, latency histograms) to a bus.
* :func:`instrumented` — context manager that wires everything for one
  run: metric bridge, optional JSONL trace file, optional in-memory
  capture, and clock override; detaches and restores on exit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from .events import (
    BUS,
    BackoffUpdated,
    BlockCompressed,
    BlockSkipped,
    BufferPoolStats,
    ConfigReloaded,
    EpochClosed,
    EventBus,
    FaultInjected,
    FlowAccepted,
    FlowClosed,
    FlowRejected,
    LevelSwitched,
    PipelineQueueDepth,
    ServeInternalError,
    SpanClosed,
    TransferProgress,
)
from .exporters import InMemoryExporter, JsonlExporter, PrometheusTextExporter
from .metrics import REGISTRY, MetricsRegistry

__all__ = ["install_metric_subscribers", "instrumented", "TelemetrySession"]

#: Bucket edges for application/wire rates in MB/s.
RATE_MBPS_BUCKETS = (1, 2, 5, 10, 20, 40, 60, 80, 100, 150, 200, 400, 800)


def install_metric_subscribers(
    bus: Optional[EventBus] = None,
    registry: Optional[MetricsRegistry] = None,
) -> List[object]:
    """Bridge events into ``registry``; returns unsubscribe handles."""
    bus = bus if bus is not None else BUS
    registry = registry if registry is not None else REGISTRY

    def on_epoch(event: EpochClosed) -> None:
        registry.counter("epochs.closed").inc()
        registry.counter("epochs.app_bytes").inc(event.app_bytes)
        registry.histogram("epochs.app_rate_mbps", RATE_MBPS_BUCKETS).observe(
            event.app_rate / 1e6
        )
        registry.gauge("level.current").set(event.level)

    def on_switch(event: LevelSwitched) -> None:
        registry.counter("level.switches").inc()
        registry.gauge("level.current").set(event.level_after)

    def on_block(event: BlockCompressed) -> None:
        registry.counter(f"blocks.{event.direction}").inc()
        registry.counter(f"blocks.{event.direction}.bytes_in").inc(
            event.uncompressed_bytes
            if event.direction == "compress"
            else event.compressed_bytes
        )
        registry.histogram(f"codec.{event.direction}.seconds").observe(event.seconds)

    def on_progress(event: TransferProgress) -> None:
        registry.gauge(f"transfer.{event.source}.bytes_in").set(event.bytes_in)
        registry.gauge(f"transfer.{event.source}.bytes_out").set(event.bytes_out)
        registry.gauge(f"transfer.{event.source}.ratio").set(event.ratio)
        if event.done:
            registry.counter(f"transfer.{event.source}.completed").inc()

    def on_backoff(event: BackoffUpdated) -> None:
        registry.counter(f"backoff.{event.action}").inc()

    def on_queue_depth(event: PipelineQueueDepth) -> None:
        registry.gauge(f"{event.source}.queue_depth").set(event.depth)
        registry.gauge(f"{event.source}.in_flight").set(event.in_flight)
        registry.gauge(f"{event.source}.workers").set(event.workers)

    def on_span(event: SpanClosed) -> None:
        registry.histogram(f"span.{event.name}.seconds").observe(event.seconds)

    def on_fault(event: FaultInjected) -> None:
        registry.counter(f"faults.{event.kind}").inc()

    def on_skip(event: BlockSkipped) -> None:
        registry.counter("resync.blocks_skipped").inc()
        registry.counter("resync.bytes_skipped").inc(event.bytes_skipped)

    def on_pool(event: BufferPoolStats) -> None:
        registry.counter(f"{event.source}.pool.hits").inc(event.hits)
        registry.counter(f"{event.source}.pool.misses").inc(event.misses)
        registry.counter(f"{event.source}.pool.oversize").inc(event.oversize)
        registry.gauge(f"{event.source}.pool.free_slabs").set(event.free_slabs)

    def on_flow_accepted(event: FlowAccepted) -> None:
        registry.counter(f"{event.source}.flows.accepted").inc()
        registry.gauge(f"{event.source}.flows.active").set(event.active_flows)

    def on_flow_closed(event: FlowClosed) -> None:
        registry.counter(f"{event.source}.flows.closed").inc()
        if not event.ok:
            registry.counter(f"{event.source}.flows.failed").inc()
        registry.gauge(f"{event.source}.flows.active").set(event.active_flows)
        registry.counter(f"{event.source}.flows.app_bytes").inc(event.app_bytes)
        if event.seconds > 0:
            registry.histogram(
                f"{event.source}.flow.rate_mbps", RATE_MBPS_BUCKETS
            ).observe(event.app_bytes / event.seconds / 1e6)

    def on_flow_rejected(event: FlowRejected) -> None:
        registry.counter(f"{event.source}.flows.rejected").inc()

    def on_internal_error(event: ServeInternalError) -> None:
        registry.counter(f"{event.source}.internal_errors").inc()
        registry.counter(f"{event.source}.internal_errors.{event.site}").inc()

    def on_reload(event: ConfigReloaded) -> None:
        registry.counter(f"{event.source}.reloads").inc()
        registry.gauge(f"{event.source}.reload.flows_updated").set(
            event.flows_updated
        )

    return [
        bus.subscribe(on_epoch, EpochClosed),
        bus.subscribe(on_switch, LevelSwitched),
        bus.subscribe(on_block, BlockCompressed),
        bus.subscribe(on_progress, TransferProgress),
        bus.subscribe(on_backoff, BackoffUpdated),
        bus.subscribe(on_queue_depth, PipelineQueueDepth),
        bus.subscribe(on_span, SpanClosed),
        bus.subscribe(on_fault, FaultInjected),
        bus.subscribe(on_skip, BlockSkipped),
        bus.subscribe(on_pool, BufferPoolStats),
        bus.subscribe(on_flow_accepted, FlowAccepted),
        bus.subscribe(on_flow_closed, FlowClosed),
        bus.subscribe(on_flow_rejected, FlowRejected),
        bus.subscribe(on_internal_error, ServeInternalError),
        bus.subscribe(on_reload, ConfigReloaded),
    ]


class TelemetrySession:
    """Handle yielded by :func:`instrumented`."""

    def __init__(
        self,
        bus: EventBus,
        registry: MetricsRegistry,
        memory: Optional[InMemoryExporter],
        jsonl: Optional[JsonlExporter],
    ) -> None:
        self.bus = bus
        self.registry = registry
        self.memory = memory
        self.jsonl = jsonl

    def prometheus_text(self) -> str:
        return PrometheusTextExporter(self.registry).render()

    def metrics_snapshot(self) -> dict:
        return self.registry.snapshot()


@contextmanager
def instrumented(
    jsonl_path: Optional[str] = None,
    *,
    bus: Optional[EventBus] = None,
    registry: Optional[MetricsRegistry] = None,
    capture_events: bool = False,
    clock: Optional[Callable[[], float]] = None,
) -> Iterator[TelemetrySession]:
    """Enable telemetry for the duration of a ``with`` block.

    Attaches the metric bridge to the (default) bus, optionally a JSONL
    trace exporter and an in-memory capture, optionally overrides the
    bus clock, and undoes all of it on exit — including restoring the
    previous clock, so nested/sequential sessions compose.
    """
    bus = bus if bus is not None else BUS
    registry = registry if registry is not None else MetricsRegistry()
    previous_clock = bus.clock
    if clock is not None:
        bus.clock = clock

    handles = install_metric_subscribers(bus, registry)
    memory = InMemoryExporter() if capture_events else None
    if memory is not None:
        memory.attach(bus)
    jsonl = JsonlExporter(jsonl_path) if jsonl_path is not None else None
    if jsonl is not None:
        jsonl.attach(bus)

    try:
        yield TelemetrySession(bus, registry, memory, jsonl)
    finally:
        if jsonl is not None:
            jsonl.close()
        if memory is not None:
            memory.detach()
        for handle in handles:
            bus.unsubscribe(handle)
        bus.clock = previous_clock
