"""repro.telemetry — metrics, tracing and event-bus observability.

Motivated directly by the paper: Section II shows that metrics
*displayed inside* a VM are unreliable, which is why Algorithm 1 trusts
only the application data rate.  This package is the reproduction's own
measurement layer — it records what the controller, codecs, transports
and simulator actually did, with one event schema across real and
simulated runs.

Layers (each its own module):

* :mod:`~repro.telemetry.events` — typed events + synchronous bus.
  ``BUS.active`` is the global opt-in flag; every instrumented hook in
  the codebase is free when it is ``False``.
* :mod:`~repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms (bounded memory, p50/p90/p99).
* :mod:`~repro.telemetry.spans` — ``with span("compress", level=2):``
  tracing with a pluggable clock (the simulator drives virtual time).
* :mod:`~repro.telemetry.exporters` — JSONL traces, Prometheus text,
  in-memory capture.
* :mod:`~repro.telemetry.instrument` — ``instrumented(...)`` one-call
  wiring for a run.
* :mod:`~repro.telemetry.report` — run-report rendering for the
  ``repro-telemetry`` CLI.
"""

from .events import (
    BUS,
    BackoffUpdated,
    BlockCompressed,
    BlockSkipped,
    ConfigReloaded,
    EpochClosed,
    EventBus,
    FaultInjected,
    FleetRebalanced,
    FlowAccepted,
    FlowClosed,
    FlowRates,
    FlowRejected,
    LevelSwitched,
    PipelineQueueDepth,
    ServeInternalError,
    SpanClosed,
    TelemetryEvent,
    TransferProgress,
    enabled,
    get_bus,
)
from .exporters import (
    InMemoryExporter,
    JsonlExporter,
    PrometheusTextExporter,
    event_to_dict,
    prom_label_escape,
    prom_metric_name,
    prom_number,
)
from .instrument import TelemetrySession, install_metric_subscribers, instrumented
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from .report import TraceSummary, load_trace, render_report, summarize
from .spans import current_depth, span

__all__ = [
    # events
    "TelemetryEvent",
    "EpochClosed",
    "LevelSwitched",
    "BlockCompressed",
    "TransferProgress",
    "PipelineQueueDepth",
    "BackoffUpdated",
    "FaultInjected",
    "BlockSkipped",
    "FlowAccepted",
    "FlowClosed",
    "FlowRejected",
    "FlowRates",
    "FleetRebalanced",
    "ServeInternalError",
    "ConfigReloaded",
    "SpanClosed",
    "EventBus",
    "BUS",
    "get_bus",
    "enabled",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    # spans
    "span",
    "current_depth",
    # exporters
    "InMemoryExporter",
    "JsonlExporter",
    "PrometheusTextExporter",
    "event_to_dict",
    "prom_label_escape",
    "prom_metric_name",
    "prom_number",
    # instrument
    "instrumented",
    "install_metric_subscribers",
    "TelemetrySession",
    # report
    "TraceSummary",
    "load_trace",
    "summarize",
    "render_report",
]
