"""Context-manager tracing spans.

    with span("compress", level=2):
        ...

On exit a :class:`~repro.telemetry.events.SpanClosed` event is
published with the span's start/end (bus clock — virtual time under
the simulator) and its nesting depth.  When no subscriber is attached
the span body runs with no clock reads, no allocations beyond the span
object itself, and no event construction.

Nesting is tracked per thread; concurrent senders each get their own
depth counter.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from .events import BUS, EventBus, SpanClosed

__all__ = ["span", "current_depth"]

_local = threading.local()


def current_depth() -> int:
    """Depth of the innermost open span on this thread (0 = none)."""
    return getattr(_local, "depth", 0)


class span:
    """Time a code region and publish it as a ``SpanClosed`` event.

    Parameters are the span name plus arbitrary keyword tags recorded
    (sorted) on the event.  Pass ``bus=`` to target a non-default bus,
    e.g. in tests.
    """

    __slots__ = ("name", "tags", "bus", "start", "_depth")

    def __init__(self, name: str, bus: Optional[EventBus] = None, **tags: Any) -> None:
        self.name = name
        self.tags = tags
        self.bus = bus if bus is not None else BUS
        self.start: Optional[float] = None
        self._depth = 0

    def __enter__(self) -> "span":
        bus = self.bus
        if not bus.active:
            self.start = None
            return self
        self._depth = getattr(_local, "depth", 0)
        _local.depth = self._depth + 1
        self.start = bus.now()
        return self

    def __exit__(self, *exc_info) -> None:
        if self.start is None:
            return
        bus = self.bus
        end = bus.now()
        _local.depth = self._depth
        bus.publish(
            SpanClosed(
                ts=end,
                name=self.name,
                start=self.start,
                end=end,
                depth=self._depth,
                tags=tuple(sorted(self.tags.items())),
            )
        )
