"""Typed telemetry events and the synchronous event bus.

The bus is the single funnel every instrumented code path publishes
into.  Design constraints (see docs/telemetry.md):

* **Zero cost when idle.**  Emitting sites guard on ``BUS.active`` (a
  plain attribute read) and construct the event object only inside the
  guard, so a run with no subscribers allocates nothing per event.
  ``EventBus.published`` counts constructed-and-delivered events, which
  is how tests assert the fast path really was taken.
* **Synchronous, ordered delivery.**  ``publish`` invokes subscribers
  in registration order before it returns; events arrive in exactly
  the order the instrumented code emitted them.  There is no queue and
  no thread — an exporter that needs buffering does its own.
* **One pluggable clock.**  ``EventBus.clock`` defaults to
  ``time.perf_counter``; the simulator rebinds it to virtual time (via
  :meth:`repro.sim.engine.Environment.bind_telemetry`) so simulated
  and real runs produce traces with one schema and comparable
  timestamps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple, Type

__all__ = [
    "TelemetryEvent",
    "EpochClosed",
    "LevelSwitched",
    "BlockCompressed",
    "TransferProgress",
    "PipelineQueueDepth",
    "BufferPoolStats",
    "CodecBackendFallback",
    "BackoffUpdated",
    "FaultInjected",
    "BlockSkipped",
    "FlowAccepted",
    "FlowClosed",
    "FlowRejected",
    "FlowRates",
    "FleetRebalanced",
    "ServeInternalError",
    "ConfigReloaded",
    "SpanClosed",
    "EventBus",
    "BUS",
    "get_bus",
    "enabled",
]


@dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """Base class: every event carries a clock timestamp ``ts``."""

    ts: float


@dataclass(frozen=True, slots=True)
class EpochClosed(TelemetryEvent):
    """A controller/scheme epoch ended and a decision was taken.

    Emitted by :class:`repro.core.controller.AdaptiveController` on the
    real I/O path (``source="controller"``) and by
    :class:`repro.sim.transfer.TransferSim` in the simulator
    (``source="sim"``) — same schema, different clock domain.
    """

    source: str
    epoch: int
    start: float
    end: float
    app_bytes: float
    app_rate: float
    level: int


@dataclass(frozen=True, slots=True)
class LevelSwitched(TelemetryEvent):
    """The compression level actually changed at an epoch boundary."""

    source: str
    epoch: int
    level_before: int
    level_after: int


@dataclass(frozen=True, slots=True)
class BlockCompressed(TelemetryEvent):
    """One 128 KB-class block went through a codec.

    ``direction`` is ``"compress"`` or ``"decompress"``; ``seconds`` is
    measured with the bus clock (zero under a virtual clock, which is
    fine — the simulator prices codecs analytically, not by running
    them).
    """

    codec: str
    direction: str
    uncompressed_bytes: int
    compressed_bytes: int
    seconds: float


@dataclass(frozen=True, slots=True)
class TransferProgress(TelemetryEvent):
    """Cumulative bytes through a transport (stream, socket, channel)."""

    source: str
    bytes_in: int
    bytes_out: int
    ratio: float
    done: bool = False


@dataclass(frozen=True, slots=True)
class PipelineQueueDepth(TelemetryEvent):
    """Parallel block-encoder queue state, sampled at submission time.

    ``depth`` is the number of blocks waiting for a worker; ``in_flight``
    counts everything submitted but not yet framed to the sink (queued +
    compressing + completed-but-awaiting-in-order-emission).
    """

    source: str
    depth: int
    in_flight: int
    workers: int


@dataclass(frozen=True, slots=True)
class BufferPoolStats(TelemetryEvent):
    """Counter snapshot of a :class:`~repro.core.buffers.BufferPool`.

    Published once per pipeline lifetime (at close) by the pipelines
    that own a pool — the pool itself never touches the bus, keeping
    ``acquire``/``release`` branch-free on the hot path.
    """

    source: str
    hits: int
    misses: int
    oversize: int
    free_slabs: int


@dataclass(frozen=True, slots=True)
class CodecBackendFallback(TelemetryEvent):
    """A requested codec backend was unavailable and got substituted.

    Emitted (at most once per process per reason) when
    ``backend="process"`` was requested but
    ``multiprocessing.shared_memory`` or a usable start method is
    missing, so the pipeline silently ran threads instead.  ``reason``
    is a short human-readable cause string.
    """

    source: str
    requested: str
    resolved: str
    reason: str


@dataclass(frozen=True, slots=True)
class BackoffUpdated(TelemetryEvent):
    """Algorithm 1 rewarded or punished a level's backoff exponent."""

    level: int
    exponent: int
    action: str  # "reward" | "punish"


@dataclass(frozen=True, slots=True)
class FaultInjected(TelemetryEvent):
    """A fault-injecting stream wrapper fired one planned fault.

    Emitted by :mod:`repro.io.faults` wrappers; ``side`` is
    ``"write"`` or ``"read"``, ``kind`` names the fault
    (``"bitflip"``/``"truncate"``/``"stall"``/``"reset"``), ``offset``
    is the absolute stream byte offset the fault was anchored to.
    """

    source: str
    side: str
    kind: str
    offset: int


@dataclass(frozen=True, slots=True)
class BlockSkipped(TelemetryEvent):
    """Resync-mode block decoding gave up on one damaged region.

    Emitted by :class:`repro.core.recovery.ResyncBlockReader` once per
    contiguous run of undecodable bytes; ``bytes_skipped`` is that
    region's size and the ``total_*`` fields are the reader's running
    counters after the skip.
    """

    source: str
    bytes_skipped: int
    total_blocks_skipped: int
    total_bytes_skipped: int


@dataclass(frozen=True, slots=True)
class FlowAccepted(TelemetryEvent):
    """The transfer service admitted one client flow.

    Emitted by :class:`repro.serve.TransferServer` when a connection
    passes admission control; ``flow_id`` is unique for the daemon's
    lifetime and ``active_flows`` counts flows open *after* this one.
    """

    source: str
    flow_id: int
    peer: str
    mode: str
    active_flows: int


@dataclass(frozen=True, slots=True)
class FlowClosed(TelemetryEvent):
    """One admitted flow finished (cleanly or not).

    ``ok`` is False for protocol errors, codec failures and drain
    deadline kills; ``reason`` then names the cause.  ``app_bytes``
    counts decoded plaintext, ``bytes_in``/``bytes_out`` the wire bytes
    each way, so per-flow rates and achieved compression ratios can be
    derived without extra events.
    """

    source: str
    flow_id: int
    mode: str
    ok: bool
    reason: str
    bytes_in: int
    bytes_out: int
    app_bytes: int
    blocks_in: int
    blocks_out: int
    seconds: float
    active_flows: int


@dataclass(frozen=True, slots=True)
class FlowRejected(TelemetryEvent):
    """Admission control turned a connection away.

    ``reason`` is ``"max-flows"`` for capacity rejections and
    ``"draining"`` once shutdown has begun; ``active_flows`` is the
    load that triggered the rejection.
    """

    source: str
    reason: str
    active_flows: int


@dataclass(frozen=True, slots=True)
class FlowRates(TelemetryEvent):
    """Periodic per-flow rate sample from a live transfer service.

    Emitted by :class:`repro.serve.TransferServer` once per poll
    interval per open flow (only while the bus is active), and by the
    simulator's fleet harness with ``source="sim"``.  ``app_rate`` is
    the decoded-plaintext rate since the previous sample;
    ``app_bytes`` is the flow's *cumulative* plaintext total;
    ``observed_ratio`` is wire/app bytes over the same window (None
    until the window moved data).  This is the fleet controller's
    primary observation stream.
    """

    source: str
    flow_id: int
    level: int
    app_rate: float
    app_bytes: float
    observed_ratio: Optional[float]
    worker_weight: float = 1.0


@dataclass(frozen=True, slots=True)
class FleetRebalanced(TelemetryEvent):
    """A fleet controller ran its allocation policy over live flows.

    ``flows`` counts the flows covered by the pass, ``pinned`` how many
    received an explicit level pin, ``reweighted`` how many got a codec
    worker share other than 1.0.
    """

    source: str
    policy: str
    flows: int
    pinned: int
    reweighted: int


@dataclass(frozen=True, slots=True)
class ServeInternalError(TelemetryEvent):
    """The serve daemon suppressed an exception on a best-effort path.

    Teardown and waker paths must not let one socket's failure take the
    event loop down, so they swallow ``OSError``-class exceptions — but
    a swallow that leaves no trace hides real trouble (fd exhaustion,
    a dying NIC) from operators.  Every such site now publishes one of
    these events and bumps the server's ``internal_errors`` counter,
    which ``/healthz`` surfaces.  ``site`` names the code path (e.g.
    ``"waker-send"``, ``"flow-close"``), ``error`` is ``repr(exc)``.
    """

    source: str
    site: str
    error: str


@dataclass(frozen=True, slots=True)
class ConfigReloaded(TelemetryEvent):
    """A live daemon applied a hot configuration reload.

    Emitted by :class:`repro.serve.TransferServer` after a SIGHUP or
    ``POST /reload`` took effect on the loop thread.  ``changed`` names
    the keys that actually changed, ``flows_updated`` counts live flows
    whose level/scheme was retuned in place (no connection dropped).
    """

    source: str
    changed: Tuple[str, ...]
    flows_updated: int
    reloads: int


@dataclass(frozen=True, slots=True)
class SpanClosed(TelemetryEvent):
    """A tracing span (``with span(...)``) exited."""

    name: str
    start: float
    end: float
    depth: int
    tags: Tuple[Tuple[str, Any], ...] = ()

    @property
    def seconds(self) -> float:
        return self.end - self.start


#: All event classes, for exporters and the report renderer.
EVENT_TYPES: Tuple[Type[TelemetryEvent], ...] = (
    EpochClosed,
    LevelSwitched,
    BlockCompressed,
    TransferProgress,
    PipelineQueueDepth,
    BufferPoolStats,
    CodecBackendFallback,
    BackoffUpdated,
    FaultInjected,
    BlockSkipped,
    FlowAccepted,
    FlowClosed,
    FlowRejected,
    FlowRates,
    FleetRebalanced,
    ServeInternalError,
    ConfigReloaded,
    SpanClosed,
)

Subscriber = Callable[[TelemetryEvent], None]


class EventBus:
    """Synchronous pub/sub hub with a registration-order guarantee."""

    __slots__ = ("_subscribers", "active", "published", "clock")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._subscribers: List[Tuple[Optional[type], Subscriber]] = []
        #: The module-level "telemetry enabled" flag: True iff at least
        #: one subscriber is attached.  Hot paths read this attribute
        #: and skip event construction entirely when it is False.
        self.active = False
        #: Events delivered since construction/reset (the zero-subscriber
        #: fast-path assertion counter).
        self.published = 0
        self.clock = clock

    def now(self) -> float:
        """Current time on the bus clock (wall or virtual)."""
        return self.clock()

    def subscribe(
        self,
        fn: Subscriber,
        event_type: Optional[type] = None,
    ) -> Tuple[Optional[type], Subscriber]:
        """Register ``fn`` for all events (or one ``event_type``).

        Returns an opaque handle for :meth:`unsubscribe`.
        """
        handle = (event_type, fn)
        self._subscribers.append(handle)
        self.active = True
        return handle

    def unsubscribe(self, handle: Tuple[Optional[type], Subscriber]) -> None:
        try:
            self._subscribers.remove(handle)
        except ValueError:
            pass
        self.active = bool(self._subscribers)

    def clear(self) -> None:
        """Drop all subscribers and zero the delivery counter."""
        self._subscribers.clear()
        self.active = False
        self.published = 0

    def publish(self, event: TelemetryEvent) -> None:
        """Deliver ``event`` to subscribers, in registration order."""
        self.published += 1
        for event_type, fn in self._subscribers:
            if event_type is None or isinstance(event, event_type):
                fn(event)


#: The process-wide default bus all built-in hooks publish to.
BUS = EventBus()


def get_bus() -> EventBus:
    """The process-wide default bus."""
    return BUS


def enabled() -> bool:
    """Is any subscriber attached to the default bus?"""
    return BUS.active
