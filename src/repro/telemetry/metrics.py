"""Named counters, gauges and fixed-bucket histograms.

Memory is bounded by construction: a counter/gauge is two attributes,
and a histogram holds a fixed bucket array plus a fixed-size ring
buffer of recent raw samples (for exact min/max over the tail).  There
is no unbounded per-sample storage anywhere, so a registry can stay
attached to a multi-hour run.

Percentiles are estimated from the bucket counts with linear
interpolation inside the bucket — the standard Prometheus
``histogram_quantile`` rule — so their error is bounded by the bucket
width, not by the sample count.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Seconds-scale buckets suited to codec/block latencies (1 µs – 10 s).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing count (events, bytes, blocks)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Last-written value (current level, queue depth, sim time)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with a bounded ring of raw samples.

    ``bounds`` are the *upper* edges of the finite buckets; one
    overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "_ring", "_ring_pos")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        ring_size: int = 128,
    ) -> None:
        if not buckets:
            raise ValueError("need at least one bucket bound")
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.name = name
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._ring: List[float] = [0.0] * max(1, ring_size)
        self._ring_pos = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        ring = self._ring
        ring[self._ring_pos % len(ring)] = value
        self._ring_pos += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def recent(self) -> List[float]:
        """The last ``ring_size`` raw samples, oldest first."""
        n = min(self._ring_pos, len(self._ring))
        if n < len(self._ring):
            return self._ring[:n]
        start = self._ring_pos % len(self._ring)
        return self._ring[start:] + self._ring[:start]

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``0 < p <= 100``).

        Linear interpolation inside the containing bucket; samples in
        the overflow bucket report the last finite bound (a known
        floor, never an invented value).
        """
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100]")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                if i >= len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                frac = (rank - cumulative) / bucket_count
                return lower + frac * (upper - lower)
            cumulative += bucket_count
        return self.bounds[-1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Get-or-create store of named metrics.

    A name is bound to one metric kind for the registry's lifetime;
    asking for the same name as a different kind is an error (it would
    silently fork the data otherwise).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        ring_size: int = 128,
    ) -> Histogram:
        return self._get_or_create(
            name,
            Histogram,
            lambda: Histogram(name, buckets or DEFAULT_LATENCY_BUCKETS, ring_size),
        )

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterable[Tuple[str, object]]:
        return iter(sorted(self._metrics.items()))

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        self._metrics.clear()

    def snapshot(self) -> Dict[str, object]:
        """Plain-data view of every metric (for JSON and tests)."""
        out: Dict[str, object] = {}
        for name, metric in self:
            if isinstance(metric, Histogram):
                out[name] = metric.summary()
            else:
                out[name] = metric.value  # type: ignore[union-attr]
        return out


#: Default process-wide registry used by :mod:`repro.telemetry.instrument`.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return REGISTRY
