"""Render a run report from a JSONL telemetry trace.

Consumed by the ``repro-telemetry`` CLI: reads a trace written by
:class:`~repro.telemetry.exporters.JsonlExporter` (real run or
simulated — one schema) and prints top-level counters, histogram
summaries and the level-switch timeline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, List, Tuple, Union

from .metrics import Histogram

__all__ = ["TraceSummary", "load_trace", "summarize", "render_report"]


@dataclass
class TraceSummary:
    """Everything the report renderer needs, parsed once."""

    total_events: int = 0
    counts_by_type: Dict[str, int] = field(default_factory=dict)
    epochs: int = 0
    app_bytes: float = 0.0
    first_ts: float = 0.0
    last_ts: float = 0.0
    levels_seen: Dict[int, int] = field(default_factory=dict)
    switches: List[Tuple[float, int, int]] = field(default_factory=list)
    backoff: Dict[str, int] = field(default_factory=dict)
    app_rate_mbps: Histogram = field(
        default_factory=lambda: Histogram(
            "app_rate_mbps", (1, 2, 5, 10, 20, 40, 60, 80, 100, 150, 200, 400, 800)
        )
    )
    compress_seconds: Histogram = field(
        default_factory=lambda: Histogram("compress_seconds")
    )
    decompress_seconds: Histogram = field(
        default_factory=lambda: Histogram("decompress_seconds")
    )
    transfers: Dict[str, Dict[str, float]] = field(default_factory=dict)
    span_seconds: Dict[str, Histogram] = field(default_factory=dict)
    #: Per-flow fold of FlowRates samples and the FlowClosed outcome.
    flows: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: Per-policy fold of FleetRebalanced passes.
    control: Dict[str, Dict[str, int]] = field(default_factory=dict)


def load_trace(source: Union[str, IO[str]]) -> Iterable[dict]:
    """Yield event dicts from a JSONL file path or file-like object."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fp:
            yield from load_trace(fp)
        return
    for lineno, line in enumerate(source, 1):
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno} is not valid JSON: {exc}") from exc


def summarize(events: Iterable[dict]) -> TraceSummary:
    """Fold a stream of event dicts into a :class:`TraceSummary`."""
    s = TraceSummary()
    for ev in events:
        etype = ev.get("type", "?")
        s.counts_by_type[etype] = s.counts_by_type.get(etype, 0) + 1
        ts = ev.get("ts")
        if isinstance(ts, (int, float)):
            if s.total_events == 0:
                s.first_ts = float(ts)
            s.last_ts = float(ts)
        s.total_events += 1

        if etype == "EpochClosed":
            s.epochs += 1
            s.app_bytes += float(ev.get("app_bytes") or 0.0)
            rate = ev.get("app_rate")
            if isinstance(rate, (int, float)):
                s.app_rate_mbps.observe(float(rate) / 1e6)
            level = ev.get("level")
            if isinstance(level, int):
                s.levels_seen[level] = s.levels_seen.get(level, 0) + 1
        elif etype == "LevelSwitched":
            s.switches.append(
                (
                    float(ev.get("ts") or 0.0),
                    int(ev.get("level_before", -1)),
                    int(ev.get("level_after", -1)),
                )
            )
        elif etype == "BackoffUpdated":
            action = str(ev.get("action", "?"))
            s.backoff[action] = s.backoff.get(action, 0) + 1
        elif etype == "BlockCompressed":
            seconds = ev.get("seconds")
            if isinstance(seconds, (int, float)):
                hist = (
                    s.compress_seconds
                    if ev.get("direction") == "compress"
                    else s.decompress_seconds
                )
                hist.observe(float(seconds))
        elif etype == "TransferProgress":
            src = str(ev.get("source", "?"))
            s.transfers[src] = {
                "bytes_in": float(ev.get("bytes_in") or 0.0),
                "bytes_out": float(ev.get("bytes_out") or 0.0),
                "ratio": float(ev.get("ratio") or 0.0),
            }
        elif etype == "FlowRates":
            fid = ev.get("flow_id")
            if isinstance(fid, int):
                fl = s.flows.setdefault(fid, _new_flow())
                fl["samples"] = int(fl["samples"]) + 1
                fl["rate_sum"] = float(fl["rate_sum"]) + float(ev.get("app_rate") or 0.0)
                fl["level"] = ev.get("level", fl["level"])
                fl["weight"] = float(ev.get("worker_weight") or 1.0)
                if ev.get("observed_ratio") is not None:
                    fl["ratio"] = float(ev["observed_ratio"])
                # Cumulative fallback for sources that never emit a
                # FlowClosed (the sim fleet); the close event, when it
                # does arrive, simply overwrites this with the final
                # number.
                fl["app_bytes"] = max(
                    float(fl["app_bytes"]), float(ev.get("app_bytes") or 0.0)
                )
        elif etype == "FlowClosed":
            fid = ev.get("flow_id")
            if isinstance(fid, int):
                fl = s.flows.setdefault(fid, _new_flow())
                fl["mode"] = str(ev.get("mode", "?"))
                fl["app_bytes"] = float(ev.get("app_bytes") or 0.0)
                fl["seconds"] = float(ev.get("seconds") or 0.0)
                fl["outcome"] = (
                    "ok" if ev.get("ok") else str(ev.get("reason", "failed"))
                )
        elif etype == "FleetRebalanced":
            policy = str(ev.get("policy", "?"))
            ctl = s.control.setdefault(
                policy, {"passes": 0, "pinned": 0, "reweighted": 0}
            )
            ctl["passes"] += 1
            ctl["pinned"] += int(ev.get("pinned") or 0)
            ctl["reweighted"] += int(ev.get("reweighted") or 0)
        elif etype == "SpanClosed":
            name = str(ev.get("name", "?"))
            hist = s.span_seconds.setdefault(name, Histogram(name))
            start, end = ev.get("start"), ev.get("end")
            if isinstance(start, (int, float)) and isinstance(end, (int, float)):
                hist.observe(float(end) - float(start))
    return s


def _new_flow() -> Dict[str, object]:
    return {
        "samples": 0,
        "rate_sum": 0.0,
        "level": None,
        "weight": 1.0,
        "ratio": None,
        "mode": "?",
        "app_bytes": 0.0,
        "seconds": 0.0,
        "outcome": "open",
    }


def _fmt_bytes(n: float) -> str:
    for unit, div in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if n >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def _fmt_hist(hist: Histogram, unit: str) -> str:
    if hist.count == 0:
        return "(no samples)"
    return (
        f"n={hist.count}  mean={hist.mean:.4g}{unit}  "
        f"p50={hist.percentile(50):.4g}{unit}  "
        f"p90={hist.percentile(90):.4g}{unit}  "
        f"p99={hist.percentile(99):.4g}{unit}"
    )


def render_report(s: TraceSummary, *, max_switches: int = 20) -> str:
    """Human-readable run report for one trace."""
    lines: List[str] = []
    span_secs = s.last_ts - s.first_ts
    lines.append("== telemetry run report ==")
    lines.append(
        f"events: {s.total_events}  trace span: {span_secs:.2f}s "
        f"({s.first_ts:.2f} -> {s.last_ts:.2f})"
    )
    lines.append("")
    lines.append("-- event counts --")
    for etype, count in sorted(s.counts_by_type.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {etype:18s} {count:8d}")

    if s.epochs:
        lines.append("")
        lines.append("-- epochs --")
        lines.append(f"  closed: {s.epochs}  app bytes: {_fmt_bytes(s.app_bytes)}")
        lines.append(f"  app rate  {_fmt_hist(s.app_rate_mbps, ' MB/s')}")
        if s.levels_seen:
            dist = "  ".join(
                f"L{level}:{count}" for level, count in sorted(s.levels_seen.items())
            )
            lines.append(f"  level occupancy (epochs): {dist}")

    if s.backoff:
        lines.append("")
        lines.append("-- backoff --")
        lines.append(
            "  "
            + "  ".join(f"{k}: {v}" for k, v in sorted(s.backoff.items()))
        )

    if s.compress_seconds.count or s.decompress_seconds.count:
        lines.append("")
        lines.append("-- block codec latency --")
        lines.append(f"  compress    {_fmt_hist(s.compress_seconds, 's')}")
        lines.append(f"  decompress  {_fmt_hist(s.decompress_seconds, 's')}")

    if s.transfers:
        lines.append("")
        lines.append("-- transfers (final progress) --")
        for src, t in sorted(s.transfers.items()):
            lines.append(
                f"  {src:16s} in {_fmt_bytes(t['bytes_in'])}  "
                f"out {_fmt_bytes(t['bytes_out'])}  ratio {t['ratio']:.3f}"
            )

    if s.flows:
        lines.append("")
        lines.append("-- flows --")
        for fid, fl in sorted(s.flows.items()):
            samples = int(fl["samples"])
            mean_rate = float(fl["rate_sum"]) / samples / 1e6 if samples else 0.0
            level = fl["level"]
            ratio = fl["ratio"]
            lines.append(
                f"  flow {fid:<4d} {str(fl['mode']):5s} "
                f"{_fmt_bytes(float(fl['app_bytes'])):>10s} in "
                f"{float(fl['seconds']):6.2f}s  "
                f"rate {mean_rate:7.2f} MB/s ({samples} samples)  "
                f"level {'-' if level is None else level}  "
                f"weight {float(fl['weight']):.2f}  "
                f"ratio {'-' if ratio is None else format(float(ratio), '.3f')}  "
                f"{fl['outcome']}"
            )

    if s.control:
        lines.append("")
        lines.append("-- fleet control --")
        for policy, ctl in sorted(s.control.items()):
            lines.append(
                f"  {policy:20s} passes {ctl['passes']:5d}  "
                f"level pins {ctl['pinned']:5d}  reweights {ctl['reweighted']:5d}"
            )

    if s.span_seconds:
        lines.append("")
        lines.append("-- spans --")
        for name, hist in sorted(s.span_seconds.items()):
            lines.append(f"  {name:16s} {_fmt_hist(hist, 's')}")

    if s.switches:
        lines.append("")
        lines.append("-- level-switch timeline --")
        shown = s.switches[:max_switches]
        lines.append(
            "  "
            + "  ".join(f"{ts:.2f}s:{a}->{b}" for ts, a, b in shown)
            + (f"  ... ({len(s.switches) - max_switches} more)"
               if len(s.switches) > max_switches else "")
        )
    return "\n".join(lines)
