"""Figure 1: accuracy of displayed CPU utilization inside VMs.

Reproduces the four plots of Figure 1 — average CPU utilization during
network send/receive and file write/read, as reported by the VM and by
the host, split into USR/SYS/HIRQ/SIRQ/STEAL — across KVM (full and
paravirt), XEN (paravirt) and Amazon EC2 (VM view only).

Expected shapes (asserted):
* every virtualized platform under-reports I/O CPU cost;
* the worst gaps — KVM-paravirt network send and XEN file read —
  reach roughly a factor of 15;
* EC2 has no host-side view at all.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.engine import Environment
from ..sim.host import PhysicalHost
from ..sim.hypervisor import PROFILES
from ..sim.rng import RngStreams
from ..sim.workload import OPERATIONS, WorkloadReport
from .common import ExperimentResult, scaled_bytes
from .reporting import check, format_grouped_bars

#: The platforms Figure 1 shows, in plot order.
FIG1_PLATFORMS = ("kvm-paravirt", "kvm-full", "xen-paravirt", "ec2")
FIG1_OPERATIONS = ("net-send", "net-recv", "file-write", "file-read")

#: Figure 1 used >=120 one-second samples; at the platforms' rates that
#: is roughly 10 GB of I/O per cell.  scale=1.0 reproduces that.
FULL_BYTES_PER_CELL = 10 * 10**9


def run_cell(platform: str, operation: str, total_bytes: float, seed: int = 11) -> WorkloadReport:
    env = Environment()
    host = PhysicalHost(env, PROFILES[platform], RngStreams(seed), name=platform)
    vm = host.spawn_vm()
    return OPERATIONS[operation](env, vm, total_bytes)


def run(scale: float = 0.1, seed: int = 11) -> ExperimentResult:
    total = scaled_bytes(scale, FULL_BYTES_PER_CELL)
    reports: Dict[str, Dict[str, WorkloadReport]] = {}
    for operation in FIG1_OPERATIONS:
        reports[operation] = {
            platform: run_cell(platform, operation, total, seed)
            for platform in FIG1_PLATFORMS
        }

    sections: List[str] = []
    for operation in FIG1_OPERATIONS:
        groups = {}
        for platform in FIG1_PLATFORMS:
            rep = reports[operation][platform]
            series = {"VM": rep.vm_cpu_total}
            if PROFILES[platform].host_observable:
                series["Host"] = rep.host_cpu_total
            groups[PROFILES[platform].display_name] = series
        sections.append(
            format_grouped_bars(groups, title=f"-- {operation} (CPU utilization, %)")
        )
    rendered = "\n\n".join(sections)

    checks: List[str] = []
    failures: List[str] = []

    send_gap = reports["net-send"]["kvm-paravirt"].discrepancy_factor
    checks.append(
        check(
            10.0 <= send_gap <= 20.0,
            f"KVM-paravirt net-send displayed-CPU gap ~= 15x (got {send_gap:.1f}x)",
            failures,
        )
    )
    read_gap = reports["file-read"]["xen-paravirt"].discrepancy_factor
    checks.append(
        check(
            10.0 <= read_gap <= 20.0,
            f"XEN file-read displayed-CPU gap ~= 15x (got {read_gap:.1f}x)",
            failures,
        )
    )
    all_gaps_over_one = all(
        reports[op][p].discrepancy_factor > 1.15
        for op in FIG1_OPERATIONS
        for p in FIG1_PLATFORMS
        if PROFILES[p].host_observable
    )
    checks.append(
        check(
            all_gaps_over_one,
            "every virtualized platform under-reports CPU for every I/O op",
            failures,
        )
    )
    checks.append(
        check(
            reports["net-send"]["ec2"].host_cpu_total == 0.0,
            "EC2 exposes no host-side CPU view",
            failures,
        )
    )
    xen_steal = reports["net-send"]["xen-paravirt"].vm_cpu["STEAL"]
    checks.append(
        check(xen_steal > 0.0, f"XEN displays STEAL time (got {xen_steal:.1f}%)", failures)
    )

    return ExperimentResult(
        experiment_id="fig1",
        title="Accuracy of displayed CPU utilization during I/O",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={
            op: {
                p: {
                    "vm": reports[op][p].vm_cpu,
                    "host": reports[op][p].host_cpu,
                    "gap": reports[op][p].discrepancy_factor,
                }
                for p in FIG1_PLATFORMS
            }
            for op in FIG1_OPERATIONS
        },
    )
