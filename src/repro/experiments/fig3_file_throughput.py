"""Figure 3: distribution of file-write throughput per platform.

Expected shapes (asserted): native/KVM/EC2 write at honest disk rates
with modest variance; XEN's host page cache produces a bimodal
distribution whose fast mode dwarfs the physical disk (rates of
hundreds of MB/s) with stall samples of a few MB/s — and a spuriously
high displayed average, while gigabytes remain unflushed at the end.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.disk import CachedDisk
from ..sim.engine import Environment
from ..sim.host import PhysicalHost
from ..sim.hypervisor import PROFILES
from ..sim.rng import RngStreams
from ..sim.workload import run_file_write
from .common import ExperimentResult, scaled_bytes
from .reporting import DIST_HEADERS, Distribution, check, format_table

FIG3_PLATFORMS = ("native", "kvm-full", "kvm-paravirt", "xen-paravirt", "ec2")

FULL_BYTES = 50 * 10**9


def run(scale: float = 0.1, seed: int = 31) -> ExperimentResult:
    total = scaled_bytes(scale, FULL_BYTES)
    # The XEN cache artifact needs the dirty-page high watermark
    # (3.2 GB) to be crossed, or no flush stall ever happens; keep the
    # volume above it even at small scales (simulated bytes are cheap).
    xen_cache = PROFILES["xen-paravirt"].disk_cache
    if xen_cache is not None:
        total = max(total, int(xen_cache.high_watermark + 2e9))
    dists: Dict[str, Distribution] = {}
    unflushed: Dict[str, float] = {}
    for platform in FIG3_PLATFORMS:
        env = Environment()
        host = PhysicalHost(env, PROFILES[platform], RngStreams(seed), name=platform)
        vm = host.spawn_vm()
        report = run_file_write(env, vm, total)
        dists[platform] = Distribution.from_samples(report.throughput_samples)
        disk = host.disk
        unflushed[platform] = (
            disk.unflushed_bytes if isinstance(disk, CachedDisk) else 0.0
        )

    rows = [
        [PROFILES[p].display_name]
        + dists[p].row(scale=1e6)
        + [f"{unflushed[p] / 1e9:.1f}"]
        for p in FIG3_PLATFORMS
    ]
    rendered = format_table(
        ["platform"] + DIST_HEADERS + ["unflushed GB"],
        rows,
        title="File write throughput as observed in the VM (MB/s, 20 MB samples)",
    )

    checks: List[str] = []
    failures: List[str] = []

    honest = ("native", "kvm-full", "kvm-paravirt", "ec2")
    honest_ok = all(
        dists[p].median < 1.5 * PROFILES[p].file_write_rate for p in honest
    )
    checks.append(
        check(honest_ok, "non-XEN platforms display honest disk-rate medians", failures)
    )
    xen = dists["xen-paravirt"]
    checks.append(
        check(
            xen.median > 3 * PROFILES["xen-paravirt"].file_write_rate,
            f"XEN displayed median is spuriously high "
            f"({xen.median / 1e6:.0f} MB/s vs {PROFILES['xen-paravirt'].file_write_rate / 1e6:.0f} MB/s disk)",
            failures,
        )
    )
    checks.append(
        check(
            xen.minimum < 10e6,
            f"XEN stall samples drop to a few MB/s (min {xen.minimum / 1e6:.1f})",
            failures,
        )
    )
    checks.append(
        check(
            unflushed["xen-paravirt"] > 0.2 * min(total, 4e9),
            f"data remains unflushed in host RAM at the end "
            f"({unflushed['xen-paravirt'] / 1e9:.1f} GB)",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="fig3",
        title="Distribution of file I/O throughput (write)",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={
            p: dict(vars(dists[p]), unflushed=unflushed[p]) for p in FIG3_PLATFORMS
        },
    )
