"""ASCII reporting for experiment results.

Every experiment renders its output in the same visual vocabulary as
the paper's artifact — a table for Table II, distribution summaries for
the box plots (Figures 2–3), grouped bars for Figure 1, and level/rate
time-series for Figures 4–6 — so a terminal diff against the paper's
numbers is one glance.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with a header rule."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass(frozen=True)
class Distribution:
    """Five-number summary of a sample (the box-plot numbers)."""

    n: int
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float
    stdev: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Distribution":
        if not samples:
            raise ValueError("need at least one sample")
        ordered = sorted(samples)
        if len(ordered) >= 2:
            quartiles = statistics.quantiles(ordered, n=4)
            stdev = statistics.stdev(ordered)
        else:
            quartiles = [ordered[0]] * 3
            stdev = 0.0
        return cls(
            n=len(ordered),
            minimum=ordered[0],
            p25=quartiles[0],
            median=quartiles[1],
            p75=quartiles[2],
            maximum=ordered[-1],
            mean=statistics.fmean(ordered),
            stdev=stdev,
        )

    def row(self, scale: float = 1.0) -> List[str]:
        return [
            f"{self.median / scale:.1f}",
            f"{self.p25 / scale:.1f}",
            f"{self.p75 / scale:.1f}",
            f"{self.minimum / scale:.1f}",
            f"{self.maximum / scale:.1f}",
            f"{self.stdev / scale:.1f}",
        ]


DIST_HEADERS = ["median", "p25", "p75", "min", "max", "stdev"]


def format_grouped_bars(
    groups: Dict[str, Dict[str, float]],
    unit: str = "%",
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal ASCII bars, one per (group, series) pair."""
    peak = max((v for series in groups.values() for v in series.values()), default=1.0)
    peak = max(peak, 1e-9)
    lines = [title] if title else []
    for group, series in groups.items():
        lines.append(group)
        for name, value in series.items():
            bar = "#" * max(0, round(width * value / peak))
            lines.append(f"  {name:<6s} {value:7.1f}{unit} |{bar}")
    return "\n".join(lines)


def format_timeseries(
    times: Sequence[float],
    values: Sequence[float],
    label: str,
    n_buckets: int = 60,
    height: float | None = None,
) -> str:
    """Coarse sparkline: bucket means rendered as a bar per bucket."""
    if len(times) != len(values) or not times:
        raise ValueError("times and values must be equal-length, non-empty")
    t_max = max(times)
    buckets: List[List[float]] = [[] for _ in range(n_buckets)]
    for t, v in zip(times, values):
        idx = min(n_buckets - 1, int(n_buckets * t / t_max) if t_max > 0 else 0)
        buckets[idx].append(v)
    peak = height if height is not None else max(values)
    peak = max(peak, 1e-9)
    glyphs = " .:-=+*#%@"
    cells = []
    for bucket in buckets:
        if not bucket:
            cells.append(" ")
            continue
        level = statistics.fmean(bucket) / peak
        cells.append(glyphs[min(len(glyphs) - 1, int(level * (len(glyphs) - 1) + 0.5))])
    return f"{label:<12s} |{''.join(cells)}| peak={peak:.3g}"


def mean_sd(samples: Sequence[float]) -> str:
    """The paper's Table II cell format: ``mean (SD)``."""
    if not samples:
        return "-"
    mean = statistics.fmean(samples)
    sd = statistics.stdev(samples) if len(samples) > 1 else 0.0
    return f"{mean:.0f} ({sd:.0f})"


def check(condition: bool, description: str, failures: Optional[List[str]] = None) -> str:
    """Render a shape assertion as an OK/FAIL line (and collect failures)."""
    status = "OK  " if condition else "FAIL"
    if not condition and failures is not None:
        failures.append(description)
    return f"[{status}] {description}"


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("need at least one value")
    return math.exp(statistics.fmean(math.log(v) for v in values))
