"""Shared experiment plumbing: result containers and scale control.

Every experiment accepts a ``scale`` in (0, 1]: 1.0 reruns the paper's
full data volumes (50 GB transfers), smaller values shrink volumes
proportionally for quick runs (benchmarks default to 0.1, tests to
~0.02).  Epoch length and all rates are *not* scaled — only volume —
so a scaled run has proportionally fewer decision epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..schemes.base import CompressionScheme
from ..schemes.rate_based import RateBasedScheme
from ..schemes.static import StaticScheme
from ..sim.scenario import PAPER_TOTAL_BYTES

#: The paper's scheme line-up for Table II, in row order.
SCHEME_ORDER = ("NO", "LIGHT", "MEDIUM", "HEAVY", "DYNAMIC")


def scheme_factories() -> Dict[str, Callable[[int], CompressionScheme]]:
    """Factories for the five Table II rows."""

    def static(level: int, name: str) -> Callable[[int], CompressionScheme]:
        return lambda n: StaticScheme(n, level, name=name)

    return {
        "NO": static(0, "NO"),
        "LIGHT": static(1, "LIGHT"),
        "MEDIUM": static(2, "MEDIUM"),
        "HEAVY": static(3, "HEAVY"),
        "DYNAMIC": lambda n: RateBasedScheme(n),
    }


def scaled_bytes(scale: float, full: int = PAPER_TOTAL_BYTES) -> int:
    """Paper volume scaled down; at least 200 MB so several epochs run."""
    if not 0 < scale <= 1:
        raise ValueError("scale must be in (0, 1]")
    return max(int(full * scale), 200 * 10**6)


@dataclass
class ExperimentResult:
    """What every experiment module returns."""

    experiment_id: str
    title: str
    #: Rendered ASCII artifact (table / bars / series).
    rendered: str
    #: Shape-assertion lines (``[OK]``/``[FAIL] ...``).
    checks: List[str] = field(default_factory=list)
    #: Descriptions of failed checks (empty == all shapes hold).
    failures: List[str] = field(default_factory=list)
    #: Raw numbers for programmatic consumers (benchmarks, tests).
    data: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} ==", self.rendered]
        if self.checks:
            parts.append("")
            parts.extend(self.checks)
        return "\n".join(parts)
