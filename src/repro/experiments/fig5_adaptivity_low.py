"""Figure 5: adaptive behaviour on hardly compressible data, 2 flows.

The counterpart to Figure 4: LOW-compressibility data with two
concurrent background connections.  Here the performance differences
between neighbouring levels are small relative to the dead band and
the contended link fluctuates, so "our decision algorithm may
spuriously consider changes in the application data rate as
fluctuations and continue the probing process" (Section IV-A).

Expected shapes (asserted): the scheme keeps moving between the lower
levels instead of locking on; HEAVY is visited rarely if ever; the run
completes within the envelope of the static baselines.
"""

from __future__ import annotations

from typing import List

from ..data.corpus import Compressibility
from ..sim.scenario import (
    ScenarioConfig,
    make_dynamic_factory,
    make_static_factory,
    run_transfer_scenario,
)
from .common import ExperimentResult, scaled_bytes
from .fig4_adaptivity_high import render_trace
from .reporting import check


def run(scale: float = 0.1, seed: int = 52) -> ExperimentResult:
    total = scaled_bytes(scale)
    cfg = ScenarioConfig(
        scheme_factory=make_dynamic_factory(),
        compressibility=Compressibility.LOW,
        total_bytes=total,
        n_background=2,
        seed=seed,
    )
    result = run_transfer_scenario(cfg)
    rendered = render_trace(result)

    checks: List[str] = []
    failures: List[str] = []
    levels = [e.level for e in result.epochs]

    n_changes = sum(1 for a, b in zip(levels, levels[1:]) if a != b)
    change_times = [
        result.epochs[i].end
        for i in range(1, len(levels))
        if levels[i] != levels[i - 1]
    ]
    # "Probing continues": many changes in absolute terms, and they
    # keep happening late in the run (the rate decays with backoff, so
    # a fixed changes-per-epoch threshold would be wrong at full scale).
    still_probing_late = bool(change_times) and change_times[-1] > (
        2.0 / 3.0
    ) * result.completion_time
    checks.append(
        check(
            n_changes >= 8 and still_probing_late,
            f"probing continues throughout the run "
            f"({n_changes} level changes over {len(levels)} epochs; last at "
            f"{change_times[-1] if change_times else 0:.0f}s of "
            f"{result.completion_time:.0f}s)",
            failures,
        )
    )

    heavy_share = levels.count(3) / max(1, len(levels))
    checks.append(
        check(
            heavy_share < 0.15,
            f"HEAVY is (almost) never chosen ({100 * heavy_share:.0f}% of epochs)",
            failures,
        )
    )

    # The near-tied cheap levels (NO/LIGHT/MEDIUM differ by less than
    # the dead band here) are all visited — the "spuriously consider
    # changes ... as fluctuations" behaviour of Section IV-A.
    cheap_share = sum(levels.count(l) for l in (0, 1, 2)) / max(1, len(levels))
    all_cheap_visited = all(l in levels for l in (0, 1, 2))
    checks.append(
        check(
            cheap_share > 0.85 and all_cheap_visited,
            f"probing wanders across the near-tied cheap levels "
            f"({100 * cheap_share:.0f}% of epochs on NO/LIGHT/MEDIUM, all visited)",
            failures,
        )
    )

    # Completion within the static envelope (between best and worst).
    static_times = {}
    for lvl, name in ((0, "NO"), (1, "LIGHT"), (2, "MEDIUM")):
        c = ScenarioConfig(
            scheme_factory=make_static_factory(lvl, name),
            compressibility=Compressibility.LOW,
            total_bytes=total,
            n_background=2,
            seed=seed,
        )
        static_times[name] = run_transfer_scenario(c).completion_time
    best = min(static_times.values())
    checks.append(
        check(
            result.completion_time <= 1.3 * best,
            f"dynamic run within 30% of best static "
            f"({result.completion_time:.0f}s vs {best:.0f}s)",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="fig5",
        title="Adaptive compression on LOW data, 2 concurrent connections",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={
            "levels": levels,
            "completion_time": result.completion_time,
            "static_times": static_times,
        },
    )
