"""Figure 2: distribution of network send throughput per platform.

The paper streams 50 GB from each platform's VM, timestamping every
20 MB, and box-plots the resulting rates.  Expected shapes (asserted):
native and local-cloud platforms show narrow distributions; Amazon EC2
shows huge variance with episodes near zero (Wang & Ng's finding).
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.engine import Environment
from ..sim.host import PhysicalHost
from ..sim.hypervisor import PROFILES
from ..sim.rng import RngStreams
from ..sim.workload import run_net_send
from .common import ExperimentResult, scaled_bytes
from .reporting import DIST_HEADERS, Distribution, check, format_table

#: Figure 2's x axis, in plot order.
FIG2_PLATFORMS = ("native", "kvm-full", "kvm-paravirt", "xen-paravirt", "ec2")

FULL_BYTES = 50 * 10**9  # the paper's 50 GB


def run(scale: float = 0.1, seed: int = 21) -> ExperimentResult:
    total = scaled_bytes(scale, FULL_BYTES)
    dists: Dict[str, Distribution] = {}
    for platform in FIG2_PLATFORMS:
        env = Environment()
        host = PhysicalHost(env, PROFILES[platform], RngStreams(seed), name=platform)
        vm = host.spawn_vm()
        report = run_net_send(env, vm, total)
        dists[platform] = Distribution.from_samples(report.throughput_samples)

    rows = [
        [PROFILES[p].display_name] + dists[p].row(scale=1e6) for p in FIG2_PLATFORMS
    ]
    rendered = format_table(
        ["platform"] + DIST_HEADERS,
        rows,
        title="Network send throughput as observed in the VM (MB/s, 20 MB samples)",
    )

    checks: List[str] = []
    failures: List[str] = []

    def spread(p: str) -> float:
        return (dists[p].p75 - dists[p].p25) / dists[p].median

    checks.append(
        check(
            spread("native") < 0.10,
            f"native distribution is tight (IQR/median {spread('native'):.2f})",
            failures,
        )
    )
    local_ok = all(spread(p) < 0.2 for p in ("kvm-full", "kvm-paravirt", "xen-paravirt"))
    checks.append(
        check(
            local_ok,
            "local-cloud platforms fluctuate only marginally more than native",
            failures,
        )
    )
    checks.append(
        check(
            spread("ec2") > 3 * spread("native"),
            f"EC2 variance is drastic (IQR/median {spread('ec2'):.2f})",
            failures,
        )
    )
    ec2 = dists["ec2"]
    # Outage-length episodes are rare; with few samples (small scale)
    # they may simply not be drawn, so gate the strict form on n.
    near_zero_ok = (
        ec2.minimum < 0.2 * ec2.median
        if ec2.n >= 300
        else ec2.minimum < 0.6 * ec2.median
    )
    checks.append(
        check(
            near_zero_ok,
            f"EC2 shows deep throughput drops (min {ec2.minimum / 1e6:.0f} MB/s "
            f"vs median {ec2.median / 1e6:.0f} MB/s over {ec2.n} samples)",
            failures,
        )
    )
    checks.append(
        check(
            all(dists["native"].median > dists[p].median for p in FIG2_PLATFORMS[1:]),
            "native achieves the highest median throughput",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="fig2",
        title="Distribution of network I/O throughput (send)",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={p: vars(dists[p]) for p in FIG2_PLATFORMS},
    )
