"""Reproduction harness: one module per paper table/figure + ablations.

Run everything with ``python -m repro.experiments`` (scaled to 10 % of
the paper's data volumes by default; ``--scale 1.0`` for the full run).
"""

from .common import SCHEME_ORDER, ExperimentResult, scaled_bytes, scheme_factories

__all__ = [
    "ExperimentResult",
    "SCHEME_ORDER",
    "scheme_factories",
    "scaled_bytes",
]
