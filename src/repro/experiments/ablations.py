"""Ablation experiments for the design choices DESIGN.md calls out.

None of these has a direct figure in the paper, but each pins down a
claim the paper argues in prose:

* ``ablate-alpha`` — Section III-A/IV-A: small α detects small gains
  but mistakes fluctuation for signal; the paper picked 0.2.
* ``ablate-backoff`` — Section III-A: exponential backoff makes
  unnecessary probing decrease exponentially; without it, a constant
  probe tax is paid forever.
* ``ablate-t`` — Section III-A: the MB-granularity design goal; very
  short epochs measure noise, very long epochs adapt too slowly.
* ``ablate-metrics`` — Section II: feeding a resource-based scheme the
  *displayed* (skewed) metrics instead of honest ones produces
  unreasonable levels and worse completion times.
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from ..core.decision import DecisionModel
from ..data.corpus import Compressibility
from ..schemes.base import CompressionScheme, EpochObservation
from ..schemes.resource_based import ResourceBasedScheme, TrainedLevel
from ..sim.calibration import CODEC_MODEL, LINK_APP_CAPACITY
from ..sim.scenario import (
    ScenarioConfig,
    make_dynamic_factory,
    make_static_factory,
    run_transfer_scenario,
)
from .common import ExperimentResult, scaled_bytes
from .reporting import check, format_table

MB = 1e6


def _run(scheme_factory, cls, total, n_background, seed, epoch_seconds=2.0):
    cfg = ScenarioConfig(
        scheme_factory=scheme_factory,
        compressibility=cls,
        total_bytes=total,
        n_background=n_background,
        epoch_seconds=epoch_seconds,
        seed=seed,
    )
    return run_transfer_scenario(cfg)


# ---------------------------------------------------------------------
# alpha sweep
# ---------------------------------------------------------------------

ALPHAS = (0.02, 0.05, 0.1, 0.2, 0.35, 0.5)


def run_alpha(scale: float = 0.1, seed: int = 71, repeats: int = 2) -> ExperimentResult:
    # Short runs are dominated by start-up probing, which is the same
    # for every alpha; keep enough epochs for the dead-band behaviour
    # itself to differentiate the settings.
    total = max(scaled_bytes(scale), 10 * 10**9)
    rows = []
    results: Dict[float, Dict[str, float]] = {}
    for alpha in ALPHAS:
        times_low = [
            _run(make_dynamic_factory(alpha), Compressibility.LOW, total, 2, seed + r).completion_time
            for r in range(repeats)
        ]
        times_high = [
            _run(make_dynamic_factory(alpha), Compressibility.HIGH, total, 0, seed + r).completion_time
            for r in range(repeats)
        ]
        results[alpha] = {
            "low2": statistics.fmean(times_low),
            "high0": statistics.fmean(times_high),
        }
        rows.append(
            [f"{alpha:.2f}", f"{results[alpha]['high0']:.0f}", f"{results[alpha]['low2']:.0f}"]
        )
    rendered = format_table(
        ["alpha", "HIGH/0-conn (s)", "LOW/2-conn (s)"],
        rows,
        title="Completion time vs dead-band width alpha (DYNAMIC)",
    )

    checks: List[str] = []
    failures: List[str] = []
    best_high = min(r["high0"] for r in results.values())
    at_02 = results[0.2]["high0"]
    checks.append(
        check(
            at_02 <= 1.15 * best_high,
            f"alpha=0.2 is near-optimal on the easy cell ({at_02:.0f}s vs best {best_high:.0f}s)",
            failures,
        )
    )
    # Robustness: the extreme alphas must not beat 0.2 by much on the
    # noisy LOW/2-conn cell either.
    at_02_low = results[0.2]["low2"]
    best_low = min(r["low2"] for r in results.values())
    checks.append(
        check(
            at_02_low <= 1.3 * best_low,
            f"alpha=0.2 stays competitive on the noisy cell ({at_02_low:.0f}s vs best {best_low:.0f}s)",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="ablate-alpha",
        title="Dead-band parameter sweep",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={str(a): results[a] for a in ALPHAS},
    )


# ---------------------------------------------------------------------
# backoff on/off
# ---------------------------------------------------------------------


class NoBackoffScheme(CompressionScheme):
    """The paper's scheme with the exponential backoff disabled: the
    algorithm probes a neighbour on *every* stable epoch."""

    name = "DYNAMIC-NOBACKOFF"

    def __init__(self, n_levels: int, alpha: float = 0.2) -> None:
        super().__init__(n_levels)
        self.model = DecisionModel(n_levels, alpha=alpha)

    @property
    def current_level(self) -> int:
        return self.model.current_level

    def on_epoch(self, obs: EpochObservation) -> int:
        level = self.model.observe(obs.app_rate)
        # Undo all backoff growth: thresholds stay at 1 forever.
        for lvl in range(self.n_levels):
            self.model.state.bck.punish(lvl)
        return level


def run_backoff(scale: float = 0.1, seed: int = 72, repeats: int = 2) -> ExperimentResult:
    # Backoff's value is the *long-run* probe frequency; keep at least
    # ~50 epochs in the run regardless of scale so the exponential vs
    # constant probing rates are distinguishable.
    total = max(scaled_bytes(scale), 20 * 10**9)

    def count_probes(result) -> int:
        levels = [e.level for e in result.epochs]
        return sum(1 for a, b in zip(levels, levels[1:]) if a != b)

    rows = []
    data = {}
    for name, factory in (
        ("with backoff", make_dynamic_factory()),
        ("no backoff", lambda n: NoBackoffScheme(n)),
    ):
        times, probes = [], []
        for r in range(repeats):
            res = _run(factory, Compressibility.HIGH, total, 0, seed + r)
            times.append(res.completion_time)
            probes.append(count_probes(res))
        data[name] = {
            "time": statistics.fmean(times),
            "probes": statistics.fmean(probes),
        }
        rows.append([name, f"{data[name]['time']:.0f}", f"{data[name]['probes']:.0f}"])
    rendered = format_table(
        ["variant", "completion (s)", "level changes"],
        rows,
        title="Exponential backoff ablation (HIGH, no background)",
    )

    checks: List[str] = []
    failures: List[str] = []
    checks.append(
        check(
            data["no backoff"]["probes"] > 2 * data["with backoff"]["probes"],
            f"backoff cuts probing dramatically "
            f"({data['with backoff']['probes']:.0f} vs {data['no backoff']['probes']:.0f} changes)",
            failures,
        )
    )
    checks.append(
        check(
            data["with backoff"]["time"] <= data["no backoff"]["time"] * 1.02,
            "backoff never hurts completion time",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="ablate-backoff",
        title="Exponential backoff on/off",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data=data,
    )


# ---------------------------------------------------------------------
# epoch length t
# ---------------------------------------------------------------------

EPOCHS = (0.5, 1.0, 2.0, 4.0, 8.0)


def run_epoch_length(scale: float = 0.1, seed: int = 73, repeats: int = 2) -> ExperimentResult:
    total = scaled_bytes(scale)
    rows = []
    data = {}
    for t in EPOCHS:
        times = [
            _run(
                make_dynamic_factory(), Compressibility.HIGH, total, 1, seed + r, epoch_seconds=t
            ).completion_time
            for r in range(repeats)
        ]
        data[str(t)] = statistics.fmean(times)
        rows.append([f"{t:.1f}", f"{data[str(t)]:.0f}"])
    rendered = format_table(
        ["t (s)", "completion (s)"],
        rows,
        title="Completion time vs decision epoch length t (HIGH, 1 conn)",
    )

    checks: List[str] = []
    failures: List[str] = []
    at_2 = data["2.0"]
    best = min(data.values())
    checks.append(
        check(
            at_2 <= 1.15 * best,
            f"the paper's t=2s is near-optimal ({at_2:.0f}s vs best {best:.0f}s)",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="ablate-t",
        title="Decision epoch length sweep",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data=data,
    )


# ---------------------------------------------------------------------
# displayed metrics vs honest metrics (resource-based scheme)
# ---------------------------------------------------------------------


def _training_table(cls: Compressibility = Compressibility.HIGH) -> List[TrainedLevel]:
    """Offline training on an unloaded machine — exactly what
    Krintz/Sucu-style schemes calibrate once.  The table is *correct*
    for the given data class: the ablation isolates the metric skew,
    not training-data mismatch."""
    table = [TrainedLevel(comp_speed=float("inf"), ratio=1.0)]
    for name in ("LIGHT", "MEDIUM", "HEAVY"):
        pt = CODEC_MODEL[(name, cls)]
        table.append(TrainedLevel(comp_speed=pt.comp_speed, ratio=pt.ratio))
    return table


class HonestMetricsScheme(CompressionScheme):
    """Resource-based scheme fed *host-truth* metrics.

    Stands in for what the scheme would do on an unvirtualized host:
    the CPU idle fraction it sees accounts for the true hidden I/O cost
    and the bandwidth input is the un-noised link share.
    """

    name = "RESOURCE-HONEST"

    def __init__(self, n_levels: int) -> None:
        super().__init__(n_levels)
        self.inner = ResourceBasedScheme(_training_table())

    @property
    def current_level(self) -> int:
        return self.inner.current_level

    def on_epoch(self, obs: EpochObservation) -> int:
        # Reconstruct honest inputs: the true bandwidth share rather
        # than the fluctuating displayed estimate, and a CPU figure that
        # includes the hidden virtualization overhead.
        honest = EpochObservation(
            now=obs.now,
            epoch_seconds=obs.epoch_seconds,
            app_rate=obs.app_rate,
            displayed_cpu_util=min(100.0, obs.displayed_cpu_util),
            displayed_bandwidth=LINK_APP_CAPACITY,
            queue_slope=obs.queue_slope,
        )
        return self.inner.on_epoch(honest)


def run_metrics(scale: float = 0.1, seed: int = 74, repeats: int = 2) -> ExperimentResult:
    """Two-part experiment.

    Part 1 (deterministic): feed the resource-based decision model the
    exact metric skew Section II measured — a paravirtualized VM
    displaying ~7 % CPU while the host burns a core, and a displayed
    bandwidth riding a collapse artifact — and show it picks an
    unreasonable level, while honest inputs give a sane one and the
    rate-based model is unaffected by construction.

    Part 2 (simulation): robustness under bandwidth fluctuation — the
    local-cloud regime the paper evaluated on (mild jitter) vs
    EC2-grade on/off fluctuation.  On the local cloud the adaptive
    schemes track the best static level; under EC2-grade fluctuation
    *every* decision model degrades, including the paper's — which is
    consistent with the paper's choice to evaluate on its local cloud
    and its own caution about alpha vs fluctuations (Section IV-A).
    """
    from ..sim.fluctuation import MarkovOnOff

    checks: List[str] = []
    failures: List[str] = []

    # -- Part 1: the Section II failure mode, deterministically -------
    training = _training_table(Compressibility.HIGH)

    def decide(cpu_util: float, bandwidth: float) -> int:
        scheme = ResourceBasedScheme(training, smoothing=1.0)
        return scheme.on_epoch(
            EpochObservation(
                now=2.0,
                epoch_seconds=2.0,
                app_rate=80 * MB,
                displayed_cpu_util=cpu_util,
                displayed_bandwidth=bandwidth,
            )
        )

    # Honest inputs: busy-ish CPU, true ~90 MB/s link.
    honest_level = decide(cpu_util=60.0, bandwidth=90 * MB)
    # Skewed inputs: VM displays near-idle CPU (the 15x gap) and the
    # bandwidth estimate has collapsed (fluctuation/caching artifact).
    skewed_level = decide(cpu_util=7.0, bandwidth=2 * MB)

    part1_rows = [
        ["honest (CPU 60%, BW 90 MB/s)", f"level {honest_level}"],
        ["skewed (CPU 7%, BW 2 MB/s)", f"level {skewed_level}"],
    ]
    checks.append(
        check(
            honest_level <= 1,
            f"honest metrics give a reasonable level ({honest_level})",
            failures,
        )
    )
    checks.append(
        check(
            skewed_level == 3,
            f"Section II's skewed metrics push the scheme to HEAVY (got {skewed_level})",
            failures,
        )
    )

    # -- Part 2: fluctuation robustness end to end --------------------
    # Long runs: start-up probing must amortize, so the comparison
    # isolates the steady-state fluctuation effect.
    total = max(scaled_bytes(scale), 20 * 10**9)
    regimes = {
        "local cloud": None,  # the profile's mild GaussianJitter
        "EC2-grade": MarkovOnOff(),
    }
    contenders = {
        "DYNAMIC": make_dynamic_factory(),
        "RESOURCE": lambda n: ResourceBasedScheme(_training_table(Compressibility.HIGH)),
        "LIGHT": make_static_factory(1, "LIGHT"),
        "NO": make_static_factory(0, "NO"),
    }
    data: Dict[str, Dict[str, float]] = {}
    rows = []
    for regime, fluct in regimes.items():
        data[regime] = {}
        for name, factory in contenders.items():
            times = []
            for r in range(repeats):
                cfg = ScenarioConfig(
                    scheme_factory=factory,
                    compressibility=Compressibility.HIGH,
                    total_bytes=total,
                    n_background=1,
                    fluctuation=fluct,
                    seed=seed + r,
                )
                times.append(run_transfer_scenario(cfg).completion_time)
            data[regime][name] = statistics.fmean(times)
            rows.append([regime, name, f"{data[regime][name]:.0f}"])

    rendered = format_table(
        ["input", "decision", ""],
        part1_rows,
        title="Part 1: one decision under honest vs skewed displayed metrics",
    ) + "\n\n" + format_table(
        ["fluctuation regime", "scheme", "completion (s)"],
        rows,
        title="Part 2: HIGH data, 1 connection, per fluctuation regime",
    )

    local_best = min(data["local cloud"][s] for s in ("LIGHT", "NO"))
    checks.append(
        check(
            data["local cloud"]["DYNAMIC"] <= 1.25 * local_best,
            "on the paper's local cloud DYNAMIC tracks the best static level "
            f"({data['local cloud']['DYNAMIC']:.0f}s vs {local_best:.0f}s)",
            failures,
        )
    )
    ec2_best = min(data["EC2-grade"][s] for s in ("LIGHT", "NO"))
    checks.append(
        check(
            data["EC2-grade"]["DYNAMIC"] > 1.15 * ec2_best,
            "EC2-grade fluctuation breaks the rate signal the paper's scheme "
            f"relies on (DYNAMIC {data['EC2-grade']['DYNAMIC']:.0f}s vs best "
            f"static {ec2_best:.0f}s) — consistent with the paper evaluating "
            "on its local cloud only",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="ablate-metrics",
        title="Metric skew and fluctuation sensitivity of decision models",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={"part1": {"honest": honest_level, "skewed": skewed_level}, "part2": data},
    )
