"""Figure 6: responsiveness to changes in data compressibility.

The sender alternates between the highly compressible and the already
compressed file every 10 GB (50 GB total, no background traffic).

Expected shapes (asserted): during HIGH segments the scheme compresses
(dominant level >= LIGHT); during LOW segments it backs down toward NO;
the downswitch after HIGH->LOW is detected immediately, while the
upswitch after LOW->HIGH can lag when bck[0] has grown large — "without
compression the application data rate is not affected by the
compressibility of the data" (Section IV-B).
"""

from __future__ import annotations

from typing import List

from ..data.corpus import Compressibility
from ..data.datasource import SwitchingSource
from ..sim.scenario import ScenarioConfig, make_dynamic_factory, run_transfer_scenario
from .common import ExperimentResult
from .fig4_adaptivity_high import render_trace
from .reporting import check

FULL_SEGMENT = 10 * 10**9  # the paper's 10 GB switch granularity


def segment_of(byte_offset: float, segment_bytes: int) -> int:
    return int(byte_offset // segment_bytes)


def run(scale: float = 0.1, seed: int = 61) -> ExperimentResult:
    # Each segment must span enough decision epochs for the scheme to
    # settle (the paper's 10 GB ~= 55 epochs at t=2 s); keep at least
    # ~45 epochs per segment regardless of scale — simulated bytes are
    # cheap, statistical validity is not.
    segment = max(int(FULL_SEGMENT * scale), 4 * 10**9)
    total = 5 * segment

    cfg = ScenarioConfig(
        scheme_factory=make_dynamic_factory(),
        source_factory=lambda: SwitchingSource.alternating(
            Compressibility.HIGH, Compressibility.LOW, segment, total
        ),
        total_bytes=total,
        n_background=0,
        seed=seed,
    )
    result = run_transfer_scenario(cfg)
    rendered = render_trace(result)

    # Attribute each epoch to the data segment it (mostly) carried.
    per_segment_levels: List[List[int]] = [[] for _ in range(5)]
    carried = 0.0
    for epoch in result.epochs:
        idx = min(4, segment_of(carried, segment))
        per_segment_levels[idx].append(epoch.level)
        carried += epoch.app_bytes

    def dominant(levels: List[int]) -> float:
        """Mean level over the second half of a segment (post-transition)."""
        if not levels:
            return -1.0
        tail = levels[len(levels) // 2 :]
        return sum(tail) / len(tail)

    checks: List[str] = []
    failures: List[str] = []

    high_segments = [0, 2, 4]
    low_segments = [1, 3]
    seg_means = {i: dominant(per_segment_levels[i]) for i in range(5)}

    # 1. The first HIGH segment (no backoff history yet) must settle on
    #    compression.
    checks.append(
        check(
            seg_means[0] >= 0.7,
            f"first HIGH segment is compressed (settled mean level {seg_means[0]:.1f})",
            failures,
        )
    )
    # 2. Every LOW segment backs down toward NO.
    low_ok = all(seg_means[i] <= 0.8 for i in low_segments)
    checks.append(
        check(
            low_ok,
            "LOW segments fall back toward NO (settled mean level <= 0.8): "
            + ", ".join(f"seg{i}={seg_means[i]:.1f}" for i in low_segments),
            failures,
        )
    )
    # 3. Downswitches are immediate: within a handful of epochs of each
    #    HIGH->LOW boundary the level has dropped ("the opposite case is
    #    detected immediately by our algorithm", Section IV-B).
    prompt_downswitch = all(
        min(per_segment_levels[i][:6] or [0]) <= 1 for i in low_segments
    )
    checks.append(
        check(
            prompt_downswitch,
            "HIGH->LOW is detected within a few epochs (level drops promptly)",
            failures,
        )
    )
    # 4. The paper's asymmetry: after long uncompressed phases, large
    #    bck[0] delays the LOW->HIGH upswitch.  Quantify the upswitch
    #    delay of later HIGH segments (may exceed the whole segment at
    #    full scale — the documented cost of the backoff design).
    def upswitch_delay_epochs(levels_in_seg: List[int]) -> int:
        for idx, lvl in enumerate(levels_in_seg):
            if lvl >= 1:
                return idx
        return len(levels_in_seg)

    def downswitch_delay_epochs(levels_in_seg: List[int]) -> int:
        for idx, lvl in enumerate(levels_in_seg):
            if lvl <= 1:
                return idx
        return len(levels_in_seg)

    up_delays = {i: upswitch_delay_epochs(per_segment_levels[i]) for i in (2, 4)}
    down_delays = {i: downswitch_delay_epochs(per_segment_levels[i]) for i in low_segments}
    checks.append(
        check(
            max(up_delays.values()) >= max(down_delays.values()),
            "upswitching lags downswitching (backoff on level 0): up delays "
            + ", ".join(f"seg{i}={d}" for i, d in up_delays.items())
            + " epochs vs down delays "
            + ", ".join(f"seg{i}={d}" for i, d in down_delays.items())
            + " epochs",
            failures,
        )
    )
    # 5. Regime separation where the scheme *has* switched: the first
    #    HIGH segment must clearly exceed every LOW segment.
    separation = all(seg_means[0] > seg_means[i] + 0.25 for i in low_segments)
    checks.append(
        check(
            separation,
            f"level tracks compressibility where settled "
            f"(HIGH seg0 {seg_means[0]:.2f} vs LOW "
            + ", ".join(f"seg{i} {seg_means[i]:.2f}" for i in low_segments)
            + ")",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="fig6",
        title="Responsiveness to changes in data compressibility",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={
            "segment_levels": per_segment_levels,
            "completion_time": result.completion_time,
        },
    )
