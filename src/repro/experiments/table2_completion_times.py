"""Table II: completion times of the 50 GB sample job.

3 compressibility classes x {0,1,2,3} background connections x
{NO, LIGHT, MEDIUM, HEAVY, DYNAMIC}, mean (SD) over repeats.

Expected shapes (asserted):
* LIGHT wins the HIGH column at every concurrency;
* NO wins MODERATE and LOW with no background traffic;
* MEDIUM overtakes LIGHT on MODERATE data at 3 connections (the
  paper's crossover);
* DYNAMIC is never more than ~25 % slower than the best static level
  (paper: at most 22 %);
* DYNAMIC beats NO by ~4x on HIGH data with 3 connections.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Tuple

from ..data.corpus import Compressibility
from ..sim.scenario import ScenarioConfig, run_transfer_scenario
from .common import SCHEME_ORDER, ExperimentResult, scaled_bytes, scheme_factories
from .reporting import check, format_table

CONCURRENCY_LEVELS = (0, 1, 2, 3)
CLASS_ORDER = (Compressibility.HIGH, Compressibility.MODERATE, Compressibility.LOW)

Cell = Tuple[int, Compressibility, str]  # (n_background, class, scheme)


def run_cells(
    scale: float, repeats: int, seed: int
) -> Dict[Cell, List[float]]:
    factories = scheme_factories()
    total = scaled_bytes(scale)
    results: Dict[Cell, List[float]] = {}
    for n_background in CONCURRENCY_LEVELS:
        for cls in CLASS_ORDER:
            for scheme_name in SCHEME_ORDER:
                times = []
                for r in range(repeats):
                    cfg = ScenarioConfig(
                        scheme_factory=factories[scheme_name],
                        compressibility=cls,
                        total_bytes=total,
                        n_background=n_background,
                        seed=seed + 1000 * r,
                    )
                    times.append(run_transfer_scenario(cfg).completion_time)
                results[(n_background, cls, scheme_name)] = times
    return results


def run(scale: float = 0.1, repeats: int = 3, seed: int = 41) -> ExperimentResult:
    results = run_cells(scale, repeats, seed)

    def mean(cell: Cell) -> float:
        return statistics.fmean(results[cell])

    sections = []
    for n_background in CONCURRENCY_LEVELS:
        rows = []
        for scheme_name in SCHEME_ORDER:
            row = [scheme_name]
            for cls in CLASS_ORDER:
                times = results[(n_background, cls, scheme_name)]
                m = statistics.fmean(times)
                sd = statistics.stdev(times) if len(times) > 1 else 0.0
                row.append(f"{m:.0f} ({sd:.0f})")
            rows.append(row)
        sections.append(
            format_table(
                ["level", "HIGH", "MODERATE", "LOW"],
                rows,
                title=f"-- {n_background} concurrent TCP connection(s), seconds mean (SD)",
            )
        )
    rendered = "\n\n".join(sections)

    checks: List[str] = []
    failures: List[str] = []
    statics = [s for s in SCHEME_ORDER if s != "DYNAMIC"]

    light_wins_high = all(
        min(statics, key=lambda s: mean((c, Compressibility.HIGH, s))) == "LIGHT"
        for c in CONCURRENCY_LEVELS
    )
    checks.append(check(light_wins_high, "LIGHT is the best static level on HIGH at every concurrency", failures))

    no_wins_unloaded = all(
        min(statics, key=lambda s: mean((0, cls, s))) == "NO"
        for cls in (Compressibility.MODERATE, Compressibility.LOW)
    )
    checks.append(check(no_wins_unloaded, "NO wins MODERATE and LOW with no background traffic", failures))

    crossover = mean((3, Compressibility.MODERATE, "MEDIUM")) < mean(
        (3, Compressibility.MODERATE, "LIGHT")
    )
    checks.append(
        check(crossover, "MEDIUM overtakes LIGHT on MODERATE data at 3 connections", failures)
    )

    worst_dyn = 0.0
    for n_background in CONCURRENCY_LEVELS:
        for cls in CLASS_ORDER:
            best = min(mean((n_background, cls, s)) for s in statics)
            dyn = mean((n_background, cls, "DYNAMIC"))
            worst_dyn = max(worst_dyn, dyn / best)
    # The paper's 22 % bound holds for 50 GB runs where the initial
    # probing amortizes; scaled-down runs carry the same fixed probing
    # cost over less data, so the tolerance widens below scale 0.1.
    tolerance = 1.30 if scale >= 0.1 else 1.50
    checks.append(
        check(
            worst_dyn <= tolerance,
            f"DYNAMIC within ~{100 * (tolerance - 1):.0f}% of the best static "
            f"level everywhere (worst {100 * (worst_dyn - 1):.0f}%; paper: at "
            f"most 22% at full scale)",
            failures,
        )
    )

    speedup = mean((3, Compressibility.HIGH, "NO")) / mean(
        (3, Compressibility.HIGH, "DYNAMIC")
    )
    checks.append(
        check(
            speedup >= 3.0,
            f"DYNAMIC improves throughput up to ~4x over NO on contended HIGH "
            f"(got {speedup:.1f}x)",
            failures,
        )
    )

    heavy_always_worst_on_low = all(
        max(statics, key=lambda s: mean((c, Compressibility.LOW, s))) == "HEAVY"
        for c in CONCURRENCY_LEVELS
    )
    checks.append(
        check(heavy_always_worst_on_low, "HEAVY is always the worst choice on LOW", failures)
    )

    return ExperimentResult(
        experiment_id="table2",
        title="Average completion times of the sample job",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={
            f"{c}/{cls.value}/{s}": results[(c, cls, s)]
            for (c, cls, s) in results.keys()
            for _ in [0]
        },
    )
