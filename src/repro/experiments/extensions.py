"""Extension experiments beyond the paper's evaluation.

* ``ext-fileio`` — the paper's explicit future work (Section VI):
  adaptive compression on the file-write path, with and without a
  XEN-style host write-back cache.  Shows that the cache corrupts the
  application-data-rate signal and quantifies the resulting penalty.
* ``ext-memory`` — robustifying the rate signal under EC2-grade
  fluctuation: a naive EWMA pre-filter (negative result) vs per-level
  rate memory (:class:`repro.schemes.memory.MemoryRateScheme`), which
  fixes the misattribution weakness quantified by ``ablate-metrics``.
* ``ext-fairness`` — two adaptive senders sharing one link: both
  converge and the bandwidth split stays near-fair (Jain index), i.e.
  the scheme composes with itself without collapse or capture.
* ``ext-pipeline`` — the parallel block-compression pipeline
  (:class:`repro.core.pipeline.ParallelBlockEncoder`) on *real* CPU:
  byte-identity with the serial path is enforced unconditionally; the
  speed checks adapt to the machine's core count, since a single-core
  host cannot exhibit compression parallelism.
* ``ext-decode`` — the receive-side mirror of ``ext-pipeline``: the
  parallel decode pipeline
  (:class:`repro.core.pipeline.ParallelBlockDecoder`) must restore
  byte-identical plaintext across every (compressibility x level x
  workers) cell, match the serial resync reader under injected faults,
  and keep its machinery overhead bounded; speedups are asserted only
  where cores exist to pay for them.
* ``ext-control`` — the cross-flow control plane (ROADMAP item 2):
  eight transfers contend for one CPU core and one NIC; the
  :class:`~repro.control.FleetController` policies (fair-share /
  greedy-throughput / hill-climb) run against per-flow-isolated
  Algorithm 1, and the fleet-win shape claims (greedy beats isolated
  decisions on aggregate goodput and p99 completion, fair-share never
  collapses) are codified as checks.
* ``ext-faults`` — the adversarial testbed for Section III-B's
  self-contained-block claim: seeded fault injection (bit-flips,
  truncation, reset) swept across fault counts × compression levels,
  decoded in resync mode.  Asserts graceful degradation — goodput loss
  proportional to the fault rate, at most one block lost per isolated
  corruption, never silently wrong bytes, never a hang or thread leak.
"""

from __future__ import annotations

import io
import os
import statistics
import threading
import time
from typing import Dict, List, Tuple

from ..codecs.block import BlockReader
from ..codecs.bz2_codec import Bz2Codec
from ..codecs.errors import CodecError
from ..core.pipeline import make_block_encoder
from ..core.recovery import ResyncBlockReader
from ..core.stream import StaticBlockWriter
from ..io.faults import FaultPlan, FaultyReader, FaultyWriter
from ..data.corpus import Compressibility, generate
from ..data.datasource import RepeatingSource
from ..schemes.memory import MemoryRateScheme
from ..schemes.rate_based import RateBasedScheme
from ..schemes.smoothed import SmoothedRateScheme
from ..schemes.static import StaticScheme
from ..sim.calibration import CodecSimModel
from ..sim.engine import Environment
from ..sim.filetransfer import run_file_write_scenario
from ..sim.fleet import FleetFlowSpec, FleetResult, run_fleet_scenario
from ..sim.fluctuation import MarkovOnOff
from ..sim.hypervisor import EVALUATION_PROFILE
from ..sim.link import SharedLink
from ..sim.rng import RngStreams
from ..sim.scenario import (
    ScenarioConfig,
    make_dynamic_factory,
    make_static_factory,
    run_transfer_scenario,
)
from ..sim.transfer import TransferSim
from .common import ExperimentResult, scaled_bytes
from .reporting import check, format_table

FILE_SCHEMES = ("NO", "LIGHT", "MEDIUM", "HEAVY", "DYNAMIC")


def _file_scheme(name: str, n_levels: int):
    if name == "DYNAMIC":
        return RateBasedScheme(n_levels)
    level = {"NO": 0, "LIGHT": 1, "MEDIUM": 2, "HEAVY": 3}[name]
    return StaticScheme(n_levels, level, name=name)


def run_fileio(scale: float = 0.1, seed: int = 81, repeats: int = 2) -> ExperimentResult:
    """Adaptive compression for file writes, honest vs cached disk."""
    total = max(scaled_bytes(scale), 8 * 10**9)
    model = CodecSimModel()
    data: Dict[str, Dict[str, float]] = {}
    rows = []
    for cached in (False, True):
        disk_name = "XEN cached" if cached else "honest (KVM)"
        data[disk_name] = {}
        for scheme_name in FILE_SCHEMES:
            times = []
            for r in range(repeats):
                source = RepeatingSource.from_corpus(Compressibility.HIGH, total)
                result = run_file_write_scenario(
                    scheme=_file_scheme(scheme_name, model.n_levels),
                    source=source,
                    cached=cached,
                    seed=seed + r,
                    model=model,
                )
                times.append(result.completion_time)
            data[disk_name][scheme_name] = statistics.fmean(times)
            rows.append([disk_name, scheme_name, f"{data[disk_name][scheme_name]:.0f}"])
    rendered = format_table(
        ["disk path", "scheme", "completion incl. fsync (s)"],
        rows,
        title=f"Compressed file write of {total / 1e9:.0f} GB HIGH data",
    )

    checks: List[str] = []
    failures: List[str] = []
    statics = [s for s in FILE_SCHEMES if s != "DYNAMIC"]

    honest = data["honest (KVM)"]
    best_honest = min(honest[s] for s in statics)
    checks.append(
        check(
            honest["LIGHT"] < 0.6 * honest["NO"],
            "on an honest disk, compression pays on the file path "
            f"(LIGHT {honest['LIGHT']:.0f}s vs NO {honest['NO']:.0f}s)",
            failures,
        )
    )
    checks.append(
        check(
            honest["DYNAMIC"] <= 1.25 * best_honest,
            f"on an honest disk the rate signal works: DYNAMIC "
            f"{honest['DYNAMIC']:.0f}s vs best static {best_honest:.0f}s",
            failures,
        )
    )
    cached = data["XEN cached"]
    best_cached = min(cached[s] for s in statics)
    dyn_penalty = cached["DYNAMIC"] / best_cached
    honest_penalty = honest["DYNAMIC"] / best_honest
    checks.append(
        check(
            dyn_penalty > honest_penalty + 0.15,
            "the write-back cache corrupts the rate signal: DYNAMIC's "
            f"penalty grows from {100 * (honest_penalty - 1):.0f}% (honest) to "
            f"{100 * (dyn_penalty - 1):.0f}% (cached) — the paper's Section VI "
            "obstacle, quantified",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="ext-fileio",
        title="Future work: adaptive compression on the file-write path",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data=data,
    )


def run_memory(scale: float = 0.1, seed: int = 82, repeats: int = 3) -> ExperimentResult:
    """Robustifying the rate signal under EC2-grade fluctuation.

    Compares three training-free designs against the static oracle:
    the paper's raw pairwise comparison, a naive EWMA pre-filter (the
    obvious fix — measured here as a *negative result*), and per-level
    rate memory (:class:`~repro.schemes.memory.MemoryRateScheme`),
    which removes the misattribution of link dips to level changes.
    """
    total = max(scaled_bytes(scale), 20 * 10**9)
    contenders = {
        "DYNAMIC (paper, raw rates)": make_dynamic_factory(),
        "DYNAMIC-EWMA (naive filter)": lambda n: SmoothedRateScheme(n),
        "DYNAMIC-MEM (per-level memory)": lambda n: MemoryRateScheme(n),
        "LIGHT (static oracle)": make_static_factory(1, "LIGHT"),
    }
    data: Dict[str, float] = {}
    calm: Dict[str, float] = {}
    rows = []
    for name, factory in contenders.items():
        times = []
        for r in range(repeats):
            cfg = ScenarioConfig(
                scheme_factory=factory,
                compressibility=Compressibility.HIGH,
                total_bytes=total,
                n_background=1,
                fluctuation=MarkovOnOff(),
                seed=seed + r,
            )
            times.append(run_transfer_scenario(cfg).completion_time)
        data[name] = statistics.fmean(times)
        cfg = ScenarioConfig(
            scheme_factory=factory,
            compressibility=Compressibility.HIGH,
            total_bytes=total,
            n_background=0,
            seed=seed,
        )
        calm[name] = run_transfer_scenario(cfg).completion_time
        rows.append([name, f"{data[name]:.0f}", f"{calm[name]:.0f}"])
    rendered = format_table(
        ["scheme", "EC2-grade fluct (s)", "calm local cloud (s)"],
        rows,
        title="HIGH data, 1 connection: robustness of the rate signal",
    )

    checks: List[str] = []
    failures: List[str] = []
    oracle = data["LIGHT (static oracle)"]
    raw_gap = data["DYNAMIC (paper, raw rates)"] - oracle
    ewma_gap = data["DYNAMIC-EWMA (naive filter)"] - oracle
    mem_gap = data["DYNAMIC-MEM (per-level memory)"] - oracle
    checks.append(
        check(
            raw_gap > 0,
            f"raw rates lose time to fluctuation (+{raw_gap:.0f}s over the oracle)",
            failures,
        )
    )
    checks.append(
        check(
            ewma_gap > 0.7 * raw_gap,
            f"the naive EWMA filter does NOT fix it "
            f"(+{ewma_gap:.0f}s vs raw +{raw_gap:.0f}s) — negative result",
            failures,
        )
    )
    checks.append(
        check(
            mem_gap <= 0.7 * raw_gap,
            f"per-level memory recovers a large share of the loss "
            f"(+{mem_gap:.0f}s vs raw +{raw_gap:.0f}s over the oracle)",
            failures,
        )
    )
    checks.append(
        check(
            calm["DYNAMIC-MEM (per-level memory)"]
            <= 1.08 * calm["DYNAMIC (paper, raw rates)"],
            "memory costs nothing on the calm local cloud "
            f"({calm['DYNAMIC-MEM (per-level memory)']:.0f}s vs "
            f"{calm['DYNAMIC (paper, raw rates)']:.0f}s)",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="ext-memory",
        title="Extension: robust rate signals under fluctuation",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={"fluctuating": data, "calm": calm},
    )


def jain_index(values: List[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair."""
    if not values:
        raise ValueError("need at least one value")
    num = sum(values) ** 2
    den = len(values) * sum(v * v for v in values)
    return num / den if den else 0.0


def run_fairness(scale: float = 0.1, seed: int = 83) -> ExperimentResult:
    """Two adaptive senders sharing one link."""
    total = max(scaled_bytes(scale) // 2, 5 * 10**9)
    rngs = RngStreams(seed)
    env = Environment()
    model = CodecSimModel()
    profile = EVALUATION_PROFILE
    link = SharedLink(env, capacity=profile.net_app_rate, name="nic")
    profile.net_fluctuation.start(env, link, rngs.stream("fluct"))

    sims = []
    procs = []
    for i in range(2):
        source = RepeatingSource.from_corpus(Compressibility.HIGH, total)
        sim = TransferSim(
            env,
            link,
            source,
            RateBasedScheme(model.n_levels),
            model,
            rngs.stream(f"sender{i}"),
            epoch_seconds=2.0,
            n_background=1,  # the *other* sender is its co-located load
            foreground_weight=1.0,  # symmetric senders
        )
        sims.append(sim)
        procs.append(env.process(sim.run(), name=f"sender{i}"))
    while not all(p.triggered for p in procs):
        before = env.now
        env.run(until=env.now + 300.0)
        if env.now == before:
            raise RuntimeError("fairness scenario stalled")

    results = [p.value for p in procs]
    rates = [r.mean_app_rate for r in results]
    index = jain_index(rates)
    level_share = []
    for r in results:
        levels = [e.level for e in r.epochs]
        tail = levels[len(levels) // 2 :]
        level_share.append(tail.count(1) / max(1, len(tail)))

    rows = [
        [f"sender {i}", f"{r.completion_time:.0f}", f"{r.mean_app_rate / 1e6:.1f}",
         f"{100 * level_share[i]:.0f}%"]
        for i, r in enumerate(results)
    ]
    rendered = format_table(
        ["sender", "completion (s)", "mean app rate (MB/s)", "late epochs at LIGHT"],
        rows,
        title=f"Two adaptive senders, {total / 1e9:.0f} GB HIGH data each "
        f"(Jain index {index:.3f})",
    )

    checks: List[str] = []
    failures: List[str] = []
    checks.append(
        check(
            index > 0.95,
            f"the split stays near-fair (Jain index {index:.3f})",
            failures,
        )
    )
    checks.append(
        check(
            all(s > 0.6 for s in level_share),
            "both senders converge to the good level "
            f"({', '.join(f'{100 * s:.0f}%' for s in level_share)} at LIGHT)",
            failures,
        )
    )
    ratio = max(r.completion_time for r in results) / min(
        r.completion_time for r in results
    )
    checks.append(
        check(
            ratio < 1.15,
            f"completion times within 15% of each other ({ratio:.2f}x)",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="ext-fairness",
        title="Extension: two adaptive senders sharing one link",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={"rates": rates, "jain": index, "level_share": level_share},
    )


class _DevNull:
    """Counting sink that discards frames (isolates compression cost)."""

    def __init__(self) -> None:
        self.nbytes = 0

    def write(self, data) -> int:
        n = data.nbytes if isinstance(data, memoryview) else len(data)
        self.nbytes += n
        return n


def _pipeline_pass(data: bytes, workers: int, block_size: int, codec) -> float:
    """Seconds to push ``data`` through the encoder at ``workers``."""
    sink = _DevNull()
    encoder = make_block_encoder(sink, workers=workers)
    t0 = time.perf_counter()
    with memoryview(data) as view:
        for offset in range(0, len(data), block_size):
            encoder.write_block(view[offset : offset + block_size], codec)
        encoder.flush()
    elapsed = time.perf_counter() - t0
    encoder.close()
    return elapsed


def run_pipeline(
    scale: float = 0.1, seed: int = 84, repeats: int = 3, workers: int = 4
) -> ExperimentResult:
    """Parallel block compression on real CPU: identity + speedup.

    Unlike the other extensions this runs actual codecs on actual
    threads, so the speed checks are machine-dependent: on a single
    core the pipeline *cannot* be faster than serial (there is nothing
    to overlap with), and we only require that its overhead stays
    bounded.  The byte-identity check is unconditional — it is the wire
    -format contract the whole design rests on.
    """
    if workers < 2:
        raise ValueError("workers must be >= 2 (1 is the serial baseline)")
    block_size = 128 * 1024
    total = max(int(scale * 64) * 2**20, 2 * 2**20)
    codec = Bz2Codec()
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )

    data = generate(Compressibility.MODERATE, total, seed=seed)

    # Byte identity: serial vs parallel, same data, same codec.
    streams = []
    for w in (1, workers):
        sink = io.BytesIO()
        encoder = make_block_encoder(sink, workers=w)
        with memoryview(data) as view:
            for offset in range(0, len(data), block_size):
                encoder.write_block(view[offset : offset + block_size], codec)
        encoder.close()
        streams.append(sink.getvalue())
    identical = streams[0] == streams[1]

    worker_counts = tuple(sorted({1, 2, workers}))
    seconds: Dict[int, float] = {
        w: min(_pipeline_pass(data, w, block_size, codec) for _ in range(repeats))
        for w in worker_counts
    }
    throughput = {w: total / s / 1e6 for w, s in seconds.items()}
    rows = [
        [f"{w} worker{'s' if w > 1 else ''}", f"{seconds[w]:.3f}",
         f"{throughput[w]:.1f}", f"{seconds[1] / seconds[w]:.2f}x"]
        for w in worker_counts
    ]
    rendered = format_table(
        ["encoder", "best of runs (s)", "MB/s", "speedup"],
        rows,
        title=f"bz2 pipeline over {total / 2**20:.0f} MiB MODERATE data "
        f"({cores} usable core{'s' if cores != 1 else ''})",
    )

    checks: List[str] = []
    failures: List[str] = []
    checks.append(
        check(
            identical,
            f"{workers}-worker wire stream is byte-identical to serial "
            f"({len(streams[0]):,} bytes)",
            failures,
        )
    )
    speedup = seconds[1] / seconds[workers]
    if cores >= 2:
        checks.append(
            check(
                speedup >= 0.95,
                f"with {cores} cores, {workers} workers do not lose to serial "
                f"({speedup:.2f}x)",
                failures,
            )
        )
    else:
        checks.append(
            check(
                speedup >= 0.60,
                "on a single core the pipeline's overhead stays bounded "
                f"({speedup:.2f}x of serial; parallel speedup needs >1 core)",
                failures,
            )
        )

    return ExperimentResult(
        experiment_id="ext-pipeline",
        title="Extension: parallel block-compression pipeline",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={
            "cores": cores,
            "identical": identical,
            "seconds": {str(w): s for w, s in seconds.items()},
            "throughput_mbps": {str(w): t for w, t in throughput.items()},
        },
    )


#: ext-faults sweep: level name -> (static level, corpus compressibility).
#: "STORED" drives incompressible data through LIGHT so every damaged
#: block exercises the stored-fallback (raw payload under codec id 0).
FAULT_CASES: Dict[str, Tuple[int, Compressibility]] = {
    "NO": (0, Compressibility.HIGH),
    "LIGHT": (1, Compressibility.HIGH),
    "MEDIUM": (2, Compressibility.HIGH),
    "HEAVY": (3, Compressibility.HIGH),
    "STORED": (1, Compressibility.LOW),
}

FAULT_COUNTS = (0, 1, 4, 8)


def _pack_static(data: bytes, level: int, block_size: int) -> bytes:
    """Frame ``data`` with one static level (the sweep's clean wire)."""
    sink = io.BytesIO()
    writer = StaticBlockWriter(sink, level, block_size=block_size)
    writer.write(data)
    writer.close()
    return sink.getvalue()


def _verify_subsequence(blocks: List[bytes], decoded: bytes) -> Tuple[int, bool]:
    """Greedy-match ``decoded`` against the original block sequence.

    Returns ``(blocks_lost, clean)`` where ``clean`` means the decoded
    bytes are exactly an ordered subsequence of the original blocks —
    the "never silently wrong bytes" property.
    """
    pos = 0
    matched = 0
    for block in blocks:
        if decoded[pos : pos + len(block)] == block:
            pos += len(block)
            matched += 1
    return len(blocks) - matched, pos == len(decoded)


def run_faults(scale: float = 0.1, seed: int = 85) -> ExperimentResult:
    """Fault-injection sweep: corruption cost on the block transport.

    For every compression level (plus the stored fallback) and a
    rising injected-corruption count, the clean wire stream is run
    through a seeded :class:`~repro.io.faults.FaultyReader` into a
    :class:`~repro.core.recovery.ResyncBlockReader`, and strictness is
    cross-checked with the plain reader.  The checks codify "one bad
    block costs one block": goodput loss stays proportional to the
    fault count, decoded bytes are always an ordered subsequence of
    the original blocks, and nothing hangs or leaks — including a real
    localhost-socket leg with faults injected on the live connection.
    """
    block_size = 32 * 1024
    total = max(int(scale * 16 * 2**20), 2**20)
    cell_deadline = 120.0  # wall-clock watchdog per sweep cell
    base_threads = threading.active_count()

    rows = []
    checks: List[str] = []
    failures: List[str] = []
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    zero_fault_clean = True
    all_subsequence = True
    all_bounded_loss = True
    all_within_deadline = True
    strict_never_wrong = True

    for case_name, (level, compressibility) in FAULT_CASES.items():
        payload = generate(compressibility, total, seed=seed)
        blocks = [
            payload[off : off + block_size]
            for off in range(0, len(payload), block_size)
        ]
        wire = _pack_static(payload, level, block_size)
        data[case_name] = {}
        for faults in FAULT_COUNTS:
            t_start = time.perf_counter()
            plan = FaultPlan.seeded(
                seed + faults * 101 + level, len(wire), bitflips=faults
            )
            reader = ResyncBlockReader(FaultyReader(io.BytesIO(wire), plan))
            decoded = b"".join(reader)
            lost, clean = _verify_subsequence(blocks, decoded)
            elapsed = time.perf_counter() - t_start
            goodput = len(decoded) / len(payload)

            # Strict-mode cross-check on the same faulted bytes: either
            # an attributed CodecError or a byte-perfect result (a flip
            # can land in dead header bits) — never wrong data.
            strict_sink = io.BytesIO()
            fw = FaultyWriter(strict_sink, plan)
            fw.write(wire)
            try:
                strict = b"".join(BlockReader(io.BytesIO(strict_sink.getvalue())))
                if strict != payload:
                    strict_never_wrong = False
            except CodecError:
                pass

            if faults == 0 and (decoded != payload or lost or reader.blocks_skipped):
                zero_fault_clean = False
            all_subsequence &= clean
            # Proportional degradation: an isolated corruption costs at
            # most one block; colliding faults can only cost less.
            all_bounded_loss &= lost <= max(faults, reader.blocks_skipped)
            all_bounded_loss &= len(payload) - len(decoded) <= faults * 2 * block_size
            all_within_deadline &= elapsed < cell_deadline
            data[case_name][str(faults)] = {
                "goodput": goodput,
                "blocks_lost": lost,
                "blocks_skipped": reader.blocks_skipped,
                "bytes_skipped": reader.bytes_skipped,
            }
            rows.append(
                [
                    case_name,
                    str(faults),
                    f"{100 * goodput:.2f}%",
                    str(lost),
                    str(reader.blocks_skipped),
                    f"{elapsed:.2f}",
                ]
            )

    rendered = format_table(
        ["level", "faults", "goodput", "blocks lost", "regions skipped", "wall (s)"],
        rows,
        title=f"Seeded bit-flip sweep over {total / 2**20:.0f} MiB, "
        f"{block_size // 1024} KiB blocks, resync decoding",
    )

    checks.append(
        check(
            zero_fault_clean,
            "zero injected faults decode byte-perfectly at every level",
            failures,
        )
    )
    checks.append(
        check(
            all_subsequence,
            "decoded output is always an ordered subsequence of the original "
            "blocks (no silently wrong bytes, resync mode)",
            failures,
        )
    )
    checks.append(
        check(
            strict_never_wrong,
            "strict mode never returns wrong bytes (error or byte-perfect)",
            failures,
        )
    )
    checks.append(
        check(
            all_bounded_loss,
            "goodput loss proportional to fault count: <= 1 block per isolated "
            "corruption, <= 2 blocks of bytes per fault in the worst case",
            failures,
        )
    )
    checks.append(
        check(
            all_within_deadline,
            f"every sweep cell terminated within the {cell_deadline:.0f}s watchdog",
            failures,
        )
    )

    # Live-socket leg: faults on a real localhost connection, resync
    # receiver; must complete, skip at most one block per corruption,
    # and leave no thread behind.
    from ..data.datasource import RepeatingSource
    from ..io.sockets import run_socket_transfer

    socket_faults = 2
    socket_bytes = min(total, 2**20)
    source = RepeatingSource.from_corpus(Compressibility.HIGH, socket_bytes)
    # Place the flips well inside the compressed wire volume (HIGH data
    # compresses ~10x, so 1/20th of the app bytes is safely on-wire).
    plan = FaultPlan.seeded(seed + 999, socket_bytes // 20, bitflips=socket_faults)
    result = run_socket_transfer(
        source,
        static_level=1,
        block_size=block_size,
        resync=True,
        wrap_sink=lambda sink: FaultyWriter(sink, plan),
    )
    time.sleep(0.2)
    thread_delta = threading.active_count() - base_threads
    data["socket"] = {
        "resync": {
            "app_bytes": result.app_bytes,
            "receiver_bytes": result.receiver_bytes,
            "blocks_skipped": result.blocks_skipped,
            "thread_delta": thread_delta,
        }
    }
    checks.append(
        check(
            result.blocks_skipped <= socket_faults
            and result.receiver_bytes >= result.app_bytes - socket_faults * 2 * block_size,
            f"live socket leg degrades gracefully ({result.blocks_skipped} regions "
            f"skipped for {socket_faults} injected faults, "
            f"{result.receiver_bytes}/{result.app_bytes} bytes delivered)",
            failures,
        )
    )
    checks.append(
        check(
            thread_delta == 0,
            "thread count returns to baseline after the socket leg "
            f"(delta {thread_delta})",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="ext-faults",
        title="Extension: fault injection & recovery on the block transport",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data=data,
    )


#: ext-decode sweep: every paper level x three compressibility classes.
DECODE_LEVELS: Tuple[int, ...] = (0, 1, 2, 3)
DECODE_CLASSES: Tuple[Compressibility, ...] = (
    Compressibility.HIGH,
    Compressibility.MODERATE,
    Compressibility.LOW,
)
DECODE_WORKER_COUNTS: Tuple[int, ...] = (1, 2, 4)


def run_decode(
    scale: float = 0.1, seed: int = 86, repeats: int = 2, workers: int = 4
) -> ExperimentResult:
    """Parallel receive-path decode: identity, resync parity, overhead.

    The decode mirror of ``ext-pipeline``: for every (compressibility
    class x compression level x worker count) cell the
    :class:`~repro.core.pipeline.ParallelBlockDecoder` must restore the
    exact plaintext the serial :class:`~repro.codecs.block.BlockReader`
    does — and with seeded bit-flips injected on the wire, the parallel
    decoder in resync mode must match the serial
    :class:`~repro.core.recovery.ResyncBlockReader` block for block and
    skip for skip.  Speed checks are core-aware: a single-core host
    cannot exhibit decompression parallelism, so only the pipeline's
    overhead bound applies there.
    """
    from ..core.buffers import BufferPool
    from ..core.pipeline import ParallelBlockDecoder, make_block_decoder

    block_size = 32 * 1024
    total = max(int(scale * 16 * 2**20), 2**20)
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )

    rows = []
    checks: List[str] = []
    failures: List[str] = []
    data: Dict[str, Dict] = {"cores": cores, "cells": {}}
    all_identical = True
    all_resync_match = True

    for compressibility in DECODE_CLASSES:
        payload = generate(compressibility, total, seed=seed)
        for level in DECODE_LEVELS:
            wire = _pack_static(payload, level, block_size)
            serial = b"".join(BlockReader(io.BytesIO(wire)))
            plan = FaultPlan.seeded(seed + level * 7, len(wire), bitflips=3)
            faulted = io.BytesIO()
            FaultyWriter(faulted, plan).write(wire)
            faulted_wire = faulted.getvalue()
            resync_serial = ResyncBlockReader(io.BytesIO(faulted_wire))
            resync_blocks = list(resync_serial)
            cell_key = f"{compressibility.value}/{level}"
            cell: Dict[str, Dict] = {}
            for n in DECODE_WORKER_COUNTS:
                decoder = make_block_decoder(
                    io.BytesIO(wire), workers=n, pool=BufferPool()
                )
                decoded = b"".join(decoder)
                decoder.close()
                identical = decoded == serial == payload
                all_identical &= identical

                rdec = make_block_decoder(
                    io.BytesIO(faulted_wire),
                    workers=n,
                    resync=True,
                    pool=BufferPool(),
                )
                rblocks = list(rdec)
                rdec.close()
                resync_match = (
                    rblocks == resync_blocks
                    and rdec.blocks_skipped == resync_serial.blocks_skipped
                )
                all_resync_match &= resync_match
                cell[str(n)] = {
                    "identical": identical,
                    "resync_match": resync_match,
                    "blocks_skipped": rdec.blocks_skipped,
                }
            data["cells"][cell_key] = cell
            rows.append(
                [
                    compressibility.value,
                    str(level),
                    "yes" if all(c["identical"] for c in cell.values()) else "NO",
                    "yes" if all(c["resync_match"] for c in cell.values()) else "NO",
                    str(cell[str(DECODE_WORKER_COUNTS[-1])]["blocks_skipped"]),
                ]
            )

    # Overhead/speedup leg on the CPU-bound MEDIUM level.
    perf_payload = generate(Compressibility.MODERATE, total, seed=seed + 1)
    perf_wire = _pack_static(perf_payload, 2, block_size)

    def _decode_pass(n: int) -> float:
        source = io.BytesIO(perf_wire)
        decoder = (
            BlockReader(source, pool=BufferPool())
            if n == 0
            else ParallelBlockDecoder(source, workers=n, pool=BufferPool())
        )
        t0 = time.perf_counter()
        for _ in decoder:
            pass
        elapsed = time.perf_counter() - t0
        decoder.close()
        return elapsed

    seconds = {n: min(_decode_pass(n) for _ in range(repeats)) for n in (0, 1, workers)}
    data["seconds"] = {str(n): s for n, s in seconds.items()}

    rendered = format_table(
        ["class", "level", "identical@1/2/4", "resync parity", "regions skipped"],
        rows,
        title=f"Parallel decode sweep over {total / 2**20:.0f} MiB per class, "
        f"{block_size // 1024} KiB blocks ({cores} usable "
        f"core{'s' if cores != 1 else ''})",
    )

    checks.append(
        check(
            all_identical,
            "every (class x level x workers) cell decodes byte-identical to "
            "the serial reader",
            failures,
        )
    )
    checks.append(
        check(
            all_resync_match,
            "with injected faults, parallel resync decode matches the serial "
            "ResyncBlockReader block-for-block and skip-for-skip",
            failures,
        )
    )
    overhead = seconds[0] / seconds[1]
    checks.append(
        check(
            overhead >= 0.80,
            f"1-worker pipeline overhead stays bounded at experiment scale "
            f"({overhead:.2f}x of serial)",
            failures,
        )
    )
    if cores >= 2:
        speedup = seconds[0] / seconds[workers]
        checks.append(
            check(
                speedup >= 0.95,
                f"with {cores} cores, {workers} decode workers do not lose to "
                f"serial ({speedup:.2f}x)",
                failures,
            )
        )

    return ExperimentResult(
        experiment_id="ext-decode",
        title="Extension: parallel receive-path decode pipeline",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data=data,
    )


FLEET_ARMS = ("uncontrolled", "fair-share", "greedy-throughput", "hill-climb")


def run_control(scale: float = 0.1, seed: int = 87) -> ExperimentResult:
    """Fleet controller vs per-flow-isolated decisions on a contended host.

    Eight concurrent transfers share one NIC and a one-core codec
    budget: four large highly-compressible flows (CPU-bound once they
    find LIGHT) and four small incompressible ones (link-bound at NO,
    but each *holding* an even CPU share it cannot use).  Per-flow
    Algorithm 1 cannot see that imbalance; the fleet controller can.
    The 4:1 size and class mix is preserved at every scale — the claim
    is about the contended regime, not the absolute volume.
    """
    # Floor well above the usual quick-scale minimum: right after a
    # share reallocation the per-flow scheme briefly misattributes its
    # rate jump to whatever level probe was in flight (the same
    # misattribution ablate-metrics quantifies), and the fleet win is a
    # steady-state claim — runs must be long enough to amortize that
    # transient.
    hi_bytes = max(int(scale * 60 * 10**9), 3 * 10**9)
    lo_bytes = hi_bytes // 4
    specs = [
        FleetFlowSpec(f"hi{i}", Compressibility.HIGH, hi_bytes) for i in range(4)
    ] + [
        FleetFlowSpec(f"lo{i}", Compressibility.LOW, lo_bytes) for i in range(4)
    ]

    results: Dict[str, "FleetResult"] = {}
    rows = []
    for arm in FLEET_ARMS:
        policy = None if arm == "uncontrolled" else arm
        res = run_fleet_scenario(specs, policy=policy, cores=1.0, seed=seed)
        results[arm] = res
        rows.append(
            [
                arm,
                f"{res.aggregate_goodput / 1e6:.1f}",
                f"{res.makespan:.0f}",
                f"{res.completion_percentile(99):.0f}",
                f"{res.rebalances}",
                f"{res.events_processed}",
                f"{res.wall_seconds:.2f}",
            ]
        )
    rendered = format_table(
        ["policy", "aggregate goodput (MB/s)", "makespan (s)",
         "p99 completion (s)", "rebalances", "events", "wall (s)"],
        rows,
        title=(
            f"Fleet of 4x{hi_bytes / 1e9:.1f} GB HIGH + "
            f"4x{lo_bytes / 1e9:.1f} GB LOW flows, 1 CPU core, shared NIC"
        ),
    )

    base = results["uncontrolled"]
    fair = results["fair-share"]
    greedy = results["greedy-throughput"]
    climb = results["hill-climb"]

    checks: List[str] = []
    failures: List[str] = []
    checks.append(
        check(
            fair.aggregate_goodput >= 0.95 * base.aggregate_goodput,
            "fair-share never collapses aggregate goodput "
            f"({fair.aggregate_goodput / base.aggregate_goodput:.2f}x of "
            "uncontrolled)",
            failures,
        )
    )
    checks.append(
        check(
            greedy.aggregate_goodput >= 1.08 * base.aggregate_goodput,
            "greedy-throughput beats per-flow-isolated decisions on aggregate "
            f"goodput ({greedy.aggregate_goodput / base.aggregate_goodput:.2f}x)",
            failures,
        )
    )
    checks.append(
        check(
            greedy.completion_percentile(99) <= base.completion_percentile(99),
            "greedy-throughput does not worsen p99 completion time "
            f"({greedy.completion_percentile(99):.0f}s vs "
            f"{base.completion_percentile(99):.0f}s)",
            failures,
        )
    )
    lo_pinned = []
    for flow in greedy.flows:
        if flow.compressibility != "LOW":
            continue
        total_epochs = sum(flow.level_epochs.values())
        lo_pinned.append(flow.level_epochs.get(0, 0) / max(1, total_epochs))
    checks.append(
        check(
            all(share >= 0.7 for share in lo_pinned),
            "greedy pins the proven-incompressible flows at NO "
            f"({', '.join(f'{100 * s:.0f}%' for s in lo_pinned)} of epochs)",
            failures,
        )
    )
    checks.append(
        check(
            climb.aggregate_goodput >= 0.90 * base.aggregate_goodput,
            "hill-climb exploration stays within 10% of uncontrolled "
            f"({climb.aggregate_goodput / base.aggregate_goodput:.2f}x)",
            failures,
        )
    )
    checks.append(
        check(
            all(results[a].rebalances > 0 for a in FLEET_ARMS if a != "uncontrolled"),
            "every controller arm actually ran its policy "
            f"({', '.join(str(results[a].rebalances) for a in FLEET_ARMS[1:])} passes)",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="ext-control",
        title="Extension: fleet-level control plane vs isolated adaptation",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={
            arm: {
                "aggregate_goodput": res.aggregate_goodput,
                "makespan": res.makespan,
                "p99_completion": res.completion_percentile(99),
                "rebalances": res.rebalances,
                "events_processed": res.events_processed,
                "wall_seconds": res.wall_seconds,
                "events_per_second": res.events_per_second,
            }
            for arm, res in results.items()
        },
    )
