"""Figure 4: adaptive behaviour on highly compressible data, no load.

Reproduces the time-series plot: sender CPU utilization, application
throughput, network throughput and the chosen compression level over
the course of one DYNAMIC run on HIGH data with no background traffic.

Expected shapes (asserted): the scheme locks onto LIGHT quickly; the
application throughput far exceeds the network throughput (compression
is winning); optimistic probes away from LIGHT become exponentially
rarer over time.
"""

from __future__ import annotations

from typing import List

from ..data.corpus import Compressibility
from ..sim.scenario import ScenarioConfig, make_dynamic_factory, run_transfer_scenario
from ..sim.transfer import TransferResult
from .common import ExperimentResult, scaled_bytes
from .reporting import check, format_timeseries


def render_trace(result: TransferResult) -> str:
    epochs = result.epochs
    times = [e.end for e in epochs]
    lines = [
        format_timeseries(times, [e.vm_cpu_util for e in epochs], "CPU %"),
        format_timeseries(times, [e.app_rate / 1e6 for e in epochs], "app MB/s"),
        format_timeseries(times, [e.wire_rate / 1e6 for e in epochs], "net MB/s"),
        format_timeseries(times, [float(e.level) for e in epochs], "level", height=3.0),
    ]
    changes = result.level_timeline()
    lines.append(
        "level changes: "
        + " ".join(f"{t:.0f}s->{lvl}" for t, lvl in changes[:14])
        + (" ..." if len(changes) > 14 else "")
    )
    return "\n".join(lines)


def probe_gaps(levels: List[int], home: int) -> List[int]:
    """Epoch gaps between departures from the dominant level."""
    departures = [
        i for i in range(1, len(levels)) if levels[i] != home and levels[i - 1] == home
    ]
    return [b - a for a, b in zip(departures, departures[1:])]


def run(scale: float = 0.1, seed: int = 51) -> ExperimentResult:
    # The convergence/backoff claims need enough epochs to show; keep
    # at least ~40 epochs (LIGHT moves ~360 MB per epoch here).
    total = max(scaled_bytes(scale), 15 * 10**9)
    cfg = ScenarioConfig(
        scheme_factory=make_dynamic_factory(),
        compressibility=Compressibility.HIGH,
        total_bytes=total,
        n_background=0,
        seed=seed,
    )
    result = run_transfer_scenario(cfg)
    rendered = render_trace(result)

    checks: List[str] = []
    failures: List[str] = []

    levels = [e.level for e in result.epochs]
    second_half = levels[len(levels) // 2 :]
    light_share = second_half.count(1) / max(1, len(second_half))
    checks.append(
        check(
            light_share > 0.8,
            f"scheme settles on LIGHT ({100 * light_share:.0f}% of late epochs)",
            failures,
        )
    )

    app = sum(e.app_bytes for e in result.epochs) / max(result.completion_time, 1e-9)
    wire = result.total_wire_bytes / max(result.completion_time, 1e-9)
    checks.append(
        check(
            app > 1.8 * wire,
            f"application throughput ({app / 1e6:.0f} MB/s) far exceeds network "
            f"throughput ({wire / 1e6:.0f} MB/s)",
            failures,
        )
    )

    gaps = probe_gaps(levels, home=1)
    monotone = all(b >= a for a, b in zip(gaps, gaps[1:]))
    doubled = len(gaps) < 3 or gaps[-1] >= 2 * gaps[0]
    growing = monotone and (len(gaps) < 2 or gaps[-1] >= 1.5 * gaps[0]) and doubled
    checks.append(
        check(
            growing,
            f"optimistic probes become exponentially rarer (gaps {gaps})",
            failures,
        )
    )

    return ExperimentResult(
        experiment_id="fig4",
        title="Adaptive compression on HIGH data, no background traffic",
        rendered=rendered,
        checks=checks,
        failures=failures,
        data={
            "levels": levels,
            "completion_time": result.completion_time,
            "probe_gaps": gaps,
        },
    )
