"""Entry point for ``python -m repro.experiments``."""

import sys

from .runner import main

sys.exit(main())
