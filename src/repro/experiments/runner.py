"""Experiment CLI: ``python -m repro.experiments [ids...]``.

Runs the requested experiments (default: all of the paper's tables and
figures) at a chosen scale, prints each rendered artifact and its shape
checks, and exits non-zero if any expected shape failed.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Callable, Dict

from . import ablations, extensions, fig1_cpu_accuracy, fig2_net_throughput
from . import fig3_file_throughput, fig4_adaptivity_high, fig5_adaptivity_low
from . import fig6_changing_compressibility, table2_completion_times
from .common import ExperimentResult

#: id -> callable(scale, seed) -> ExperimentResult
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_cpu_accuracy.run,
    "fig2": fig2_net_throughput.run,
    "fig3": fig3_file_throughput.run,
    "table2": table2_completion_times.run,
    "fig4": fig4_adaptivity_high.run,
    "fig5": fig5_adaptivity_low.run,
    "fig6": fig6_changing_compressibility.run,
    "ablate-alpha": ablations.run_alpha,
    "ablate-backoff": ablations.run_backoff,
    "ablate-t": ablations.run_epoch_length,
    "ablate-metrics": ablations.run_metrics,
    "ext-fileio": extensions.run_fileio,
    "ext-memory": extensions.run_memory,
    "ext-fairness": extensions.run_fairness,
    "ext-pipeline": extensions.run_pipeline,
    "ext-faults": extensions.run_faults,
    "ext-decode": extensions.run_decode,
    "ext-control": extensions.run_control,
}

PAPER_SET = ("fig1", "fig2", "fig3", "table2", "fig4", "fig5", "fig6")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of Hovestadt et al. (IPDPS 2011)",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}); 'paper' = all "
        "paper artifacts; default: paper",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="data-volume scale vs the paper's 50 GB (default 0.1; 1.0 = full)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-grade quick run: scale 0.02 unless --scale is given explicitly",
    )
    parser.add_argument("--seed", type=int, default=None, help="override base seed")
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override repeat count for experiments that average over seeds",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override worker-thread count for experiments that use the "
        "parallel pipelines (ext-pipeline, ext-decode)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write every experiment's raw data to PATH as JSON",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for exp_id in EXPERIMENTS:
            print(exp_id)
        return 0

    requested = args.experiments or ["paper"]
    ids = []
    for item in requested:
        if item == "paper":
            ids.extend(PAPER_SET)
        elif item == "all":
            ids.extend(EXPERIMENTS)
        elif item in EXPERIMENTS:
            ids.append(item)
        else:
            print(f"unknown experiment {item!r}; use --list", file=sys.stderr)
            return 2

    if args.scale is None:
        args.scale = 0.02 if args.quick else 0.1

    any_failed = False
    json_payload = {}
    for exp_id in ids:
        kwargs = {"scale": args.scale}
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.repeats is not None:
            if "repeats" in inspect.signature(EXPERIMENTS[exp_id]).parameters:
                kwargs["repeats"] = args.repeats
        if args.workers is not None:
            if "workers" in inspect.signature(EXPERIMENTS[exp_id]).parameters:
                kwargs["workers"] = args.workers
        t0 = time.perf_counter()
        result = EXPERIMENTS[exp_id](**kwargs)
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"({exp_id} finished in {elapsed:.1f}s wall)\n")
        if not result.ok:
            any_failed = True
        json_payload[exp_id] = {
            "title": result.title,
            "ok": result.ok,
            "failures": result.failures,
            "wall_seconds": elapsed,
            "data": result.data,
        }
    if args.json:
        import json

        with open(args.json, "w") as fp:
            json.dump(json_payload, fp, indent=2, default=str)
        print(f"raw data written to {args.json}")
    return 1 if any_failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
