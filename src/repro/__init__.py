"""repro — adaptive online compression for shared-I/O cloud environments.

A full reproduction of Hovestadt, Kao, Kliem & Warneke, *Evaluating
Adaptive Compression to Mitigate the Effects of Shared I/O in Clouds*
(IEEE IPDPS 2011).

Public surface (see README for a guided tour):

* :mod:`repro.core` — the paper's rate-based decision algorithm,
  controller and adaptive block streams.
* :mod:`repro.codecs` — codecs + self-contained 128 KB block framing.
* :mod:`repro.data` — synthetic Canterbury-style workloads.
* :mod:`repro.schemes` — decision-model zoo (paper's scheme, static
  levels, and related-work baselines).
* :mod:`repro.sim` — discrete-event virtualization/cloud simulator.
* :mod:`repro.nephele` — mini dataflow framework with compressing channels.
* :mod:`repro.io` — real-socket/pipe adaptive transfer.
* :mod:`repro.telemetry` — event bus, metrics, tracing spans and
  exporters (one trace schema for real and simulated runs).
* :mod:`repro.experiments` — reproduction harness for every paper
  table and figure (``python -m repro.experiments``).
"""

from ._version import __version__
from .codecs import (
    DEFAULT_BLOCK_SIZE,
    BlockReader,
    BlockWriter,
    Codec,
    CodecRegistry,
    decode_block,
    encode_block,
)
from .core import (
    DEFAULT_ALPHA,
    DEFAULT_EPOCH_SECONDS,
    AdaptiveBlockWriter,
    AdaptiveController,
    CompressionLevelTable,
    DecisionModel,
    ParallelBlockEncoder,
    StaticBlockWriter,
    default_level_table,
    get_next_compression_level,
    make_block_encoder,
)
from .data import Compressibility, RepeatingSource, SwitchingSource, SyntheticCorpus

__all__ = [
    "__version__",
    # core
    "get_next_compression_level",
    "DecisionModel",
    "AdaptiveController",
    "AdaptiveBlockWriter",
    "StaticBlockWriter",
    "ParallelBlockEncoder",
    "make_block_encoder",
    "CompressionLevelTable",
    "default_level_table",
    "DEFAULT_ALPHA",
    "DEFAULT_EPOCH_SECONDS",
    # codecs
    "Codec",
    "CodecRegistry",
    "BlockReader",
    "BlockWriter",
    "encode_block",
    "decode_block",
    "DEFAULT_BLOCK_SIZE",
    # data
    "Compressibility",
    "SyntheticCorpus",
    "RepeatingSource",
    "SwitchingSource",
]
