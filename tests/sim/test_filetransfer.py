"""Tests for the file-write transfer simulation (the future-work path)."""

from __future__ import annotations

import pytest

from repro.data import Compressibility, RepeatingSource
from repro.schemes import RateBasedScheme, StaticScheme
from repro.sim.filetransfer import run_file_write_scenario

GB = 10**9


def run(scheme, cls=Compressibility.HIGH, cached=False, total=2 * GB, seed=2):
    source = RepeatingSource.from_corpus(cls, total)
    return run_file_write_scenario(
        scheme=scheme, source=source, cached=cached, seed=seed
    )


class TestHonestDisk:
    def test_all_bytes_written(self):
        res = run(StaticScheme(4, 0, name="NO"))
        assert res.total_app_bytes == pytest.approx(2 * GB)
        assert res.completion_time > 0

    def test_compression_beats_raw_on_slow_disk(self):
        """The disk (~82 MB/s) is the bottleneck; LIGHT at 203 MB/s
        app-rate on HIGH data must finish far sooner."""
        raw = run(StaticScheme(4, 0, name="NO")).completion_time
        light = run(StaticScheme(4, 1, name="LIGHT")).completion_time
        assert light < 0.6 * raw

    def test_heavy_is_cpu_bound(self):
        heavy = run(StaticScheme(4, 3, name="HEAVY")).completion_time
        light = run(StaticScheme(4, 1, name="LIGHT")).completion_time
        assert heavy > 4 * light

    def test_dynamic_near_best_static(self):
        times = {
            lvl: run(StaticScheme(4, lvl)).completion_time for lvl in range(4)
        }
        dyn = run(RateBasedScheme(4)).completion_time
        assert dyn <= 1.35 * min(times.values())

    def test_wire_bytes_reflect_level(self):
        raw = run(StaticScheme(4, 0, name="NO"))
        light = run(StaticScheme(4, 1, name="LIGHT"))
        assert light.total_wire_bytes < 0.3 * raw.total_wire_bytes


class TestCachedDisk:
    def test_completion_includes_fsync(self):
        """On the cached path, completion must count the final drain —
        otherwise the cache mirage would leak into the results."""
        res = run(StaticScheme(4, 0, name="NO"), cached=True, total=1 * GB)
        # 1 GB at drain rate 80 MB/s cannot complete faster than ~12 s
        # even though the cache absorbs at 700 MB/s.
        assert res.completion_time > 10.0

    def test_rate_signal_corrupted_for_dynamic(self):
        """DYNAMIC's penalty vs best static grows on the cached path
        (the quantified Section VI obstacle)."""
        def penalty(cached: bool) -> float:
            statics = [
                run(StaticScheme(4, lvl), cached=cached, total=4 * GB).completion_time
                for lvl in range(3)  # skip HEAVY: slow and never the winner here
            ]
            dyn = run(RateBasedScheme(4), cached=cached, total=4 * GB).completion_time
            return dyn / min(statics)

        assert penalty(True) > penalty(False)

    def test_epochs_show_cache_whipsaw(self):
        res = run(StaticScheme(4, 0, name="NO"), cached=True, total=6 * GB)
        rates = [e.app_rate for e in res.epochs]
        assert max(rates) > 400e6  # absorb-phase epochs near memory speed
        assert min(rates) < 100e6  # stall-phase epochs


class TestValidation:
    def test_scheme_model_mismatch(self):
        from repro.sim import CodecSimModel, Environment
        from repro.sim.disk import PlainDisk
        from repro.sim.filetransfer import FileWriteSim
        from repro.sim.rng import RngStreams
        import random

        env = Environment()
        disk = PlainDisk(env, 80e6, random.Random(0))
        source = RepeatingSource(b"x", 100, Compressibility.LOW)
        with pytest.raises(ValueError, match="levels"):
            FileWriteSim(
                env, disk, source, StaticScheme(2, 0), CodecSimModel(),
                RngStreams(0).stream("t"),
            )

    def test_bad_epoch(self):
        from repro.sim import CodecSimModel, Environment
        from repro.sim.disk import PlainDisk
        from repro.sim.filetransfer import FileWriteSim
        import random

        env = Environment()
        disk = PlainDisk(env, 80e6, random.Random(0))
        source = RepeatingSource(b"x", 100, Compressibility.LOW)
        with pytest.raises(ValueError, match="epoch_seconds"):
            FileWriteSim(
                env, disk, source, StaticScheme(4, 0), CodecSimModel(),
                random.Random(0), epoch_seconds=0,
            )
