"""Tests for the Section II auxiliary workload generators."""

from __future__ import annotations

import statistics

import pytest

from repro.sim import Environment, PhysicalHost, PROFILES, RngStreams
from repro.sim.workload import (
    OPERATIONS,
    run_file_read,
    run_file_write,
    run_net_recv,
    run_net_send,
)


def run_op(fn, platform, total_bytes=1.5e9, seed=3):
    env = Environment()
    host = PhysicalHost(env, PROFILES[platform], RngStreams(seed), name=platform)
    vm = host.spawn_vm()
    return fn(env, vm, total_bytes), host


class TestRegistry:
    def test_all_four_operations(self):
        assert set(OPERATIONS) == {"net-send", "net-recv", "file-write", "file-read"}


class TestFigure1Shapes:
    """The paper's CPU-accuracy claims, end to end through the sim."""

    def test_kvm_paravirt_net_send_gap_about_15(self):
        report, _ = run_op(run_net_send, "kvm-paravirt")
        assert 12.0 <= report.discrepancy_factor <= 18.0
        assert report.vm_cpu_total < 10.0  # VM thinks it is nearly idle
        assert report.host_cpu_total > 90.0  # host burns a core

    def test_xen_file_read_gap_about_15(self):
        report, _ = run_op(run_file_read, "xen-paravirt", total_bytes=0.8e9)
        assert 12.0 <= report.discrepancy_factor <= 18.0

    def test_native_shows_no_gap(self):
        report, _ = run_op(run_net_send, "native")
        assert report.discrepancy_factor == pytest.approx(1.0, rel=0.01)

    def test_gap_exists_across_all_virtualized_ops(self):
        for platform in ("kvm-full", "kvm-paravirt", "xen-paravirt"):
            for fn in (run_net_send, run_net_recv, run_file_write, run_file_read):
                report, _ = run_op(fn, platform, total_bytes=0.6e9)
                assert report.discrepancy_factor > 1.2, (platform, report.operation)

    def test_ec2_host_view_unavailable(self):
        report, _ = run_op(run_net_send, "ec2")
        assert report.host_cpu_total == 0.0
        assert report.vm_cpu_total > 0.0


class TestFigure2Shapes:
    """Network throughput distribution claims."""

    def test_local_cloud_fluctuation_marginal(self):
        native, _ = run_op(run_net_send, "native", total_bytes=2e9)
        kvm, _ = run_op(run_net_send, "kvm-paravirt", total_bytes=2e9)
        cv_native = statistics.stdev(native.throughput_samples) / statistics.mean(
            native.throughput_samples
        )
        cv_kvm = statistics.stdev(kvm.throughput_samples) / statistics.mean(
            kvm.throughput_samples
        )
        assert cv_native < 0.15
        assert cv_kvm < 0.25

    def test_ec2_fluctuation_heavy(self):
        ec2, _ = run_op(run_net_send, "ec2", total_bytes=2e9)
        cv = statistics.stdev(ec2.throughput_samples) / statistics.mean(
            ec2.throughput_samples
        )
        native, _ = run_op(run_net_send, "native", total_bytes=2e9)
        cv_native = statistics.stdev(native.throughput_samples) / statistics.mean(
            native.throughput_samples
        )
        assert cv > 3 * cv_native

    def test_throughput_near_platform_rate(self):
        report, _ = run_op(run_net_send, "kvm-paravirt", total_bytes=2e9)
        median = statistics.median(report.throughput_samples)
        assert median == pytest.approx(PROFILES["kvm-paravirt"].net_app_rate, rel=0.1)


class TestFigure3Shapes:
    """File-write throughput distribution claims."""

    def test_xen_write_bimodal_and_spuriously_high(self):
        report, host = run_op(run_file_write, "xen-paravirt", total_bytes=4e9)
        rates = report.throughput_samples
        assert max(rates) > 400e6  # cache absorption episodes
        assert min(rates) < 10e6  # flush stalls ("a few MB/s")
        # The sample median is far above the physical disk rate.
        assert statistics.median(rates) > 3 * PROFILES["xen-paravirt"].file_write_rate
        # And data remains unflushed at the end.
        assert host.disk.unflushed_bytes > 0.5e9

    def test_kvm_write_honest(self):
        report, host = run_op(run_file_write, "kvm-paravirt", total_bytes=2e9)
        median = statistics.median(report.throughput_samples)
        assert median == pytest.approx(
            PROFILES["kvm-paravirt"].file_write_rate, rel=0.15
        )


class TestBookkeeping:
    def test_duration_consistent_with_bytes(self):
        report, _ = run_op(run_net_send, "native", total_bytes=1e9)
        implied_rate = report.total_bytes / report.duration
        assert implied_rate == pytest.approx(PROFILES["native"].net_app_rate, rel=0.1)

    def test_report_metadata(self):
        report, _ = run_op(run_net_recv, "kvm-full", total_bytes=0.5e9)
        assert report.operation == "net-recv"
        assert report.platform == "kvm-full"
        assert report.total_bytes == 0.5e9


class TestSoftmaxArrivalProcess:
    def _proc(self, seed=0, **kw):
        from repro.sim.workload import SoftmaxArrivalProcess

        return SoftmaxArrivalProcess(RngStreams(seed).stream("arrivals"), **kw)

    def test_deterministic_from_seed(self):
        a = self._proc(seed=3)
        b = self._proc(seed=3)
        seq_a = [a.arrivals(t * 5.0, live=t % 7) for t in range(50)]
        seq_b = [b.arrivals(t * 5.0, live=t % 7) for t in range(50)]
        assert seq_a == seq_b

    def test_no_arrivals_above_target(self):
        proc = self._proc(mean=4.0, swing=2.0)
        # Live count far above any possible target: never spawn.
        assert all(proc.arrivals(t * 1.0, live=100) == 0 for t in range(100))

    def test_deficit_spawns_superlinearly(self):
        proc = self._proc(mean=20.0, swing=0.0, noise=0.0)
        # Deficit of ~20 with burst exponent ~1.05 spawns more than the
        # deficit on average (the gacs refill burst).
        bursts = [self._proc(seed=s, mean=20.0, swing=0.0, noise=0.0).arrivals(0.0, 0)
                  for s in range(20)]
        assert statistics.mean(bursts) >= 20
        assert all(b >= 1 for b in bursts)

    def test_target_tracks_cosine(self):
        proc = self._proc(mean=10.0, swing=5.0, period=100.0, noise=0.0)
        assert proc.target(0.0) == pytest.approx(15.0)
        assert proc.target(50.0) == pytest.approx(5.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            self._proc(mean=0.0)
        with pytest.raises(ValueError):
            self._proc(mean=2.0, swing=3.0)
        with pytest.raises(ValueError):
            self._proc(period=0.0)
