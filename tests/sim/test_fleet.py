"""Tests for the contended-fleet simulation harness."""

from __future__ import annotations

import pytest

from repro.data import Compressibility
from repro.sim import FleetFlowSpec, run_fleet_scenario

MB = 10**6


def specs(n_high=2, n_low=1, hi=150 * MB, lo=80 * MB):
    out = [
        FleetFlowSpec(f"hi{i}", Compressibility.HIGH, hi) for i in range(n_high)
    ]
    out += [FleetFlowSpec(f"lo{i}", Compressibility.LOW, lo) for i in range(n_low)]
    return out


def run(flows, **kw):
    # Short epochs and control rounds so multi-second fleets still see
    # plenty of epochs and policy passes.
    kw.setdefault("epoch_seconds", 0.5)
    kw.setdefault("control_interval", 1.0)
    return run_fleet_scenario(flows, **kw)


class TestUncontrolledBaseline:
    def test_fleet_drains_and_accounts_every_byte(self):
        fleet = run(specs(), seed=3)
        assert fleet.policy is None
        assert fleet.rebalances == 0
        assert len(fleet.flows) == 3
        assert fleet.makespan > 0
        assert fleet.total_app_bytes == pytest.approx(sum(s.total_bytes for s in specs()))
        assert fleet.aggregate_goodput > 0
        for flow in fleet.flows:
            assert flow.completion_time <= fleet.makespan
            assert sum(flow.level_epochs.values()) > 0

    def test_deterministic_under_seed(self):
        a = run(specs(), seed=11)
        b = run(specs(), seed=11)
        assert a.makespan == b.makespan
        assert [f.completion_time for f in a.flows] == [
            f.completion_time for f in b.flows
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            run([])
        with pytest.raises(ValueError):
            run(specs(), cores=0.0)


class TestControlledFleet:
    def test_fair_share_matches_uncontrolled_decisions(self):
        base = run(specs(), seed=7)
        fair = run(specs(), policy="fair-share", seed=7)
        assert fair.policy == "fair-share"
        assert fair.rebalances > 0
        # Same weights, same per-flow schemes: identical outcome.
        assert fair.makespan == pytest.approx(base.makespan, rel=1e-9)

    def test_greedy_pins_the_incompressible_flow(self):
        fleet = run(specs(n_high=1, n_low=1), policy="greedy-throughput", cores=1.0, seed=7)
        low = next(f for f in fleet.flows if f.compressibility == "LOW")
        epochs_at_no = low.level_epochs.get(0, 0)
        assert epochs_at_no / sum(low.level_epochs.values()) > 0.6
        assert fleet.rebalances > 0

    def test_policy_instance_accepted(self):
        from repro.control import GreedyThroughputPolicy

        fleet = run(specs(n_high=1, n_low=0), policy=GreedyThroughputPolicy(), seed=1)
        assert fleet.policy == "greedy-throughput"


class TestPercentiles:
    def test_nearest_rank(self):
        fleet = run(specs(), seed=5)
        times = sorted(f.completion_time for f in fleet.flows)
        assert fleet.completion_percentile(100) == times[-1]
        assert fleet.completion_percentile(1) == times[0]
        assert fleet.completion_percentile(50) in times


class TestThroughputTelemetry:
    def test_events_and_wall_seconds_populated(self):
        fleet = run(specs(), seed=3)
        assert fleet.events_processed > 0
        assert fleet.wall_seconds > 0
        assert fleet.events_per_second > 0
        assert fleet.flows_spawned == 3
        assert fleet.peak_live == 3  # closed batch: all live at t=0


class TestOpenLoopArrivals:
    def _arrivals(self, total, **kw):
        from repro.sim import FleetArrivalSpec

        kw.setdefault("interval", 2.0)
        kw.setdefault("mean", 4.0)
        kw.setdefault("swing", 2.0)
        kw.setdefault("period", 60.0)
        return FleetArrivalSpec(total_flows=total, **kw)

    def test_spawns_exactly_total_flows(self):
        fleet = run(
            specs(hi=30 * MB, lo=20 * MB),
            arrivals=self._arrivals(12),
            seed=5,
        )
        assert fleet.flows_spawned == 12
        assert len(fleet.flows) == 12
        assert 1 <= fleet.peak_live <= 12
        # Specs cycle as templates: ids beyond the spec list reuse names.
        names = {f.name for f in fleet.flows}
        assert names == {s.name for s in specs()}

    def test_flows_arrive_over_time(self):
        fleet = run(
            specs(hi=30 * MB, lo=20 * MB),
            arrivals=self._arrivals(12),
            seed=5,
        )
        starts = sorted(f.started_at for f in fleet.flows)
        assert starts[0] == 0.0
        assert starts[-1] > 0.0  # not a closed batch
        for f in fleet.flows:
            assert f.completion_time >= f.started_at

    def test_deterministic_from_seed(self):
        kw = dict(arrivals=self._arrivals(10), seed=11)
        a = run(specs(hi=30 * MB, lo=20 * MB), **kw)
        b = run(specs(hi=30 * MB, lo=20 * MB), **kw)
        assert [f.started_at for f in a.flows] == [f.started_at for f in b.flows]
        assert [f.completion_time for f in a.flows] == [
            f.completion_time for f in b.flows
        ]
        assert a.makespan == b.makespan

    def test_controlled_open_loop_fleet(self):
        fleet = run(
            specs(hi=30 * MB, lo=20 * MB),
            arrivals=self._arrivals(10),
            policy="fair-share",
            seed=7,
        )
        assert fleet.policy == "fair-share"
        assert fleet.flows_spawned == 10
        assert fleet.total_app_bytes > 0

    def test_arrival_spec_validation(self):
        from repro.sim import FleetArrivalSpec

        with pytest.raises(ValueError):
            FleetArrivalSpec(total_flows=0)
        with pytest.raises(ValueError):
            FleetArrivalSpec(total_flows=5, interval=0.0)
