"""Tests for the fluid shared-link model."""

from __future__ import annotations

import pytest

from repro.sim import Environment, SharedLink


def make_link(capacity=100.0):
    env = Environment()
    return env, SharedLink(env, capacity=capacity)


class TestSingleFlow:
    def test_transfer_time_exact(self):
        env, link = make_link(100.0)
        flow = link.open_flow("f")

        def proc():
            yield link.transmit(flow, 250.0)
            return env.now

        assert env.run_process(proc()) == pytest.approx(2.5)

    def test_zero_bytes_completes_immediately(self):
        env, link = make_link()
        flow = link.open_flow("f")

        def proc():
            yield link.transmit(flow, 0.0)
            return env.now

        assert env.run_process(proc()) == 0.0

    def test_demand_cap_limits_rate(self):
        env, link = make_link(100.0)
        flow = link.open_flow("f", demand=10.0)

        def proc():
            yield link.transmit(flow, 50.0)
            return env.now

        assert env.run_process(proc()) == pytest.approx(5.0)

    def test_sequential_transmissions(self):
        env, link = make_link(100.0)
        flow = link.open_flow("f")

        def proc():
            yield link.transmit(flow, 100.0)
            yield link.transmit(flow, 200.0)
            return env.now

        assert env.run_process(proc()) == pytest.approx(3.0)
        assert flow.bytes_done == pytest.approx(300.0)


class TestSharing:
    def test_equal_weights_split_evenly(self):
        env, link = make_link(100.0)
        f1, f2 = link.open_flow("a"), link.open_flow("b")
        done = {}

        def proc(name, flow, nbytes):
            yield link.transmit(flow, nbytes)
            done[name] = env.now

        env.process(proc("a", f1, 100.0))
        env.process(proc("b", f2, 100.0))
        env.run()
        # Both at 50 B/s while sharing.
        assert done["a"] == pytest.approx(2.0)
        assert done["b"] == pytest.approx(2.0)

    def test_weighted_share(self):
        env, link = make_link(100.0)
        heavy = link.open_flow("heavy", weight=3.0)
        light = link.open_flow("light", weight=1.0)
        done = {}

        def proc(name, flow, nbytes):
            yield link.transmit(flow, nbytes)
            done[name] = env.now

        env.process(proc("heavy", heavy, 300.0))  # 75 B/s -> 4 s
        env.process(proc("light", light, 100.0))  # 25 B/s -> 4 s
        env.run()
        assert done["heavy"] == pytest.approx(4.0)
        assert done["light"] == pytest.approx(4.0)

    def test_departure_frees_capacity(self):
        env, link = make_link(100.0)
        f1, f2 = link.open_flow("a"), link.open_flow("b")
        done = {}

        def proc(name, flow, nbytes):
            yield link.transmit(flow, nbytes)
            done[name] = env.now

        env.process(proc("a", f1, 50.0)),  # shares 50 B/s -> done at 1.0
        env.process(proc("b", f2, 150.0))  # 50 B done at t=1, then 100 B/s
        env.run()
        assert done["a"] == pytest.approx(1.0)
        assert done["b"] == pytest.approx(2.0)

    def test_demand_capped_flow_redistributes(self):
        env, link = make_link(100.0)
        capped = link.open_flow("capped", demand=20.0)
        free = link.open_flow("free")
        done = {}

        def proc(name, flow, nbytes):
            yield link.transmit(flow, nbytes)
            done[name] = env.now

        env.process(proc("capped", capped, 100.0))  # 20 B/s -> 5 s
        env.process(proc("free", free, 400.0))  # 80 B/s -> 5 s
        env.run()
        assert done["capped"] == pytest.approx(5.0)
        assert done["free"] == pytest.approx(5.0)

    def test_mid_flight_demand_change(self):
        env, link = make_link(100.0)
        flow = link.open_flow("f")

        def changer():
            yield env.timeout(1.0)
            flow.set_demand(10.0)

        def sender():
            yield link.transmit(flow, 190.0)
            return env.now

        env.process(changer())
        proc = env.process(sender())
        env.run()
        # 100 B in first second, remaining 90 B at 10 B/s.
        assert proc.value == pytest.approx(10.0)


class TestCapacityFactor:
    def test_capacity_factor_scales_rate(self):
        env, link = make_link(100.0)
        link.set_capacity_factor(0.5)
        flow = link.open_flow("f")

        def proc():
            yield link.transmit(flow, 100.0)
            return env.now

        assert env.run_process(proc()) == pytest.approx(2.0)

    def test_mid_flight_capacity_change(self):
        env, link = make_link(100.0)
        flow = link.open_flow("f")

        def changer():
            yield env.timeout(1.0)
            link.set_capacity_factor(0.1)

        def sender():
            yield link.transmit(flow, 150.0)
            return env.now

        env.process(changer())
        proc = env.process(sender())
        env.run()
        # 100 B in the first second, then 50 B at 10 B/s.
        assert proc.value == pytest.approx(6.0)

    def test_zero_capacity_stalls_until_restored(self):
        env, link = make_link(100.0)
        flow = link.open_flow("f")

        def choke():
            yield env.timeout(0.5)
            link.set_capacity_factor(0.0)
            yield env.timeout(10.0)
            link.set_capacity_factor(1.0)

        def sender():
            yield link.transmit(flow, 100.0)
            return env.now

        env.process(choke())
        proc = env.process(sender())
        env.run()
        # 50 B by 0.5 s, stalled until 10.5 s, 50 B more by 11 s.
        assert proc.value == pytest.approx(11.0)

    def test_validation(self):
        env, link = make_link()
        with pytest.raises(ValueError):
            link.set_capacity_factor(-0.1)
        with pytest.raises(ValueError):
            SharedLink(env, capacity=0)
        with pytest.raises(ValueError):
            link.open_flow("f", weight=0)


class TestAccounting:
    def test_total_bytes_conserved(self):
        env, link = make_link(100.0)
        flows = [link.open_flow(f"f{i}") for i in range(3)]
        sizes = [123.0, 456.0, 789.0]

        def proc(flow, nbytes):
            yield link.transmit(flow, nbytes)

        for flow, size in zip(flows, sizes):
            env.process(proc(flow, size))
        env.run()
        assert link.total_bytes == pytest.approx(sum(sizes))
        for flow, size in zip(flows, sizes):
            assert flow.bytes_done == pytest.approx(size)

    def test_throughput_never_exceeds_capacity(self):
        env, link = make_link(100.0)
        flows = [link.open_flow(f"f{i}") for i in range(4)]

        def proc(flow):
            yield link.transmit(flow, 100.0)

        for flow in flows:
            env.process(proc(flow))
        env.run()
        # 400 B through a 100 B/s link must take >= 4 s.
        assert env.now >= 4.0 - 1e-9

    def test_errors(self):
        env, link = make_link()
        flow = link.open_flow("f")
        other_env = Environment()
        other_link = SharedLink(other_env, capacity=10)
        with pytest.raises(RuntimeError):
            other_link.transmit(flow, 10)
        with pytest.raises(ValueError):
            link.transmit(flow, -5)
        link.transmit(flow, 100.0)
        with pytest.raises(RuntimeError):
            link.transmit(flow, 1.0)  # already transmitting
        with pytest.raises(RuntimeError):
            link.close_flow(flow)  # still busy


class TestCloseFlow:
    def test_close_idle_flow(self):
        env, link = make_link()
        flow = link.open_flow("f")
        link.close_flow(flow)
        with pytest.raises(RuntimeError, match="not open"):
            link.transmit(flow, 10.0)

    def test_close_never_opened_flow_names_it(self):
        env, link = make_link()
        other_env = Environment()
        other_link = SharedLink(other_env, capacity=10)
        stranger = other_link.open_flow("stranger")
        with pytest.raises(RuntimeError, match="'stranger' is not open"):
            link.close_flow(stranger)

    def test_double_close_names_the_flow(self):
        env, link = make_link()
        flow = link.open_flow("twice")
        link.close_flow(flow)
        with pytest.raises(RuntimeError, match="'twice' is not open"):
            link.close_flow(flow)

    def test_close_does_not_disturb_running_transfers(self):
        env, link = make_link(100.0)
        busy = link.open_flow("busy")
        idle = link.open_flow("idle")
        done = link.transmit(busy, 100.0)
        link.close_flow(idle)
        env.run()
        assert done.triggered
        assert env.now == pytest.approx(1.0)
