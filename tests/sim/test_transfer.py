"""Tests for the Section IV transfer simulation and scenario runner."""

from __future__ import annotations

import pytest

from repro.data import Compressibility
from repro.sim import (
    PAPER_TOTAL_BYTES,
    ScenarioConfig,
    make_dynamic_factory,
    make_static_factory,
    run_transfer_scenario,
)

GB = 10**9


def run_cell(scheme_factory, cls=Compressibility.HIGH, total=2 * GB, c=0, seed=1, **kw):
    cfg = ScenarioConfig(
        scheme_factory=scheme_factory,
        compressibility=cls,
        total_bytes=total,
        n_background=c,
        seed=seed,
        **kw,
    )
    return run_transfer_scenario(cfg)


class TestBasicProperties:
    def test_all_bytes_transferred(self):
        res = run_cell(make_static_factory(0, "NO"))
        assert res.total_app_bytes == pytest.approx(2 * GB)
        assert res.completion_time > 0

    def test_wire_bytes_reflect_compression(self):
        raw = run_cell(make_static_factory(0, "NO"), cls=Compressibility.HIGH)
        compressed = run_cell(make_static_factory(1, "LIGHT"), cls=Compressibility.HIGH)
        assert compressed.total_wire_bytes < raw.total_wire_bytes / 5

    def test_no_compression_wire_equals_app_plus_headers(self):
        res = run_cell(make_static_factory(0, "NO"))
        overhead = res.total_wire_bytes / res.total_app_bytes
        assert 1.0 < overhead < 1.001

    def test_epochs_cover_run(self):
        res = run_cell(make_static_factory(1, "LIGHT"))
        assert res.epochs
        assert res.epochs[0].start == pytest.approx(0.0, abs=3.0)
        assert res.epochs[-1].end == pytest.approx(res.completion_time, abs=3.0)
        total_epoch_bytes = sum(e.app_bytes for e in res.epochs)
        assert total_epoch_bytes == pytest.approx(res.total_app_bytes, rel=0.01)

    def test_deterministic_given_seed(self):
        a = run_cell(make_dynamic_factory(), seed=4)
        b = run_cell(make_dynamic_factory(), seed=4)
        assert a.completion_time == b.completion_time

    def test_seeds_vary_results(self):
        a = run_cell(make_dynamic_factory(), seed=1)
        b = run_cell(make_dynamic_factory(), seed=2)
        assert a.completion_time != b.completion_time

    def test_mean_app_rate(self):
        res = run_cell(make_static_factory(0, "NO"))
        assert res.mean_app_rate == pytest.approx(
            res.total_app_bytes / res.completion_time
        )

    def test_paper_total_constant(self):
        assert PAPER_TOTAL_BYTES == 50 * GB


class TestTable2Shapes:
    """Scaled-down (2 GB) sanity versions of the Table II claims; the
    full-scale reproduction lives in benchmarks/bench_table2.py."""

    def test_light_wins_on_high(self):
        times = {
            name: run_cell(make_static_factory(lvl, name), cls=Compressibility.HIGH).completion_time
            for lvl, name in [(0, "NO"), (1, "LIGHT"), (2, "MEDIUM"), (3, "HEAVY")]
        }
        assert times["LIGHT"] < times["MEDIUM"] < times["NO"] < times["HEAVY"]

    def test_no_wins_on_moderate_unloaded(self):
        times = {
            name: run_cell(make_static_factory(lvl, name), cls=Compressibility.MODERATE).completion_time
            for lvl, name in [(0, "NO"), (1, "LIGHT"), (3, "HEAVY")]
        }
        assert times["NO"] < times["LIGHT"] < times["HEAVY"]

    def test_background_slows_uncompressed_transfer(self):
        alone = run_cell(make_static_factory(0, "NO"), c=0).completion_time
        crowded = run_cell(make_static_factory(0, "NO"), c=3).completion_time
        assert crowded > 2.0 * alone

    def test_heavy_barely_affected_by_background(self):
        """HEAVY is CPU-bound; Table II shows ~6 % total degradation."""
        alone = run_cell(
            make_static_factory(3, "HEAVY"), cls=Compressibility.HIGH, c=0
        ).completion_time
        crowded = run_cell(
            make_static_factory(3, "HEAVY"), cls=Compressibility.HIGH, c=3
        ).completion_time
        assert crowded < 1.2 * alone

    def test_dynamic_close_to_best_static(self):
        """The <=22 % claim, on the scaled-down HIGH/0 cell."""
        static_times = [
            run_cell(make_static_factory(lvl, n), cls=Compressibility.HIGH).completion_time
            for lvl, n in [(0, "NO"), (1, "LIGHT"), (2, "MEDIUM"), (3, "HEAVY")]
        ]
        dynamic = run_cell(make_dynamic_factory(), cls=Compressibility.HIGH).completion_time
        assert dynamic <= 1.35 * min(static_times)  # extra slack at 2 GB scale

    def test_dynamic_beats_no_compression_on_contended_high(self):
        """The 'up to factor 4' headline, scaled down."""
        no = run_cell(make_static_factory(0, "NO"), cls=Compressibility.HIGH, c=3)
        dyn = run_cell(make_dynamic_factory(), cls=Compressibility.HIGH, c=3)
        assert no.completion_time / dyn.completion_time > 2.5


class TestDynamicBehaviour:
    def test_dynamic_converges_to_light_on_high(self):
        """Figure 4: LIGHT is found quickly and held."""
        res = run_cell(make_dynamic_factory(), cls=Compressibility.HIGH, total=5 * GB)
        levels = [e.level for e in res.epochs]
        # The second half of the run must be dominated by LIGHT (1).
        second_half = levels[len(levels) // 2 :]
        assert second_half.count(1) / len(second_half) > 0.8

    def test_dynamic_level_changes_single_step(self):
        res = run_cell(make_dynamic_factory(), cls=Compressibility.MODERATE)
        for e in res.epochs:
            assert abs(e.next_level - e.level) <= 1

    def test_epoch_observations_have_metrics(self):
        res = run_cell(make_dynamic_factory())
        for e in res.epochs:
            assert e.app_rate > 0
            assert e.vm_cpu_util >= 0
            assert e.host_cpu_util >= e.vm_cpu_util

    def test_level_timeline_monotone_times(self):
        res = run_cell(make_dynamic_factory(), cls=Compressibility.HIGH)
        timeline = res.level_timeline()
        times = [t for t, _ in timeline]
        assert times == sorted(times)


class TestValidation:
    def test_scheme_model_level_mismatch(self):
        from repro.sim import (
            CodecSimModel,
            Environment,
            RngStreams,
            SharedLink,
            TransferSim,
        )
        from repro.data import RepeatingSource
        from repro.schemes import StaticScheme

        env = Environment()
        link = SharedLink(env, capacity=1e8)
        source = RepeatingSource(b"x", 100, Compressibility.LOW)
        with pytest.raises(ValueError, match="levels"):
            TransferSim(
                env,
                link,
                source,
                StaticScheme(2, 0),
                CodecSimModel(),
                RngStreams(0).stream("t"),
            )

    def test_bad_epoch_seconds(self):
        from repro.sim import (
            CodecSimModel,
            Environment,
            RngStreams,
            SharedLink,
            TransferSim,
        )
        from repro.data import RepeatingSource
        from repro.schemes import StaticScheme

        env = Environment()
        link = SharedLink(env, capacity=1e8)
        source = RepeatingSource(b"x", 100, Compressibility.LOW)
        with pytest.raises(ValueError, match="epoch_seconds"):
            TransferSim(
                env,
                link,
                source,
                StaticScheme(4, 0),
                CodecSimModel(),
                RngStreams(0).stream("t"),
                epoch_seconds=0,
            )
