"""Tests for CPU accounting (cost vectors, ledgers, utilization)."""

from __future__ import annotations

import pytest

from repro.sim import CATEGORIES, CostVector, CpuLedger, DualLedger, utilization


class TestCostVector:
    def test_total(self):
        v = CostVector(usr=1.0, sys=2.0, hirq=0.5, sirq=0.25, steal=0.25)
        assert v.total == 4.0

    def test_scaled(self):
        v = CostVector(usr=1.0, sys=2.0).scaled(0.5)
        assert v.usr == 0.5
        assert v.sys == 1.0

    def test_from_utilization_roundtrip(self):
        rate = 90e6  # bytes/s
        v = CostVector.from_utilization({"SYS": 40.0, "SIRQ": 10.0}, rate)
        # Charging one second's worth of bytes must reproduce the target.
        ledger = CpuLedger()
        ledger.charge(v, rate)
        assert ledger.seconds["SYS"] == pytest.approx(0.40)
        assert ledger.seconds["SIRQ"] == pytest.approx(0.10)

    def test_from_utilization_validation(self):
        with pytest.raises(ValueError):
            CostVector.from_utilization({"SYS": 10.0}, 0.0)
        with pytest.raises(ValueError):
            CostVector.from_utilization({"BOGUS": 10.0}, 1e6)


class TestCpuLedger:
    def test_charge_accumulates(self):
        ledger = CpuLedger()
        v = CostVector(usr=1e-9, sys=2e-9)
        ledger.charge(v, 1e9)
        ledger.charge(v, 1e9)
        assert ledger.seconds["USR"] == pytest.approx(2.0)
        assert ledger.seconds["SYS"] == pytest.approx(4.0)
        assert ledger.total() == pytest.approx(6.0)

    def test_charge_seconds(self):
        ledger = CpuLedger()
        ledger.charge_seconds("USR", 1.5)
        assert ledger.seconds["USR"] == 1.5
        with pytest.raises(ValueError):
            ledger.charge_seconds("NOPE", 1.0)
        with pytest.raises(ValueError):
            ledger.charge_seconds("USR", -1.0)

    def test_snapshot_is_copy(self):
        ledger = CpuLedger()
        snap = ledger.snapshot()
        snap["USR"] = 99.0
        assert ledger.seconds["USR"] == 0.0


class TestDualLedger:
    def test_host_includes_vm_plus_extra(self):
        dual = DualLedger()
        vm_cost = CostVector(sys=1e-9)
        extra = CostVector(sys=9e-9)
        dual.charge_io(vm_cost, extra, 1e9)
        assert dual.vm.seconds["SYS"] == pytest.approx(1.0)
        assert dual.host.seconds["SYS"] == pytest.approx(10.0)

    def test_compute_visible_in_both(self):
        dual = DualLedger()
        dual.charge_compute(2.0)
        assert dual.vm.seconds["USR"] == 2.0
        assert dual.host.seconds["USR"] == 2.0

    def test_discrepancy_factor_scenario(self):
        """The paper's factor-15 case: VM sees 7 %, host sees 105 %."""
        rate = 90e6
        dual = DualLedger()
        vm_cost = CostVector.from_utilization({"SYS": 5.0, "SIRQ": 2.0}, rate)
        extra = CostVector.from_utilization({"SYS": 78.0, "SIRQ": 20.0}, rate)
        dual.charge_io(vm_cost, extra, rate * 10)  # 10 s of traffic
        vm_total = dual.vm.total()
        host_total = dual.host.total()
        assert host_total / vm_total == pytest.approx(15.0, rel=0.01)


class TestUtilization:
    def test_basic(self):
        before = {cat: 0.0 for cat in CATEGORIES}
        after = dict(before, USR=0.5, SYS=0.25)
        pct = utilization(before, after, interval=1.0)
        assert pct["USR"] == 50.0
        assert pct["SYS"] == 25.0
        assert pct["STEAL"] == 0.0

    def test_interval_validation(self):
        snap = {cat: 0.0 for cat in CATEGORIES}
        with pytest.raises(ValueError):
            utilization(snap, snap, 0.0)
