"""Tests for the NumPy trace-analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Compressibility
from repro.sim import ScenarioConfig, make_dynamic_factory, run_transfer_scenario
from repro.sim.analysis import (
    compare_traces,
    controller_arrays,
    level_occupancy,
    rate_statistics,
    resample_step,
    trace_arrays,
    uniform_grid,
)
from repro.sim.transfer import TransferEpoch, TransferResult


@pytest.fixture(scope="module")
def result():
    cfg = ScenarioConfig(
        scheme_factory=make_dynamic_factory(),
        compressibility=Compressibility.HIGH,
        total_bytes=10**9,
        seed=6,
    )
    return run_transfer_scenario(cfg)


def synthetic_result():
    res = TransferResult(scheme_name="X")
    res.completion_time = 6.0
    for i, (lvl, rate) in enumerate([(0, 10.0), (1, 20.0), (1, 30.0)]):
        res.epochs.append(
            TransferEpoch(
                start=2.0 * i,
                end=2.0 * (i + 1),
                level=lvl,
                next_level=lvl,
                app_bytes=rate * 2,
                app_rate=rate,
                wire_rate=rate / 2,
                vm_cpu_util=5.0,
                host_cpu_util=50.0,
                displayed_bandwidth=rate,
            )
        )
    return res


class TestTraceArrays:
    def test_shapes_and_dtypes(self, result):
        arrays = trace_arrays(result)
        n = len(result.epochs)
        for key, arr in arrays.items():
            assert arr.shape == (n,), key
        assert arrays["level"].dtype.kind == "i"
        assert np.all(arrays["end"] >= arrays["start"])

    def test_controller_arrays(self):
        from repro.core import AdaptiveController

        ctl = AdaptiveController(n_levels=4, epoch_seconds=1.0)
        for i in range(1, 5):
            ctl.record(100)
            ctl.poll(float(i))
        arrays = controller_arrays(ctl.trace)
        assert arrays["level"].shape == (4,)
        assert np.all(arrays["app_rate"] == 100.0)


class TestResampleStep:
    def test_step_semantics(self):
        times = np.array([0.0, 2.0, 4.0])
        values = np.array([1.0, 2.0, 3.0])
        grid = np.array([0.0, 1.0, 2.0, 3.0, 3.9, 4.0, 10.0])
        out = resample_step(times, values, grid)
        assert list(out) == [1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0]

    def test_before_first_sample_clamps(self):
        out = resample_step(np.array([5.0]), np.array([7.0]), np.array([0.0, 9.0]))
        assert list(out) == [7.0, 7.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            resample_step(np.array([]), np.array([]), np.array([0.0]))
        with pytest.raises(ValueError):
            resample_step(np.array([2.0, 1.0]), np.array([1.0, 2.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            resample_step(np.array([1.0]), np.array([[1.0]]), np.array([0.0]))


class TestSummaries:
    def test_uniform_grid(self, result):
        grid = uniform_grid(result, n_points=50)
        assert grid.shape == (50,)
        assert grid[0] == 0.0
        assert grid[-1] == pytest.approx(result.completion_time)
        with pytest.raises(ValueError):
            uniform_grid(result, n_points=1)

    def test_level_occupancy_sums_to_one(self, result):
        occupancy = level_occupancy(result)
        assert sum(occupancy.values()) == pytest.approx(1.0)
        assert all(0 <= frac <= 1 for frac in occupancy.values())

    def test_level_occupancy_synthetic(self):
        occ = level_occupancy(synthetic_result())
        assert occ[0] == pytest.approx(1 / 3)
        assert occ[1] == pytest.approx(2 / 3)

    def test_rate_statistics_synthetic(self):
        stats = rate_statistics(synthetic_result())
        assert stats["mean"] == pytest.approx(20.0)
        assert stats["min"] == 10.0
        assert stats["max"] == 30.0

    def test_compare_traces(self, result):
        table = compare_traces([result])
        assert "DYNAMIC" in table
        assert table["DYNAMIC"]["mean"] > 0
