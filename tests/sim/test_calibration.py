"""Tests keeping the codec simulation model honest.

The simulator prices compression with constants; these tests cross-check
those constants against (a) the paper's Table II arithmetic and (b) the
actual Python codecs on the actual synthetic corpus.
"""

from __future__ import annotations

import math

import pytest

from repro.codecs import LightZlibCodec, LzmaCodec, MediumZlibCodec
from repro.data import Compressibility, generate
from repro.sim import CODEC_MODEL, CodecPoint, CodecSimModel, cpu_available
from repro.sim.calibration import LEVEL_NAMES, LINK_APP_CAPACITY


class TestModelStructure:
    def test_complete_table(self):
        model = CodecSimModel()
        assert model.n_levels == 4
        for level in range(4):
            for cls in Compressibility:
                assert model.point(level, cls) is not None

    def test_missing_point_rejected(self):
        table = dict(CODEC_MODEL)
        del table[("HEAVY", Compressibility.LOW)]
        with pytest.raises(ValueError):
            CodecSimModel(table)

    def test_no_level_is_free_and_lossless(self):
        model = CodecSimModel()
        for cls in Compressibility:
            pt = model.point(0, cls)
            assert math.isinf(pt.comp_speed)
            assert pt.ratio == 1.0

    def test_wire_ratio_adds_header_overhead(self):
        pt = CodecPoint(comp_speed=1e6, ratio=0.5, decomp_speed=1e6)
        assert pt.wire_ratio > 0.5
        assert pt.wire_ratio == pytest.approx(0.5 + 20 / (128 * 1024))

    def test_wire_ratio_capped_for_incompressible(self):
        pt = CodecPoint(comp_speed=1e6, ratio=1.0, decomp_speed=1e6)
        assert pt.wire_ratio == pytest.approx(1.0 + 20 / (128 * 1024))


class TestPaperArithmetic:
    """Speeds must reproduce Table II's zero-concurrency column."""

    PAPER_SECONDS = {
        # (level, class) -> completion seconds in Table II, 0 connections
        ("LIGHT", Compressibility.HIGH): 252,
        ("LIGHT", Compressibility.MODERATE): 629,
        ("LIGHT", Compressibility.LOW): 688,
        ("MEDIUM", Compressibility.HIGH): 347,
        ("MEDIUM", Compressibility.MODERATE): 795,
        ("MEDIUM", Compressibility.LOW): 1095,
        ("HEAVY", Compressibility.HIGH): 1881,
        ("HEAVY", Compressibility.MODERATE): 5760,
        ("HEAVY", Compressibility.LOW): 9011,
    }

    @pytest.mark.parametrize("key", list(PAPER_SECONDS))
    def test_speed_matches_table2(self, key):
        pt = CODEC_MODEL[key]
        implied = 50e9 / self.PAPER_SECONDS[key] / 1e9  # GB/s
        assert pt.comp_speed / 1e9 == pytest.approx(implied, rel=0.05)

    def test_link_capacity_matches_no_row(self):
        assert LINK_APP_CAPACITY == pytest.approx(50e9 / 567, rel=0.05)


class TestRatiosMatchRealCodecs:
    """Model ratios vs the shipped codecs on the synthetic corpus."""

    CODECS = {
        "LIGHT": LightZlibCodec(),
        "MEDIUM": MediumZlibCodec(),
        "HEAVY": LzmaCodec(preset=4),
    }

    @pytest.mark.parametrize("level_name", ["LIGHT", "MEDIUM", "HEAVY"])
    @pytest.mark.parametrize("cls", list(Compressibility))
    def test_ratio_within_tolerance(self, level_name, cls):
        payload = generate(cls, 256 * 1024, seed=5)
        measured = len(self.CODECS[level_name].compress(payload)) / len(payload)
        modeled = CODEC_MODEL[(level_name, cls)].ratio
        assert modeled == pytest.approx(measured, abs=0.06), (
            f"{level_name}/{cls}: model {modeled} vs measured {measured}"
        )


class TestModelMonotonicity:
    """Structural sanity of the trade-off ladder."""

    def test_speed_decreases_with_level(self):
        for cls in Compressibility:
            speeds = [CODEC_MODEL[(n, cls)].comp_speed for n in LEVEL_NAMES]
            assert all(a > b for a, b in zip(speeds, speeds[1:]))

    def test_ratio_improves_with_level_on_compressible(self):
        for cls in (Compressibility.HIGH, Compressibility.MODERATE):
            ratios = [CODEC_MODEL[(n, cls)].ratio for n in LEVEL_NAMES]
            assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_heavier_is_not_better_on_incompressible(self):
        """'the assumption that a higher compression level will lead to
        higher compression ratio ... is not always true, e.g., when the
        data is not compressible' (Section V) — LZMA actually does
        worse than zlib on the LOW class."""
        low = Compressibility.LOW
        assert (
            CODEC_MODEL[("HEAVY", low)].ratio > CODEC_MODEL[("MEDIUM", low)].ratio
        )

    def test_decompression_faster_than_compression(self):
        """Receiver must never be the pipeline bottleneck."""
        for (name, cls), pt in CODEC_MODEL.items():
            if name != "NO":
                assert pt.decomp_speed > pt.comp_speed

    def test_contention_sensitivity_decreases_with_level(self):
        """The fast, memory-hungry codec suffers most from neighbours."""
        for cls in Compressibility:
            sens = [
                CODEC_MODEL[(n, cls)].contention_sensitivity
                for n in ("LIGHT", "MEDIUM", "HEAVY")
            ]
            assert sens[0] > sens[1] > sens[2]


class TestCpuAvailable:
    def test_no_background_full_cpu(self):
        assert cpu_available(0) == 1.0

    def test_loss_per_flow(self):
        assert cpu_available(3, loss_per_flow=0.02) == pytest.approx(0.94)

    def test_floor(self):
        assert cpu_available(1000) == 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            cpu_available(-1)
