"""Tests for Store and Semaphore."""

from __future__ import annotations

import pytest

from repro.sim import Environment, Semaphore, Store


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)

        def proc():
            yield store.put("x")
            item = yield store.get()
            return item

        assert env.run_process(proc()) == "x"

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def producer():
            yield env.timeout(3.0)
            yield store.put("late")

        def consumer():
            item = yield store.get()
            return (item, env.now)

        env.process(producer())
        proc = env.process(consumer())
        env.run()
        assert proc.value == ("late", 3.0)

    def test_bounded_put_blocks_until_get(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = {}

        def producer():
            yield store.put(1)
            times["first"] = env.now
            yield store.put(2)
            times["second"] = env.now

        def consumer():
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times["first"] == 0.0
        assert times["second"] == 5.0

    def test_fifo_ordering(self):
        env = Environment()
        store = Store(env)
        out = []

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                out.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert out == [0, 1, 2, 3, 4]

    def test_try_get(self):
        env = Environment()
        store = Store(env)
        assert store.try_get() is None
        store.put("a")
        assert store.try_get() == "a"
        assert len(store) == 0

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_is_full(self):
        env = Environment()
        store = Store(env, capacity=2)
        assert not store.is_full
        store.put("a")
        store.put("b")
        assert store.is_full


class TestSemaphore:
    def test_acquire_release(self):
        env = Environment()
        sem = Semaphore(env, capacity=1)

        def proc():
            yield sem.acquire()
            assert sem.in_use == 1
            sem.release()
            return sem.in_use

        assert env.run_process(proc()) == 0

    def test_waiters_block_until_release(self):
        env = Environment()
        sem = Semaphore(env, capacity=1)
        times = {}

        def holder():
            yield sem.acquire()
            yield env.timeout(4.0)
            sem.release()

        def waiter():
            yield sem.acquire()
            times["acquired"] = env.now
            sem.release()

        env.process(holder())
        env.process(waiter())
        env.run()
        assert times["acquired"] == 4.0

    def test_capacity_counts(self):
        env = Environment()
        sem = Semaphore(env, capacity=3)

        def proc():
            yield sem.acquire()
            yield sem.acquire()
            return sem.available

        assert env.run_process(proc()) == 1

    def test_release_without_acquire(self):
        env = Environment()
        sem = Semaphore(env, capacity=1)
        with pytest.raises(RuntimeError):
            sem.release()

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Semaphore(env, capacity=0)
