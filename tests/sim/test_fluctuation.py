"""Tests for bandwidth fluctuation processes."""

from __future__ import annotations

import random
import statistics

from repro.sim import (
    ConstantCapacity,
    Environment,
    GaussianJitter,
    MarkovOnOff,
    SharedLink,
)


def sample_factors(model, duration=60.0, step=0.05, seed=0):
    """Sample the link's effective capacity over time."""
    env = Environment()
    link = SharedLink(env, capacity=1.0)
    model.start(env, link, random.Random(seed))
    samples = []

    def sampler():
        while env.now < duration:
            yield env.timeout(step)
            samples.append(link.effective_capacity)

    env.process(sampler())
    env.run(until=duration + 1)
    return samples


class TestConstantCapacity:
    def test_factor_applied(self):
        samples = sample_factors(ConstantCapacity(factor=0.5), duration=2.0)
        assert all(s == 0.5 for s in samples)


class TestGaussianJitter:
    def test_mild_fluctuation(self):
        samples = sample_factors(GaussianJitter(sigma=0.03), duration=120.0)
        mean = statistics.mean(samples)
        stdev = statistics.stdev(samples)
        assert 0.95 <= mean <= 1.05
        assert stdev < 0.10  # "only increased marginally"

    def test_bounds_respected(self):
        samples = sample_factors(
            GaussianJitter(sigma=0.5, floor=0.6, ceil=1.1), duration=60.0
        )
        assert all(0.6 <= s <= 1.1 for s in samples)


class TestMarkovOnOff:
    def test_heavy_fluctuation_between_zero_and_full(self):
        """EC2: 'TCP/UDP throughput ... can fluctuate rapidly between
        1 GBit/s and zero, even at a time scale of tens of
        milliseconds'."""
        samples = sample_factors(MarkovOnOff(), duration=300.0, step=0.02)
        assert min(samples) < 0.05  # near-zero episodes exist
        assert max(samples) > 0.8  # near-full episodes exist
        stdev = statistics.stdev(samples)
        assert stdev > 0.2  # far noisier than the local cloud

    def test_down_episodes_mostly_short_with_rare_outages(self):
        samples = sample_factors(MarkovOnOff(), duration=300.0, step=0.01)
        # Collect consecutive down-stretch lengths.
        stretches = []
        current = 0
        for s in samples:
            if s < 0.05:
                current += 1
            elif current:
                stretches.append(current * 0.01)
                current = 0
        if current:
            stretches.append(current * 0.01)
        assert stretches, "no down episodes at all"
        stretches.sort()
        # The typical episode is at the tens-of-milliseconds scale...
        median = stretches[len(stretches) // 2]
        assert median < 0.5
        # ...while rare outage-length episodes exist (Figure 2's deep
        # EC2 whiskers) but stay bounded.
        assert max(stretches) < 15.0

    def test_deterministic_given_seed(self):
        a = sample_factors(MarkovOnOff(), duration=10.0, seed=7)
        b = sample_factors(MarkovOnOff(), duration=10.0, seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = sample_factors(MarkovOnOff(), duration=10.0, seed=1)
        b = sample_factors(MarkovOnOff(), duration=10.0, seed=2)
        assert a != b
