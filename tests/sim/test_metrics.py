"""Tests for throughput and CPU utilization samplers."""

from __future__ import annotations

import pytest

from repro.sim import (
    CostVector,
    CpuLedger,
    CpuUtilizationSampler,
    Environment,
    ThroughputSampler,
)


class TestThroughputSampler:
    def test_samples_every_20mb_by_default(self):
        env = Environment()
        sampler = ThroughputSampler(env)

        def proc():
            for _ in range(5):
                yield env.timeout(1.0)
                sampler.progress(20e6)

        env.run_process(proc())
        assert len(sampler.samples) == 5
        assert all(s.rate == pytest.approx(20e6) for s in sampler.samples)

    def test_partial_progress_accumulates(self):
        env = Environment()
        sampler = ThroughputSampler(env, sample_bytes=100.0)

        def proc():
            yield env.timeout(1.0)
            sampler.progress(60.0)
            yield env.timeout(1.0)
            sampler.progress(60.0)  # crosses 100 at t=2

        env.run_process(proc())
        assert len(sampler.samples) == 1
        assert sampler.samples[0].timestamp == 2.0
        assert sampler.samples[0].duration == 2.0

    def test_large_progress_emits_multiple_samples(self):
        env = Environment()
        sampler = ThroughputSampler(env, sample_bytes=10.0)

        def proc():
            yield env.timeout(1.0)
            sampler.progress(35.0)

        env.run_process(proc())
        assert len(sampler.samples) == 3

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            ThroughputSampler(env, sample_bytes=0)
        sampler = ThroughputSampler(env)
        with pytest.raises(ValueError):
            sampler.progress(-1)

    def test_rates_excludes_zero_duration(self):
        env = Environment()
        sampler = ThroughputSampler(env, sample_bytes=10.0)
        sampler.progress(25.0)  # two instant samples at t=0
        assert sampler.rates() == []


class TestCpuUtilizationSampler:
    def test_constant_load_measured(self):
        env = Environment()
        ledger = CpuLedger()
        sampler = CpuUtilizationSampler(env, ledger, interval=1.0)
        cost = CostVector(sys=0.5e-6)  # 0.5 s per MB

        def load():
            while env.now < 10.0:
                yield env.timeout(0.1)
                ledger.charge(cost, 0.1e6)  # 1 MB/s -> 50 % SYS

        env.process(load())
        env.run(until=10.0)
        mean = sampler.mean_percent()
        assert mean["SYS"] == pytest.approx(50.0, rel=0.05)
        assert mean["USR"] == 0.0
        assert sampler.mean_total() == pytest.approx(50.0, rel=0.05)

    def test_no_samples_before_first_interval(self):
        env = Environment()
        sampler = CpuUtilizationSampler(env, CpuLedger(), interval=5.0)
        env.run(until=4.0)
        assert sampler.samples == []
        assert sampler.mean_total() == 0.0

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            CpuUtilizationSampler(env, CpuLedger(), interval=0)
