"""Property-based tests of the fluid shared link (conservation laws)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, SharedLink

flow_spec = st.tuples(
    st.floats(min_value=0.5, max_value=5.0),  # weight
    st.floats(min_value=10.0, max_value=2000.0),  # bytes to send
    st.floats(min_value=0.0, max_value=5.0),  # start delay
    st.one_of(st.none(), st.floats(min_value=5.0, max_value=200.0)),  # demand cap
)


class TestLinkProperties:
    @given(specs=st.lists(flow_spec, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_bytes_conserved_and_capacity_respected(self, specs):
        env = Environment()
        capacity = 100.0
        link = SharedLink(env, capacity=capacity)
        total_requested = 0.0

        def sender(flow, nbytes, delay):
            if delay:
                yield env.timeout(delay)
            yield link.transmit(flow, nbytes)

        for i, (weight, nbytes, delay, demand) in enumerate(specs):
            flow = link.open_flow(f"f{i}", weight=weight, demand=demand)
            total_requested += nbytes
            env.process(sender(flow, nbytes, delay))
        env.run()

        # Conservation: every requested byte crossed the link.
        assert link.total_bytes == pytest.approx(total_requested, rel=1e-6)
        # Capacity: when everything starts at t=0, the link cannot move
        # the total volume faster than its capacity allows.
        if max(delay for _, _, delay, _ in specs) == 0:
            assert env.now >= total_requested / capacity - 1e-6

    @given(
        weights=st.lists(
            st.floats(min_value=0.5, max_value=4.0), min_size=2, max_size=5
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_weighted_shares_exact_for_simultaneous_flows(self, weights):
        """All flows start together with equal volume-to-weight ratio:
        they must finish at the same instant (exact weighted fairness)."""
        env = Environment()
        link = SharedLink(env, capacity=100.0)
        finish = {}

        def sender(name, flow, nbytes):
            yield link.transmit(flow, nbytes)
            finish[name] = env.now

        for i, weight in enumerate(weights):
            flow = link.open_flow(f"f{i}", weight=weight)
            env.process(sender(f"f{i}", flow, 100.0 * weight))
        env.run()
        times = list(finish.values())
        assert max(times) == pytest.approx(min(times), rel=1e-9)
        # And the common finish time is total volume / capacity.
        total = sum(100.0 * w for w in weights)
        assert times[0] == pytest.approx(total / 100.0, rel=1e-9)

    @given(
        nbytes=st.floats(min_value=1.0, max_value=1e9),
        capacity=st.floats(min_value=1.0, max_value=1e9),
    )
    @settings(max_examples=100, deadline=None)
    def test_single_flow_exact_time(self, nbytes, capacity):
        env = Environment()
        link = SharedLink(env, capacity=capacity)
        flow = link.open_flow("f")

        def proc():
            yield link.transmit(flow, nbytes)
            return env.now

        assert env.run_process(proc()) == pytest.approx(nbytes / capacity, rel=1e-9)

    @given(
        factors=st.lists(
            st.floats(min_value=0.1, max_value=1.0), min_size=1, max_size=8
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_modulation_conserves_bytes(self, factors):
        env = Environment()
        link = SharedLink(env, capacity=100.0)
        flow = link.open_flow("f")

        def modulator():
            for factor in factors:
                link.set_capacity_factor(factor)
                yield env.timeout(0.5)

        def sender():
            yield link.transmit(flow, 500.0)

        env.process(modulator())
        env.process(sender())
        env.run()
        assert flow.bytes_done == pytest.approx(500.0, rel=1e-6)
