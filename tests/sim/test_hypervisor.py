"""Tests for virtualization profiles and their calibration claims."""

from __future__ import annotations

import pytest

from repro.sim import EVALUATION_PROFILE, PROFILES, build_profiles
from repro.sim.hypervisor import IoCostPair


class TestProfilesInventory:
    def test_all_five_platforms_present(self):
        assert set(PROFILES) == {
            "native",
            "kvm-full",
            "kvm-paravirt",
            "xen-paravirt",
            "ec2",
        }

    def test_evaluation_platform_is_kvm_paravirt(self):
        """Section IV: 'conducted on our local Eucalyptus-based cloud
        using KVM-based virtual machines with paravirtualized I/O'."""
        assert EVALUATION_PROFILE.name == "kvm-paravirt"

    def test_build_profiles_returns_fresh_dict(self):
        a = build_profiles()
        b = build_profiles()
        assert a is not b
        assert set(a) == set(b)

    def test_ec2_host_not_observable(self):
        assert not PROFILES["ec2"].host_observable
        assert PROFILES["native"].host_observable


class TestCalibrationShape:
    """The Figure 1 claims, encoded as cost-vector relations."""

    @staticmethod
    def gap(pair: IoCostPair) -> float:
        vm = pair.vm.total
        return (vm + pair.host_extra.total) / vm

    def test_kvm_paravirt_net_send_gap_factor_15(self):
        assert self.gap(PROFILES["kvm-paravirt"].net_send) == pytest.approx(15.0, rel=0.05)

    def test_xen_file_read_gap_factor_15(self):
        assert self.gap(PROFILES["xen-paravirt"].file_read) == pytest.approx(15.0, rel=0.05)

    def test_native_has_no_gap(self):
        native = PROFILES["native"]
        for pair in (native.net_send, native.net_recv, native.file_write, native.file_read):
            assert pair.host_extra.total == 0.0

    def test_every_virtualized_platform_has_a_gap(self):
        """'this discrepancy is not specific to a particular type of I/O
        operation or virtualization technique'."""
        for name in ("kvm-full", "kvm-paravirt", "xen-paravirt"):
            profile = PROFILES[name]
            for pair in (
                profile.net_send,
                profile.net_recv,
                profile.file_write,
                profile.file_read,
            ):
                assert self.gap(pair) > 1.2, (name, pair)

    def test_only_xen_shows_steal(self):
        for name, profile in PROFILES.items():
            steal = profile.net_send.vm.steal
            if name in ("xen-paravirt", "ec2"):  # both xen-based
                assert steal > 0
            else:
                assert steal == 0

    def test_only_xen_has_disk_cache(self):
        for name, profile in PROFILES.items():
            if name == "xen-paravirt":
                assert profile.disk_cache is not None
            else:
                assert profile.disk_cache is None

    def test_evaluation_rate_matches_table2(self):
        """Table II NO rows: 50 GB / ~567 s ~= 90 MB/s."""
        rate = EVALUATION_PROFILE.net_app_rate
        assert 88e6 <= rate <= 92e6

    def test_native_fastest_network(self):
        native_rate = PROFILES["native"].net_app_rate
        for name, profile in PROFILES.items():
            if name != "native":
                assert profile.net_app_rate < native_rate

    def test_io_cost_pair_from_utilizations(self):
        pair = IoCostPair.from_utilizations(
            {"SYS": 10.0}, {"SYS": 40.0}, rate_bytes_per_s=1e6
        )
        assert pair.vm.sys == pytest.approx(1e-7)
        assert pair.host_extra.sys == pytest.approx(3e-7)
