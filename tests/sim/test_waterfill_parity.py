"""Seed-vs-new water-fill allocator parity (the PR-10 perf rewrite).

The O(N log N) sorted-prefix allocator in :mod:`repro.sim.link` must be
a pure optimization: same rates, same completion times as the seed's
restart-from-scratch iterative fill.  This suite freezes the seed
allocator (and the seed link, for end-to-end timing) and property-tests
the new code against it.

Exactness note: the round-replay in ``_fill_level`` uses the same
per-round expressions and operands as the seed, so when the inputs
(weights, demand caps, capacity) are *dyadic* rationals every
intermediate sum/subtraction is exact and the allocations agree bit for
bit — that is what the ``*_exact`` properties assert.  On arbitrary
floats the two differ only by summation order, bounded here at 1e-9
relative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.sim.engine import Event
from repro.sim.link import SharedLink

# ---------------------------------------------------------------------------
# Frozen seed implementation (verbatim algorithm from the pre-PR-10 link).
# ---------------------------------------------------------------------------

_COMPLETION_EPS = 1e-2
_MIN_WAKE_DELAY = 1e-9


def seed_water_fill(active, capacity: float) -> Dict[int, float]:
    """The seed's iterative weighted max-min fill (O(N²) via list.remove)."""
    alloc: Dict[int, float] = {}
    todo = list(active)
    cap = capacity
    while todo:
        total_weight = sum(f.weight for f in todo)
        capped = []
        for f in todo:
            share = cap * f.weight / total_weight
            if f.demand is not None and f.demand < share:
                capped.append(f)
        if not capped:
            for f in todo:
                alloc[id(f)] = cap * f.weight / total_weight
            break
        for f in capped:
            alloc[id(f)] = f.demand
            cap -= f.demand
            todo.remove(f)
        cap = max(cap, 0.0)
    return alloc


@dataclass
class _SeedFlow:
    link: "SeedSharedLink"
    name: str
    weight: float = 1.0
    demand: Optional[float] = None
    remaining: float = 0.0
    rate: float = 0.0
    completion: Optional[Event] = None
    bytes_done: float = 0.0
    _active: bool = field(default=False, repr=False)

    @property
    def transmitting(self) -> bool:
        return self._active

    def set_demand(self, demand: Optional[float]) -> None:
        if demand is not None and demand < 0:
            raise ValueError("demand must be >= 0 or None")
        self.link._advance()
        self.demand = demand
        self.link._recompute()


class SeedSharedLink:
    """The pre-PR-10 link: full refill on every event, orphaned wakes."""

    def __init__(self, env: Environment, capacity: float, name: str = "link") -> None:
        self.env = env
        self.name = name
        self.capacity = capacity
        self._capacity_factor = 1.0
        self._flows: List[_SeedFlow] = []
        self._last_update = env.now
        self._wake_version = 0
        self.total_bytes = 0.0

    def open_flow(self, name, weight=1.0, demand=None) -> _SeedFlow:
        flow = _SeedFlow(link=self, name=name, weight=weight, demand=demand)
        self._flows.append(flow)
        return flow

    @property
    def effective_capacity(self) -> float:
        return self.capacity * self._capacity_factor

    def set_capacity_factor(self, factor: float) -> None:
        self._advance()
        self._capacity_factor = factor
        self._recompute()

    def transmit(self, flow: _SeedFlow, nbytes: float) -> Event:
        event = self.env.event()
        if nbytes == 0:
            event.succeed()
            return event
        self._advance()
        flow.remaining = float(nbytes)
        flow.completion = event
        flow._active = True
        self._recompute()
        return event

    def allocation_preview(self, extra_demand: Optional[float] = None) -> float:
        probe = _SeedFlow(link=self, name="_probe", weight=1.0, demand=extra_demand)
        probe._active = True
        probe.remaining = 1.0
        alloc = self._water_fill(self._active_flows() + [probe])
        return alloc.get(id(probe), 0.0)

    def _active_flows(self) -> List[_SeedFlow]:
        return [f for f in self._flows if f._active]

    def _advance(self) -> None:
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0:
            return
        for flow in self._active_flows():
            moved = min(flow.remaining, flow.rate * dt)
            flow.remaining -= moved
            flow.bytes_done += moved
            self.total_bytes += moved

    def _water_fill(self, active: List[_SeedFlow]) -> Dict[int, float]:
        return seed_water_fill(active, self.effective_capacity)

    def _recompute(self) -> None:
        active = self._active_flows()
        finished = [f for f in active if f.remaining <= _COMPLETION_EPS]
        for flow in finished:
            flow.bytes_done += flow.remaining
            self.total_bytes += flow.remaining
            flow.remaining = 0.0
            flow._active = False
            flow.rate = 0.0
            event, flow.completion = flow.completion, None
            assert event is not None
            event.succeed()
        active = [f for f in active if f.remaining > _COMPLETION_EPS]

        alloc = self._water_fill(active)
        next_done = math.inf
        for flow in active:
            flow.rate = alloc.get(id(flow), 0.0)
            if flow.rate > 0:
                next_done = min(next_done, flow.remaining / flow.rate)

        self._wake_version += 1
        if next_done is not math.inf:
            version = self._wake_version
            wake = self.env.timeout(max(next_done, _MIN_WAKE_DELAY))
            wake.callbacks.append(lambda _ev: self._on_wake(version))

    def _on_wake(self, version: int) -> None:
        if version != self._wake_version:
            return
        self._advance()
        self._recompute()


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


class _F:
    """Minimal flow stand-in for the stateless allocators."""

    __slots__ = ("weight", "demand")

    def __init__(self, weight: float, demand: Optional[float]) -> None:
        self.weight = weight
        self.demand = demand


# Dyadic grids: every value is k / 2^m, so sums and subtractions inside
# both allocators are exact and bit-for-bit comparison is meaningful.
dyadic_weight = st.integers(min_value=1, max_value=96).map(lambda k: k / 16.0)
dyadic_demand = st.one_of(
    st.none(), st.integers(min_value=0, max_value=4096).map(lambda k: k * 0.25)
)
dyadic_capacity = st.integers(min_value=1, max_value=8192).map(lambda k: k * 0.5)
dyadic_fleet = st.lists(
    st.tuples(dyadic_weight, dyadic_demand), min_size=1, max_size=50
)

float_weight = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)
float_demand = st.one_of(
    st.none(), st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
)
float_fleet = st.lists(st.tuples(float_weight, float_demand), min_size=1, max_size=50)


def _new_alloc(flows: List[_F], capacity: float) -> Dict[int, float]:
    env = Environment()
    link = SharedLink(env, capacity=capacity)
    return link._water_fill(flows)


class TestAllocatorParity:
    @given(fleet=dyadic_fleet, capacity=dyadic_capacity)
    @settings(max_examples=300, deadline=None)
    def test_allocations_exact_on_dyadic_fleets(self, fleet, capacity):
        flows = [_F(w, d) for w, d in fleet]
        seed = seed_water_fill(flows, capacity)
        new = _new_alloc(flows, capacity)
        assert set(seed) == set(new)
        for key in seed:
            # Bitwise, not approx: the rewrite must be a pure speedup.
            assert seed[key] == new[key]

    @given(
        fleet=float_fleet,
        capacity=st.floats(min_value=0.1, max_value=1e9, allow_nan=False),
    )
    @settings(max_examples=300, deadline=None)
    def test_allocations_close_on_arbitrary_floats(self, fleet, capacity):
        flows = [_F(w, d) for w, d in fleet]
        seed = seed_water_fill(flows, capacity)
        new = _new_alloc(flows, capacity)
        assert set(seed) == set(new)
        for key in seed:
            assert new[key] == pytest.approx(seed[key], rel=1e-9, abs=1e-9)

    @given(fleet=dyadic_fleet, capacity=dyadic_capacity)
    @settings(max_examples=200, deadline=None)
    def test_capacity_never_exceeded(self, fleet, capacity):
        flows = [_F(w, d) for w, d in fleet]
        new = _new_alloc(flows, capacity)
        assert sum(new.values()) <= capacity * (1 + 1e-9)

    @given(
        fleet=dyadic_fleet,
        capacity=dyadic_capacity,
        probe=st.one_of(
            st.none(), st.integers(min_value=0, max_value=4096).map(lambda k: k * 0.25)
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_preview_exact_on_dyadic_fleets(self, fleet, capacity, probe):
        env_a, env_b = Environment(), Environment()
        seed_link = SeedSharedLink(env_a, capacity=capacity)
        new_link = SharedLink(env_b, capacity=capacity)
        for i, (w, d) in enumerate(fleet):
            sf = seed_link.open_flow(f"f{i}", weight=w, demand=d)
            nf = new_link.open_flow(f"f{i}", weight=w, demand=d)
            seed_link.transmit(sf, 10_000.0)
            new_link.transmit(nf, 10_000.0)
        assert new_link.allocation_preview(probe) == seed_link.allocation_preview(probe)


# ---------------------------------------------------------------------------
# End-to-end timing parity: same fleets driven through both links must
# complete at bitwise-identical simulation times.
# ---------------------------------------------------------------------------

# Driver steps keep demand/weight/capacity dyadic; transfer *sizes* may
# be any float — rates and byte movement then use identical expressions
# with identical operands on both sides.
_size = st.floats(min_value=10.0, max_value=1e6, allow_nan=False)
_delay = st.integers(min_value=0, max_value=64).map(lambda k: k / 4.0)
_factor = st.integers(min_value=1, max_value=8).map(lambda k: k / 4.0)

_step = st.one_of(
    st.tuples(st.just("transmit"), st.integers(0, 5), _size, _delay),
    st.tuples(st.just("demand"), st.integers(0, 5), dyadic_demand, _delay),
    st.tuples(st.just("capacity"), st.just(0), _factor, _delay),
)


def _replay(link, flows, steps) -> List[tuple]:
    """Run one driver script against a link; return (idx, time) completions."""
    env = link.env
    completions: List[tuple] = []

    def driver() -> Generator[Event, None, None]:
        for kind, idx, value, delay in steps:
            if delay:
                yield env.timeout(delay)
            if kind == "transmit":
                flow = flows[idx % len(flows)]
                if flow.transmitting:
                    continue
                ev = link.transmit(flow, value)
                i = idx % len(flows)
                ev.callbacks.append(
                    lambda _e, i=i: completions.append((i, env.now))
                )
            elif kind == "demand":
                flow = flows[idx % len(flows)]
                # Same-value updates and idle-flow updates are no-ops in
                # the new link but advance/recompute in the seed; both
                # are allocation-neutral, so the driver skips them to
                # keep the two event streams byte-comparable.
                if not flow.transmitting or value == flow.demand:
                    continue
                flow.set_demand(value)
            else:
                if value == link._capacity_factor:
                    continue
                link.set_capacity_factor(value)

    env.process(driver(), name="driver")
    env.run()
    return completions


class TestCompletionTimeParity:
    @given(
        fleet=st.lists(
            st.tuples(dyadic_weight, dyadic_demand), min_size=1, max_size=6
        ),
        capacity=dyadic_capacity,
        steps=st.lists(_step, min_size=1, max_size=30),
    )
    @settings(max_examples=150, deadline=None)
    def test_completion_times_bitwise_identical(self, fleet, capacity, steps):
        env_seed, env_new = Environment(), Environment()
        seed_link = SeedSharedLink(env_seed, capacity=capacity)
        new_link = SharedLink(env_new, capacity=capacity)
        seed_flows = [
            seed_link.open_flow(f"f{i}", weight=w, demand=d)
            for i, (w, d) in enumerate(fleet)
        ]
        new_flows = [
            new_link.open_flow(f"f{i}", weight=w, demand=d)
            for i, (w, d) in enumerate(fleet)
        ]
        seed_done = _replay(seed_link, seed_flows, steps)
        new_done = _replay(new_link, new_flows, steps)
        assert sorted(seed_done) == sorted(new_done)
        assert new_link.total_bytes == seed_link.total_bytes

    @given(
        fleet=st.lists(
            st.tuples(dyadic_weight, dyadic_demand), min_size=1, max_size=6
        ),
        capacity=dyadic_capacity,
        steps=st.lists(_step, min_size=1, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_new_link_heap_stays_clean(self, fleet, capacity, steps):
        """Pending events stay O(active flows): no orphaned wake timers."""
        env = Environment()
        link = SharedLink(env, capacity=capacity)
        flows = [
            link.open_flow(f"f{i}", weight=w, demand=d)
            for i, (w, d) in enumerate(fleet)
        ]
        _replay(link, flows, steps)
        # After drain: nothing pending but (at most) one cancelled wake.
        assert env.pending_events == 0
