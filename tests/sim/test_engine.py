"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim import Environment, SimulationError


class TestTimeAndTimeouts:
    def test_time_advances_to_timeout(self):
        env = Environment()

        def proc():
            yield env.timeout(5.0)
            return env.now

        assert env.run_process(proc()) == 5.0

    def test_zero_delay_timeout(self):
        env = Environment()

        def proc():
            yield env.timeout(0.0)
            return env.now

        assert env.run_process(proc()) == 0.0

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_value_passthrough(self):
        env = Environment()

        def proc():
            value = yield env.timeout(1.0, value="hello")
            return value

        assert env.run_process(proc()) == "hello"

    def test_run_until_stops_clock(self):
        env = Environment()

        def proc():
            yield env.timeout(100.0)

        env.process(proc())
        assert env.run(until=30.0) == 30.0
        assert env.now == 30.0

    def test_run_until_beyond_last_event(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)

        env.process(proc())
        assert env.run(until=50.0) == 50.0

    def test_event_ordering_fifo_on_ties(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in "abc":
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestEvents:
    def test_manual_event_value(self):
        env = Environment()
        gate = env.event()

        def waiter():
            value = yield gate
            return value

        def trigger():
            yield env.timeout(2.0)
            gate.succeed(42)

        proc = env.process(waiter())
        env.process(trigger())
        env.run()
        assert proc.value == 42

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_value_before_trigger_rejected(self):
        env = Environment()
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_yield_already_triggered_event(self):
        env = Environment()
        ev = env.event()
        ev.succeed("early")

        def proc():
            value = yield ev
            return value

        assert env.run_process(proc()) == "early"

    def test_multiple_waiters_all_resume(self):
        env = Environment()
        gate = env.event()
        results = []

        def waiter(tag):
            yield gate
            results.append((tag, env.now))

        for tag in range(3):
            env.process(waiter(tag))

        def trigger():
            yield env.timeout(1.5)
            gate.succeed()

        env.process(trigger())
        env.run()
        assert results == [(0, 1.5), (1, 1.5), (2, 1.5)]

    def test_event_failure_propagates_into_process(self):
        env = Environment()
        gate = env.event()

        def waiter():
            try:
                yield gate
            except RuntimeError as exc:
                return f"caught {exc}"

        def trigger():
            yield env.timeout(1.0)
            gate.fail(RuntimeError("boom"))

        proc = env.process(waiter())
        env.process(trigger())
        env.run()
        assert proc.value == "caught boom"


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return "done"

        assert env.run_process(proc()) == "done"

    def test_process_waiting_on_process(self):
        env = Environment()

        def child():
            yield env.timeout(3.0)
            return "child-result"

        def parent():
            result = yield env.process(child())
            return (result, env.now)

        assert env.run_process(parent()) == ("child-result", 3.0)

    def test_unwaited_process_failure_raises(self):
        env = Environment()

        def bad():
            yield env.timeout(1.0)
            raise ValueError("unhandled")

        env.process(bad())
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_waited_process_failure_delivered_to_waiter(self):
        env = Environment()

        def bad():
            yield env.timeout(1.0)
            raise ValueError("delivered")

        def parent():
            try:
                yield env.process(bad())
            except ValueError as exc:
                return str(exc)

        assert env.run_process(parent()) == "delivered"

    def test_yielding_non_event_rejected(self):
        env = Environment()

        def bad():
            yield 42

        with pytest.raises(SimulationError, match="expected an Event"):
            env.run()
            env.process(bad())
            env.run()

    def test_deadlock_detected_by_run_process(self):
        env = Environment()
        never = env.event()

        def stuck():
            yield never

        with pytest.raises(SimulationError, match="did not finish"):
            env.run_process(stuck())

    def test_interleaving_of_two_processes(self):
        env = Environment()
        log = []

        def ticker(name, period):
            while env.now < 10:
                yield env.timeout(period)
                log.append((env.now, name))

        env.process(ticker("fast", 2))
        env.process(ticker("slow", 5))
        env.run(until=11)
        assert (2.0, "fast") in log
        assert (5.0, "slow") in log
        assert log == sorted(log, key=lambda x: x[0])

    def test_scheduling_in_past_rejected(self):
        env = Environment()

        def proc():
            yield env.timeout(5.0)

        env.process(proc())
        env.run()
        with pytest.raises(SimulationError):
            env._schedule(1.0, env.event())


class TestCancellableTimers:
    def test_cancelled_timeout_never_fires(self):
        env = Environment()
        fired = []
        t = env.timeout(5.0)
        t.callbacks.append(lambda e: fired.append(env.now))
        t.cancel()
        env.run()
        assert fired == []
        assert env.now == 0.0  # cancelled entries do not advance the clock

    def test_cancel_after_fire_is_noop(self):
        env = Environment()
        fired = []
        t = env.timeout(1.0)
        t.callbacks.append(lambda e: fired.append(env.now))
        env.run()
        before = env._n_cancelled
        t.cancel()
        assert fired == [1.0]
        assert env._n_cancelled == before  # no phantom cancel accounting

    def test_cancel_is_idempotent(self):
        env = Environment()
        t = env.timeout(1.0)
        t.callbacks.append(lambda e: None)
        t.cancel()
        t.cancel()
        assert env._n_cancelled == 1

    def test_pending_events_excludes_cancelled(self):
        env = Environment()
        timers = [env.timeout(float(i + 1)) for i in range(10)]
        for t in timers:
            t.callbacks.append(lambda e: None)
        assert env.pending_events == 10
        for t in timers[:4]:
            t.cancel()
        assert env.pending_events == 6

    def test_heap_compaction_under_cancel_churn(self):
        from repro.sim.engine import _COMPACT_MIN

        env = Environment()
        # Reschedule-style churn: create a watched timer, cancel it,
        # repeat.  Without compaction the heap would hold every corpse.
        sink = lambda e: None
        for _ in range(100 * _COMPACT_MIN):
            t = env.timeout(10.0)
            t.callbacks.append(sink)
            t.cancel()
        assert len(env._heap) <= 2 * _COMPACT_MIN + 2
        assert env.pending_events == 0

    def test_cancelled_pops_not_counted_as_processed(self):
        env = Environment()
        keep = env.timeout(2.0)
        dead = env.timeout(1.0)
        dead.callbacks.append(lambda e: None)
        dead.cancel()
        env.run()
        assert env.events_processed == 1

    def test_cancel_of_unwatched_timer_is_noop(self):
        # A timer nobody waits on has no callbacks; cancelling it is a
        # no-op by contract (indistinguishable from already-fired) and
        # must not corrupt the cancelled-entry accounting.
        env = Environment()
        env.timeout(1.0).cancel()
        assert env._n_cancelled == 0
        env.run()
        assert env.now == 1.0


class TestRunUntilEvent:
    def test_run_until_event_stops_at_trigger(self):
        env = Environment()
        done = env.event()

        def proc():
            yield env.timeout(3.0)
            done.succeed()
            yield env.timeout(10.0)

        env.process(proc())
        env.run(until=done)
        assert env.now == 3.0
        # The rest of the heap is untouched and can keep running.
        env.run()
        assert env.now == 13.0

    def test_run_until_already_triggered_event_returns_now(self):
        env = Environment()
        done = env.event()
        done.succeed()
        assert env.run(until=done) == 0.0

    def test_run_until_event_detects_starvation(self):
        env = Environment()
        never = env.event()

        def proc():
            yield env.timeout(1.0)

        env.process(proc())
        with pytest.raises(SimulationError, match="drained before the event"):
            env.run(until=never)

    def test_events_processed_counts_pops(self):
        env = Environment()

        def proc():
            for _ in range(5):
                yield env.timeout(1.0)

        env.process(proc())
        env.run()
        # 1 process-init event + 5 timeouts + the process-done event.
        assert env.events_processed == 7
