"""Stateful property test for the Store resource.

Hypothesis drives random interleavings of puts, gets and drains against
a model (a plain deque), checking FIFO order and capacity bounds at
every step.  Because Store's blocking behaviour is event-based, the
state machine only issues operations that complete immediately and
checks that the library agrees with the model about which those are.
"""

from __future__ import annotations

from collections import deque

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.sim import Environment, Store

CAPACITY = 5


class StoreMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.env = Environment()
        self.store = Store(self.env, capacity=CAPACITY)
        self.model: deque = deque()
        self.counter = 0

    @precondition(lambda self: len(self.model) < CAPACITY)
    @rule()
    def put_when_space(self):
        item = self.counter
        self.counter += 1
        event = self.store.put(item)
        self.env.run()
        assert event.triggered  # must complete immediately below capacity
        self.model.append(item)

    @precondition(lambda self: len(self.model) == CAPACITY)
    @rule()
    def put_when_full_blocks(self):
        event = self.store.put("blocked")
        self.env.run()
        assert not event.triggered
        # Unblock it right away to keep the machine simple: one get
        # admits the blocked put.
        got = self.store.get()
        self.env.run()
        assert got.triggered
        assert got.value == self.model.popleft()
        assert event.triggered
        self.model.append("blocked")

    @precondition(lambda self: len(self.model) > 0)
    @rule()
    def get_when_nonempty(self):
        event = self.store.get()
        self.env.run()
        assert event.triggered
        assert event.value == self.model.popleft()

    @precondition(lambda self: len(self.model) == 0)
    @rule()
    def try_get_empty(self):
        assert self.store.try_get() is None

    @rule(n=st.integers(min_value=1, max_value=3))
    def drain_some(self, n):
        for _ in range(min(n, len(self.model))):
            item = self.store.try_get()
            assert item == self.model.popleft()

    @invariant()
    def sizes_agree(self):
        assert len(self.store) == len(self.model)

    @invariant()
    def full_flag_agrees(self):
        assert self.store.is_full == (len(self.model) >= CAPACITY)


TestStoreStateful = StoreMachine.TestCase
TestStoreStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
