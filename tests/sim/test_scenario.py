"""Tests for the scenario runner configuration surface."""

from __future__ import annotations

import pytest

from repro.data import Compressibility, RepeatingSource
from repro.sim import (
    PAPER_TOTAL_BYTES,
    CodecSimModel,
    ScenarioConfig,
    make_dynamic_factory,
    make_static_factory,
    run_transfer_scenario,
)
from repro.sim.fluctuation import ConstantCapacity
from repro.sim.hypervisor import PROFILES


class TestScenarioConfig:
    def test_defaults_match_paper(self):
        cfg = ScenarioConfig(scheme_factory=make_dynamic_factory())
        assert cfg.total_bytes == PAPER_TOTAL_BYTES == 50 * 10**9
        assert cfg.epoch_seconds == 2.0
        assert cfg.n_background == 0
        assert cfg.profile.name == "kvm-paravirt"

    def test_factories_produce_named_schemes(self):
        assert make_static_factory(1, "LIGHT")(4).name == "LIGHT"
        assert make_dynamic_factory()(4).name == "DYNAMIC"
        assert make_dynamic_factory(alpha=0.1)(4).model.alpha == 0.1

    def test_custom_source_factory_wins(self):
        marker = RepeatingSource(b"z", 300_000_000, Compressibility.LOW)
        cfg = ScenarioConfig(
            scheme_factory=make_static_factory(0, "NO"),
            compressibility=Compressibility.HIGH,  # should be ignored
            source_factory=lambda: marker,
            total_bytes=300_000_000,
        )
        result = run_transfer_scenario(cfg)
        assert marker.exhausted
        assert result.total_app_bytes == pytest.approx(300_000_000)

    def test_custom_fluctuation_model(self):
        cfg = ScenarioConfig(
            scheme_factory=make_static_factory(0, "NO"),
            total_bytes=500_000_000,
            fluctuation=ConstantCapacity(factor=0.5),
            seed=9,
        )
        result = run_transfer_scenario(cfg)
        # Half the capacity -> about twice the nominal transfer time.
        nominal = 500_000_000 / PROFILES["kvm-paravirt"].net_app_rate
        assert result.completion_time == pytest.approx(2 * nominal, rel=0.05)

    def test_custom_profile(self):
        cfg = ScenarioConfig(
            scheme_factory=make_static_factory(0, "NO"),
            total_bytes=500_000_000,
            profile=PROFILES["native"],
            fluctuation=ConstantCapacity(),
            seed=9,
        )
        result = run_transfer_scenario(cfg)
        nominal = 500_000_000 / PROFILES["native"].net_app_rate
        assert result.completion_time == pytest.approx(nominal, rel=0.05)

    def test_custom_codec_model(self):
        from repro.sim.calibration import CODEC_MODEL, CodecPoint

        table = dict(CODEC_MODEL)
        # Make LIGHT worthless: same ratio as NO, slow.
        for cls in Compressibility:
            table[("LIGHT", cls)] = CodecPoint(1e6, 1.0, 1e7, 0.0)
        cfg = ScenarioConfig(
            scheme_factory=make_static_factory(1, "LIGHT"),
            total_bytes=300_000_000,
            model=CodecSimModel(table),
            seed=3,
        )
        result = run_transfer_scenario(cfg)
        # 300 MB at ~1 MB/s compression-bound.
        assert result.completion_time > 250
