"""Tests for disk models, especially the XEN write-back cache artifact."""

from __future__ import annotations

import random

import pytest

from repro.sim import CachedDisk, DiskCacheParams, Environment, PlainDisk


def make_cached(env, absorb=700.0, drain=80.0, high=3000.0, low=800.0, sigma=0.0):
    params = DiskCacheParams(
        absorb_rate=absorb, drain_rate=drain, high_watermark=high, low_watermark=low
    )
    return CachedDisk(env, params, random.Random(0), jitter_sigma=sigma)


class TestPlainDisk:
    def test_write_time_matches_rate(self):
        env = Environment()
        disk = PlainDisk(env, rate=100.0, rng=random.Random(0), jitter_sigma=0.0)

        def proc():
            yield from disk.write(500.0)
            return env.now

        assert env.run_process(proc()) == pytest.approx(5.0)
        assert disk.bytes_written == 500.0

    def test_read(self):
        env = Environment()
        disk = PlainDisk(env, rate=100.0, rng=random.Random(0), jitter_sigma=0.0)

        def proc():
            yield from disk.read(200.0)
            return env.now

        assert env.run_process(proc()) == pytest.approx(2.0)
        assert disk.bytes_read == 200.0

    def test_jitter_varies_rate(self):
        env = Environment()
        disk = PlainDisk(env, rate=100.0, rng=random.Random(1), jitter_sigma=0.2)
        durations = []

        def proc():
            for _ in range(20):
                t0 = env.now
                yield from disk.write(100.0)
                durations.append(env.now - t0)

        env.run_process(proc())
        assert len(set(round(d, 6) for d in durations)) > 5

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            PlainDisk(env, rate=0.0, rng=random.Random(0))
        disk = PlainDisk(env, rate=10.0, rng=random.Random(0))
        with pytest.raises(ValueError):
            env.run_process(disk.write(-1))


class TestCachedDisk:
    def test_fast_absorption_below_watermark(self):
        env = Environment()
        disk = make_cached(env)

        def proc():
            yield from disk.write(1000.0)
            return env.now

        duration = env.run_process(proc())
        # Absorbed at ~700 B/s, far faster than the 80 B/s disk.
        assert duration == pytest.approx(1000.0 / 700.0, rel=0.01)

    def test_stall_at_high_watermark(self):
        env = Environment()
        disk = make_cached(env, high=1000.0, low=200.0)
        marks = []

        def proc():
            # Fill to the watermark, then write more: must stall.
            yield from disk.write(1000.0)
            marks.append(env.now)
            yield from disk.write(100.0)
            marks.append(env.now)

        env.run_process(proc())
        fill_end, after_stall = marks
        # The second write waited for the drain to the low watermark.
        assert after_stall - fill_end > 5.0

    def test_displayed_rate_bimodal(self):
        """Fast samples during absorption, near-zero during stalls —
        the exact Figure 3 artifact."""
        env = Environment()
        disk = make_cached(env, high=1000.0, low=200.0)
        rates = []

        def proc():
            for _ in range(200):
                t0 = env.now
                yield from disk.write(20.0)
                rates.append(20.0 / (env.now - t0))

        env.run_process(proc())
        fast = [r for r in rates if r > 300]
        slow = [r for r in rates if r < 50]
        assert fast and slow  # bimodal
        # Sample-mean is dominated by the fast phase (spuriously high).
        assert sum(rates) / len(rates) > 300

    def test_unflushed_bytes_remain(self):
        """'large portions of the data had not actually been written to
        the physical hard drive' (Section II-B)."""
        env = Environment()
        disk = make_cached(env)

        def proc():
            yield from disk.write(2000.0)

        env.run_process(proc())
        assert disk.unflushed_bytes > 1000.0

    def test_fsync_drains_everything(self):
        env = Environment()
        disk = make_cached(env)

        def proc():
            yield from disk.write(2000.0)
            yield from disk.fsync()

        env.run_process(proc())
        assert disk.unflushed_bytes == pytest.approx(0.0, abs=1e-6)
        assert disk.bytes_flushed == pytest.approx(2000.0)

    def test_conservation(self):
        """written == flushed + dirty at all times."""
        env = Environment()
        disk = make_cached(env, high=500.0, low=100.0)

        def proc():
            for _ in range(37):
                yield from disk.write(50.0)

        env.run_process(proc())
        assert disk.bytes_written == pytest.approx(
            disk.bytes_flushed + disk.dirty_bytes
        )

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_cached(env, low=500.0, high=500.0)
        with pytest.raises(ValueError):
            make_cached(env, absorb=50.0, drain=80.0)
        disk = make_cached(env)
        with pytest.raises(ValueError):
            env.run_process(disk.write(-1.0))
