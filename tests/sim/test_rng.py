"""Tests for deterministic named RNG streams."""

from __future__ import annotations

from repro.sim import RngStreams


class TestRngStreams:
    def test_same_name_same_stream_object(self):
        rngs = RngStreams(1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_reproducible_across_instances(self):
        a = RngStreams(42).stream("link").random()
        b = RngStreams(42).stream("link").random()
        assert a == b

    def test_streams_independent_by_name(self):
        rngs = RngStreams(42)
        a = [rngs.stream("a").random() for _ in range(5)]
        b = [rngs.stream("b").random() for _ in range(5)]
        assert a != b

    def test_adding_stream_does_not_perturb_existing(self):
        """The key property: runs stay reproducible when components
        (and their streams) are added."""
        rngs1 = RngStreams(7)
        seq_before = [rngs1.stream("link").random() for _ in range(3)]

        rngs2 = RngStreams(7)
        rngs2.stream("new-sampler").random()  # extra consumer
        seq_after = [rngs2.stream("link").random() for _ in range(3)]
        assert seq_before == seq_after

    def test_seed_changes_streams(self):
        assert RngStreams(1).stream("x").random() != RngStreams(2).stream("x").random()

    def test_fork_derives_new_seed(self):
        base = RngStreams(5)
        v1 = base.fork("repeat-1").stream("x").random()
        v2 = base.fork("repeat-2").stream("x").random()
        assert v1 != v2
        # Forks are themselves reproducible.
        assert RngStreams(5).fork("repeat-1").stream("x").random() == v1
