"""Tests for physical host / virtual machine composition."""

from __future__ import annotations

import pytest

from repro.sim import Environment, PROFILES, PhysicalHost, RngStreams
from repro.sim.disk import CachedDisk, PlainDisk


def make_host(platform="kvm-paravirt", seed=1, name="h"):
    env = Environment()
    return env, PhysicalHost(env, PROFILES[platform], RngStreams(seed), name=name)


class TestPhysicalHost:
    def test_nic_capacity_from_profile(self):
        env, host = make_host("native")
        assert host.nic.capacity == PROFILES["native"].net_app_rate

    def test_nic_capacity_override(self):
        env = Environment()
        host = PhysicalHost(
            env, PROFILES["native"], RngStreams(0), nic_capacity=42.0
        )
        assert host.nic.capacity == 42.0

    def test_xen_gets_cached_disk(self):
        env, host = make_host("xen-paravirt")
        assert isinstance(host.disk, CachedDisk)

    def test_others_get_plain_disk(self):
        for platform in ("native", "kvm-full", "kvm-paravirt", "ec2"):
            env, host = make_host(platform)
            assert isinstance(host.disk, PlainDisk), platform

    def test_spawn_vm_and_colocation(self):
        env, host = make_host()
        vm1 = host.spawn_vm()
        vm2 = host.spawn_vm("custom-name")
        assert vm2.name == "custom-name"
        assert host.colocated_load(vm1) == 1
        assert host.colocated_load(vm2) == 1
        vm3 = host.spawn_vm()
        assert host.colocated_load(vm1) == 2

    def test_rng_streams_named_per_host(self):
        env, host = make_host(name="a")
        r1 = host.rng("x")
        r2 = host.rng("x")
        assert r1 is r2  # same purpose -> same stream


class TestVirtualMachine:
    def test_charges_route_to_both_ledgers(self):
        env, host = make_host("kvm-paravirt")
        vm = host.spawn_vm()
        vm.charge_net_send(1e9)
        assert vm.ledger.vm.total() > 0
        assert vm.ledger.host.total() > vm.ledger.vm.total()

    def test_each_op_charges_its_own_pair(self):
        env, host = make_host("xen-paravirt")
        vm = host.spawn_vm()
        vm.charge_file_read(1e9)
        read_total = vm.ledger.host.total()
        vm2 = host.spawn_vm()
        vm2.charge_net_recv(1e9)
        recv_total = vm2.ledger.host.total()
        assert read_total != recv_total

    def test_open_net_flow_on_host_nic(self):
        env, host = make_host()
        vm = host.spawn_vm()
        flow = vm.open_net_flow()
        assert id(flow) in host.nic._flows

    def test_disk_is_hosts_disk(self):
        env, host = make_host()
        vm = host.spawn_vm()
        assert vm.disk is host.disk
