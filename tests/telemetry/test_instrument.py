"""End-to-end: instrumented runs, metric bridging, traces, CLI report."""

from __future__ import annotations

import io
import json

from repro.core.stream import AdaptiveBlockWriter
from repro.data import Compressibility, SyntheticCorpus
from repro.io.cli import telemetry_main
from repro.sim.scenario import ScenarioConfig, make_dynamic_factory, run_transfer_scenario
from repro.telemetry.events import BUS, EpochClosed, LevelSwitched, TransferProgress
from repro.telemetry.instrument import instrumented
from repro.telemetry.report import load_trace, render_report, summarize


def drive_adaptive_writer(n_blocks: int = 12) -> AdaptiveBlockWriter:
    """Push compressible blocks through an adaptive writer on a fake clock."""
    payload = SyntheticCorpus(file_size=32 * 1024, seed=7).payload(
        Compressibility.HIGH
    )
    ticks = iter(float(i) for i in range(10_000))
    writer = AdaptiveBlockWriter(
        io.BytesIO(),
        block_size=16 * 1024,
        epoch_seconds=1.0,
        clock=lambda: next(ticks),
    )
    for _ in range(n_blocks):
        writer.write(payload[: 16 * 1024])
    writer.close()
    return writer


class TestInstrumentedRealPath:
    def test_metrics_and_trace_from_adaptive_writer(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        with instrumented(str(trace), capture_events=True) as session:
            drive_adaptive_writer()
        snap = session.metrics_snapshot()
        assert snap["epochs.closed"] > 0
        assert snap["blocks.compress"] > 0
        assert snap["codec.compress.seconds"]["count"] == snap["blocks.compress"]
        progresses = session.memory.of_type(TransferProgress)
        assert progresses and progresses[-1].ratio < 1.0  # HIGH data compresses
        # Trace on disk matches the in-memory capture.
        lines = trace.read_text().strip().splitlines()
        assert len(lines) == len(session.memory.events)
        for line in lines:
            json.loads(line)

    def test_clock_restored_and_bus_quiet_after_exit(self):
        previous_clock = BUS.clock
        with instrumented(clock=lambda: 123.0):
            assert BUS.active
            assert BUS.now() == 123.0
        assert not BUS.active
        assert BUS.clock is previous_clock

    def test_prometheus_text_from_session(self):
        with instrumented() as session:
            drive_adaptive_writer()
        text = session.prometheus_text()
        assert "# TYPE epochs_closed counter" in text
        assert "codec_compress_seconds_bucket" in text


class TestInstrumentedSimulation:
    def test_sim_trace_uses_virtual_time(self, tmp_path):
        trace = tmp_path / "sim.jsonl"
        cfg = ScenarioConfig(
            scheme_factory=make_dynamic_factory(),
            compressibility=Compressibility.HIGH,
            total_bytes=2 * 10**9,
            n_background=0,
            seed=7,
        )
        with instrumented(str(trace), capture_events=True) as session:
            result = run_transfer_scenario(cfg)
        epochs = session.memory.of_type(EpochClosed)
        assert len(epochs) == len(result.epochs)
        assert all(e.source == "sim" for e in epochs)
        # Timestamps are simulated seconds bounded by the completion time.
        assert epochs[-1].ts <= result.completion_time + 1e-6
        switches = session.memory.of_type(LevelSwitched)
        assert switches, "DYNAMIC on HIGH data must switch at least once"
        # Clock restored: wall clock again, not frozen sim time.
        assert BUS.now() != epochs[-1].ts


class TestFleetReportSections:
    def test_fleet_trace_renders_flow_and_control_sections(self, tmp_path):
        from repro.sim import FleetFlowSpec, run_fleet_scenario

        trace = tmp_path / "fleet.jsonl"
        specs = [
            FleetFlowSpec("hi", Compressibility.HIGH, 100 * 10**6),
            FleetFlowSpec("lo", Compressibility.LOW, 60 * 10**6),
        ]
        with instrumented(str(trace)):
            run_fleet_scenario(
                specs,
                policy="greedy-throughput",
                cores=1.0,
                seed=3,
                epoch_seconds=0.5,
                control_interval=1.0,
            )
        summary = summarize(load_trace(str(trace)))
        # Per-flow fold from the FlowRates stream...
        assert set(summary.flows) == {0, 1}
        assert all(fl["samples"] > 0 for fl in summary.flows.values())
        # ...and the policy-pass fold from FleetRebalanced.
        assert summary.control["greedy-throughput"]["passes"] > 0
        text = render_report(summary)
        assert "-- flows --" in text
        assert "-- fleet control --" in text
        assert "greedy-throughput" in text


class TestReportAndCli:
    def make_trace(self, tmp_path) -> str:
        trace = tmp_path / "trace.jsonl"
        cfg = ScenarioConfig(
            scheme_factory=make_dynamic_factory(),
            compressibility=Compressibility.HIGH,
            total_bytes=2 * 10**9,
            seed=3,
        )
        with instrumented(str(trace)):
            run_transfer_scenario(cfg)
        return str(trace)

    def test_render_report_sections(self, tmp_path):
        path = self.make_trace(tmp_path)
        summary = summarize(load_trace(path))
        text = render_report(summary)
        assert "telemetry run report" in text
        assert "EpochClosed" in text
        assert "level occupancy" in text
        assert "level-switch timeline" in text

    def test_cli_report_text(self, tmp_path, capsys):
        path = self.make_trace(tmp_path)
        assert telemetry_main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "telemetry run report" in out
        assert "EpochClosed" in out

    def test_cli_report_json(self, tmp_path, capsys):
        path = self.make_trace(tmp_path)
        assert telemetry_main(["report", path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["epochs"] > 0
        assert data["counts_by_type"]["EpochClosed"] == data["epochs"]
        assert data["app_rate_mbps"]["count"] == data["epochs"]

    def test_cli_missing_file(self, capsys):
        assert telemetry_main(["report", "/nonexistent/trace.jsonl"]) == 1
        assert "error" in capsys.readouterr().err

    def test_cli_rejects_corrupt_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "EpochClosed"}\nnot json at all\n')
        assert telemetry_main(["report", str(bad)]) == 1
        assert "line 2" in capsys.readouterr().err
