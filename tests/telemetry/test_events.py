"""Event bus: delivery order, filtering, and the zero-subscriber fast path."""

from __future__ import annotations

from repro.codecs.block import encode_block
from repro.codecs.zlib_codec import LightZlibCodec
from repro.core.backoff import BackoffTable
from repro.core.controller import AdaptiveController
from repro.telemetry.events import (
    BUS,
    BackoffUpdated,
    EpochClosed,
    EventBus,
    LevelSwitched,
    TelemetryEvent,
)


def make_event(ts: float = 0.0) -> BackoffUpdated:
    return BackoffUpdated(ts=ts, level=1, exponent=2, action="reward")


class TestEventBus:
    def test_publish_delivers_to_subscriber(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append)
        event = make_event()
        bus.publish(event)
        assert got == [event]
        assert bus.published == 1

    def test_delivery_order_matches_publish_order(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append)
        events = [make_event(ts=float(i)) for i in range(10)]
        for event in events:
            bus.publish(event)
        assert got == events

    def test_subscribers_called_in_registration_order(self):
        bus = EventBus()
        calls = []
        bus.subscribe(lambda e: calls.append("first"))
        bus.subscribe(lambda e: calls.append("second"))
        bus.subscribe(lambda e: calls.append("third"))
        bus.publish(make_event())
        assert calls == ["first", "second", "third"]

    def test_type_filtered_subscription(self):
        bus = EventBus()
        backoffs, everything = [], []
        bus.subscribe(backoffs.append, BackoffUpdated)
        bus.subscribe(everything.append)
        backoff = make_event()
        epoch = EpochClosed(
            ts=1.0, source="t", epoch=0, start=0.0, end=1.0,
            app_bytes=10, app_rate=10.0, level=0,
        )
        bus.publish(backoff)
        bus.publish(epoch)
        assert backoffs == [backoff]
        assert everything == [backoff, epoch]

    def test_unsubscribe_deactivates_when_empty(self):
        bus = EventBus()
        handle = bus.subscribe(lambda e: None)
        assert bus.active
        bus.unsubscribe(handle)
        assert not bus.active
        # Double-unsubscribe is harmless.
        bus.unsubscribe(handle)

    def test_clock_is_pluggable(self):
        bus = EventBus(clock=lambda: 42.0)
        assert bus.now() == 42.0
        bus.clock = lambda: 43.0
        assert bus.now() == 43.0


class TestZeroSubscriberFastPath:
    """With no subscriber, instrumented code must not construct events.

    ``BUS.published`` counts every event object that reached the bus,
    so an unchanged counter proves the hooks never allocated one.
    """

    def test_controller_epochs_publish_nothing(self):
        assert not BUS.active
        before = BUS.published
        controller = AdaptiveController(n_levels=4, epoch_seconds=1.0)
        for i in range(50):
            controller.record(1000)
            controller.force_decision(float(i + 1))
        assert BUS.published == before

    def test_block_encode_publishes_nothing(self):
        before = BUS.published
        for _ in range(20):
            encode_block(b"payload " * 512, LightZlibCodec())
        assert BUS.published == before

    def test_backoff_updates_publish_nothing(self):
        before = BUS.published
        table = BackoffTable(4)
        for _ in range(100):
            table.reward(2)
            table.punish(2)
        assert BUS.published == before

    def test_with_subscriber_events_flow_again(self):
        got = []
        BUS.subscribe(got.append, BackoffUpdated)
        table = BackoffTable(4)
        table.reward(0)
        assert len(got) == 1 and got[0].action == "reward"


class TestInstrumentedEmission:
    def test_controller_emits_epoch_and_switch(self):
        got: list[TelemetryEvent] = []
        BUS.subscribe(got.append)
        controller = AdaptiveController(n_levels=4, epoch_seconds=1.0)
        controller.record(10_000)
        controller.force_decision(1.0)  # first decision probes level 1
        epochs = [e for e in got if isinstance(e, EpochClosed)]
        switches = [e for e in got if isinstance(e, LevelSwitched)]
        assert len(epochs) == 1
        assert epochs[0].source == "controller"
        assert epochs[0].app_bytes == 10_000
        assert len(switches) == 1
        assert (switches[0].level_before, switches[0].level_after) == (0, 1)

    def test_events_are_immutable(self):
        event = make_event()
        try:
            event.level = 3  # type: ignore[misc]
        except AttributeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("frozen event accepted mutation")
