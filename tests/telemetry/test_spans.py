"""Spans: nesting, the simulated clock, and the inactive fast path."""

from __future__ import annotations

from repro.sim.engine import Environment
from repro.telemetry.events import BUS, SpanClosed
from repro.telemetry.spans import current_depth, span


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestSpanBasics:
    def test_span_records_duration_on_fake_clock(self):
        got = []
        BUS.subscribe(got.append, SpanClosed)
        clock = FakeClock()
        BUS.clock = clock
        with span("compress", level=2):
            clock.t = 1.5
        assert len(got) == 1
        s = got[0]
        assert s.name == "compress"
        assert s.start == 0.0 and s.end == 1.5
        assert s.seconds == 1.5
        assert s.depth == 0
        assert s.tags == (("level", 2),)

    def test_nesting_depths_and_close_order(self):
        got = []
        BUS.subscribe(got.append, SpanClosed)
        BUS.clock = FakeClock()
        with span("outer"):
            assert current_depth() == 1
            with span("inner"):
                assert current_depth() == 2
            assert current_depth() == 1
        assert current_depth() == 0
        # Inner closes first, and depths reflect nesting at entry.
        assert [(s.name, s.depth) for s in got] == [("inner", 1), ("outer", 0)]

    def test_depth_restored_on_exception(self):
        BUS.subscribe(lambda e: None, SpanClosed)
        try:
            with span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_depth() == 0

    def test_inactive_bus_is_free(self):
        assert not BUS.active
        before = BUS.published
        with span("idle") as s:
            assert s.start is None  # never read the clock
        assert BUS.published == before
        assert current_depth() == 0


class TestSpanUnderSimulatedClock:
    def test_virtual_time_spans(self):
        """Spans driven by the DES environment measure simulated seconds."""
        got = []
        BUS.subscribe(got.append, SpanClosed)
        env = Environment()
        previous = env.bind_telemetry(BUS)
        try:

            def proc():
                with span("sim-phase", stage="warmup"):
                    yield env.timeout(10.0)
                    with span("sim-inner"):
                        yield env.timeout(2.5)

            env.run_process(proc())
        finally:
            BUS.clock = previous
        by_name = {s.name: s for s in got}
        assert by_name["sim-phase"].seconds == 12.5
        assert by_name["sim-phase"].depth == 0
        assert by_name["sim-inner"].seconds == 2.5
        assert by_name["sim-inner"].depth == 1
        # Timestamps are virtual seconds, not wall time.
        assert by_name["sim-phase"].end == 12.5
