"""Exporters: JSONL validity, Prometheus text shape, in-memory capture.

The Prometheus checks use a *hand-written strict parser* of the text
exposition format (``prometheus_client`` is deliberately not a
dependency): every rendered line must match the format's grammar, label
values must unescape to the original strings, and non-finite samples
must use the reserved ``+Inf``/``-Inf``/``NaN`` spellings.
"""

from __future__ import annotations

import io
import json
import math
import re
import time
from pathlib import Path

import pytest

from repro.telemetry.events import (
    BUS,
    BlockCompressed,
    EpochClosed,
    EventBus,
    SpanClosed,
)
from repro.telemetry.exporters import (
    InMemoryExporter,
    JsonlExporter,
    PrometheusTextExporter,
    event_to_dict,
    prom_label_escape,
    prom_metric_name,
    prom_number,
)
from repro.telemetry.metrics import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden" / "metrics.prom"

# ---------------------------------------------------------------------------
# A strict parser of the Prometheus text exposition format (v0.0.4).
#
# Deliberately unforgiving: anything the real Prometheus scraper would
# reject (illegal metric name, raw newline in a label, ``inf`` instead
# of ``+Inf``) raises here.  This is the acceptance check for
# everything ``/metrics`` renders.
# ---------------------------------------------------------------------------

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_FLOAT = re.compile(r"[-+]?(\d+\.?\d*|\.\d+)([eE][-+]?\d+)?\Z")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$"
)
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _parse_label_body(body: str) -> dict:
    """``k="v",k2="v2"`` → dict, unescaping values; raise on bad grammar."""
    labels: dict = {}
    i = 0
    while i < len(body):
        m = _LABEL_NAME.match(body, i)
        if m is None:
            raise ValueError(f"bad label name at {body[i:]!r}")
        name = m.group(0)
        i = m.end()
        if body[i : i + 2] != '="':
            raise ValueError(f"expected '=\"' after label {name!r}")
        i += 2
        value_chars = []
        while True:
            if i >= len(body):
                raise ValueError("unterminated label value")
            ch = body[i]
            if ch == "\\":
                esc = body[i + 1 : i + 2]
                if esc == "n":
                    value_chars.append("\n")
                elif esc in ('"', "\\"):
                    value_chars.append(esc)
                else:
                    raise ValueError(f"illegal escape \\{esc}")
                i += 2
            elif ch == '"':
                i += 1
                break
            elif ch == "\n":
                raise ValueError("raw newline inside label value")
            else:
                value_chars.append(ch)
                i += 1
        labels[name] = "".join(value_chars)
        if i < len(body):
            if body[i] != ",":
                raise ValueError(f"expected ',' between labels at {body[i:]!r}")
            i += 1
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    if _FLOAT.match(text) is None:
        raise ValueError(f"illegal sample value {text!r}")
    return float(text)


def parse_exposition(text: str):
    """Parse exposition text → list of ``(name, labels, value)`` samples.

    Raises ``ValueError`` on any line a strict scraper would reject,
    including a sample whose base name contradicts its ``# TYPE``.
    """
    samples = []
    typed: dict = {}
    for line in text.split("\n"):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"malformed TYPE line {line!r}")
            _, _, name, kind = parts
            if _METRIC_NAME.match(name) is None:
                raise ValueError(f"illegal metric name {name!r}")
            if kind not in _TYPES:
                raise ValueError(f"unknown metric type {kind!r}")
            if name in typed:
                raise ValueError(f"duplicate TYPE for {name!r}")
            typed[name] = kind
        elif line.startswith("# HELP "):
            if len(line.split(" ", 3)) < 4:
                raise ValueError(f"malformed HELP line {line!r}")
        elif line.startswith("#"):
            continue  # plain comment
        else:
            m = _SAMPLE.match(line)
            if m is None:
                raise ValueError(f"malformed sample line {line!r}")
            name = m.group("name")
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            if name not in typed and base not in typed:
                raise ValueError(f"sample {name!r} has no TYPE declaration")
            labels = _parse_label_body(m.group("labels") or "")
            samples.append((name, labels, _parse_value(m.group("value"))))
    return samples


def sample_epoch(ts: float = 1.0, rate: float = 5e7) -> EpochClosed:
    return EpochClosed(
        ts=ts, source="test", epoch=0, start=0.0, end=ts,
        app_bytes=1000, app_rate=rate, level=1,
    )


def sample_epoch(ts: float = 1.0, rate: float = 5e7) -> EpochClosed:
    return EpochClosed(
        ts=ts, source="test", epoch=0, start=0.0, end=ts,
        app_bytes=1000, app_rate=rate, level=1,
    )


class TestEventToDict:
    def test_includes_type_and_fields(self):
        d = event_to_dict(sample_epoch())
        assert d["type"] == "EpochClosed"
        assert d["source"] == "test"
        assert d["app_rate"] == 5e7

    def test_non_finite_floats_become_null(self):
        d = event_to_dict(sample_epoch(rate=float("inf")))
        assert d["app_rate"] is None
        json.dumps(d, allow_nan=False)

    def test_span_tags_become_mapping(self):
        event = SpanClosed(
            ts=1.0, name="s", start=0.0, end=1.0, depth=0,
            tags=(("level", 2), ("rate", float("nan"))),
        )
        d = event_to_dict(event)
        assert d["tags"] == {"level": 2, "rate": None}


class TestJsonlExporter:
    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        exporter = JsonlExporter(str(path)).attach(bus)
        bus.publish(sample_epoch(ts=1.0))
        bus.publish(sample_epoch(ts=2.0, rate=float("inf")))
        exporter.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["ts"] == 1.0
        assert parsed[1]["app_rate"] is None  # inf sanitised, not Infinity
        assert exporter.events_written == 2

    def test_file_like_target_not_closed(self):
        buf = io.StringIO()
        bus = EventBus()
        with JsonlExporter(buf).attach(bus):
            bus.publish(sample_epoch())
        assert not buf.closed
        assert json.loads(buf.getvalue())["type"] == "EpochClosed"

    def test_double_attach_rejected(self):
        exporter = InMemoryExporter().attach(EventBus())
        with pytest.raises(RuntimeError):
            exporter.attach(EventBus())


class TestInMemoryExporter:
    def test_capture_and_filter(self):
        bus = EventBus()
        exporter = InMemoryExporter().attach(bus)
        epoch = sample_epoch()
        block = BlockCompressed(
            ts=1.0, codec="zlib-1", direction="compress",
            uncompressed_bytes=100, compressed_bytes=10, seconds=0.001,
        )
        bus.publish(epoch)
        bus.publish(block)
        assert exporter.events == [epoch, block]
        assert exporter.of_type(BlockCompressed) == [block]
        exporter.detach()
        bus.publish(epoch)
        assert len(exporter.events) == 2
        exporter.clear()
        assert exporter.events == []


class TestPrometheusTextExporter:
    def test_render_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("blocks.compress").inc(7)
        reg.gauge("level.current").set(2)
        hist = reg.histogram("codec.compress.seconds", buckets=[0.001, 0.01])
        hist.observe(0.0005)
        hist.observe(0.005)
        hist.observe(5.0)
        text = PrometheusTextExporter(reg).render()
        assert "# TYPE blocks_compress counter" in text
        assert "blocks_compress 7.0" in text
        assert "# TYPE level_current gauge" in text
        assert "level_current 2.0" in text
        assert '{le="0.001"} 1' in text
        assert '{le="0.01"} 2' in text
        assert '{le="+Inf"} 3' in text
        assert "codec_compress_seconds_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert PrometheusTextExporter(MetricsRegistry()).render() == ""


class TestJsonlExporterBoundedFlush:
    """The crash-tail bound: data reaches the OS *before* close()."""

    def test_flush_every_n_events(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        exporter = JsonlExporter(
            str(path), flush_every_events=2, flush_every_seconds=3600.0
        ).attach(bus)
        for i in range(5):
            bus.publish(sample_epoch(ts=float(i)))
        # No close(): simulate a crashed daemon.  Events 1-4 were pushed
        # to the OS by the two count-triggered flushes; only the 5th may
        # still sit in the userspace buffer.
        on_disk = path.read_text().splitlines()
        assert len(on_disk) >= 4
        for line in on_disk:
            json.loads(line)  # every flushed line is complete JSON
        assert exporter.flushes == 2
        bus.publish(sample_epoch(ts=5.0))
        assert exporter.flushes == 3
        assert len(path.read_text().splitlines()) == 6
        exporter.close()

    def test_flush_on_elapsed_time(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        exporter = JsonlExporter(
            str(path), flush_every_events=0, flush_every_seconds=0.05
        ).attach(bus)
        bus.publish(sample_epoch(ts=1.0))
        time.sleep(0.06)
        bus.publish(sample_epoch(ts=2.0))  # elapsed > bound → flush
        assert exporter.flushes >= 1
        assert len(path.read_text().splitlines()) == 2
        exporter.close()

    def test_write_through_mode(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        exporter = JsonlExporter(str(path), flush_every_events=1).attach(bus)
        bus.publish(sample_epoch())
        assert len(path.read_text().splitlines()) == 1  # no close needed
        exporter.close()

    def test_manual_flush(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        exporter = JsonlExporter(
            str(path), flush_every_events=1000, flush_every_seconds=3600.0
        ).attach(bus)
        bus.publish(sample_epoch())
        exporter.flush()
        assert exporter.flushes == 1
        assert len(path.read_text().splitlines()) == 1
        exporter.close()

    def test_ctor_validation_before_file_open(self, tmp_path):
        path = tmp_path / "never-created.jsonl"
        with pytest.raises(ValueError):
            JsonlExporter(str(path), flush_every_events=-1)
        with pytest.raises(ValueError):
            JsonlExporter(str(path), flush_every_seconds=0.0)
        assert not path.exists()  # validated before opening the target


class TestPromHelpers:
    def test_metric_name_sanitization(self):
        assert prom_metric_name("blocks.compress") == "blocks_compress"
        assert prom_metric_name("span.serve.decode.seconds") == (
            "span_serve_decode_seconds"
        )
        assert prom_metric_name("rate-limit") == "rate_limit"
        assert prom_metric_name("4k.blocks") == "_4k_blocks"
        assert prom_metric_name("") == "_"
        assert _METRIC_NAME.match(prom_metric_name("4k.blocks"))

    def test_number_reserved_spellings(self):
        assert prom_number(float("inf")) == "+Inf"
        assert prom_number(float("-inf")) == "-Inf"
        assert prom_number(float("nan")) == "NaN"
        assert prom_number(7) == "7.0"
        assert prom_number(0.001) == "0.001"

    def test_label_escape(self):
        assert prom_label_escape('a"b') == 'a\\"b'
        assert prom_label_escape("a\\b") == "a\\\\b"
        assert prom_label_escape("a\nb") == "a\\nb"
        assert prom_label_escape(123) == "123"

    @pytest.mark.parametrize(
        "evil",
        ['peer "quoted"', "back\\slash", "multi\nline", '\\"both\n\\'],
    )
    def test_label_escape_round_trips_through_parser(self, evil):
        line = (
            "# TYPE m gauge\n"
            f'm{{peer="{prom_label_escape(evil)}"}} 1.0\n'
        )
        samples = parse_exposition(line)
        assert samples == [("m", {"peer": evil}, 1.0)]


class TestStrictExpositionParser:
    """The parser itself must reject what a real scraper rejects."""

    @pytest.mark.parametrize(
        "bad",
        [
            "# TYPE 4bad counter\n4bad 1\n",  # illegal name
            "# TYPE m widget\nm 1\n",  # unknown type
            "m 1\n",  # sample without TYPE
            "# TYPE m gauge\nm inf\n",  # wrong Inf spelling
            "# TYPE m gauge\nm nan\n",  # wrong NaN spelling
            '# TYPE m gauge\nm{peer="x} 1\n',  # unterminated label
            '# TYPE m gauge\nm{peer="a\\qb"} 1\n',  # illegal escape
            "# TYPE m gauge\n# TYPE m counter\nm 1\n",  # duplicate TYPE
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_exposition(bad)

    def test_accepts_histogram_family(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 3.5\n"
            "h_count 2\n"
        )
        assert len(parse_exposition(text)) == 4


def _golden_registry() -> MetricsRegistry:
    """The fixed registry behind the golden exposition file."""
    reg = MetricsRegistry()
    reg.counter("blocks.compress").inc(7)
    reg.counter("4k.blocks").inc(3)  # leading digit → sanitised name
    reg.gauge("level.current").set(2)
    reg.gauge("rate.ceiling").set(float("inf"))
    reg.gauge("rate.floor").set(float("-inf"))
    reg.gauge("rate.unknown").set(float("nan"))
    hist = reg.histogram("codec.compress.seconds", buckets=[0.001, 0.01])
    hist.observe(0.0005)
    hist.observe(0.005)
    hist.observe(5.0)
    return reg


class TestGoldenExposition:
    """Byte-exact golden check of the rendered exposition format.

    The golden file is hand-reviewed: regenerate with
    ``python -m tests.telemetry.test_exporters`` after an intentional
    format change, and re-review the diff.
    """

    def test_matches_golden_file(self):
        rendered = PrometheusTextExporter(_golden_registry()).render()
        assert rendered == GOLDEN.read_text(), (
            "exposition format drifted from the reviewed golden file; "
            "if intentional, regenerate tests/telemetry/golden/metrics.prom"
        )

    def test_golden_passes_strict_parser(self):
        samples = parse_exposition(GOLDEN.read_text())
        by_name = {name: value for name, labels, value in samples if not labels}
        assert by_name["blocks_compress"] == 7.0
        assert by_name["_4k_blocks"] == 3.0
        assert by_name["rate_ceiling"] == math.inf
        assert by_name["rate_floor"] == -math.inf
        assert math.isnan(by_name["rate_unknown"])
        buckets = [
            (labels["le"], value)
            for name, labels, value in samples
            if name == "codec_compress_seconds_bucket"
        ]
        assert buckets == [("0.001", 1.0), ("0.01", 2.0), ("+Inf", 3.0)]


if __name__ == "__main__":  # golden-file regeneration entry point
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(PrometheusTextExporter(_golden_registry()).render())
    print(f"wrote {GOLDEN}")
