"""Exporters: JSONL validity, Prometheus text shape, in-memory capture."""

from __future__ import annotations

import io
import json

import pytest

from repro.telemetry.events import (
    BUS,
    BlockCompressed,
    EpochClosed,
    EventBus,
    SpanClosed,
)
from repro.telemetry.exporters import (
    InMemoryExporter,
    JsonlExporter,
    PrometheusTextExporter,
    event_to_dict,
)
from repro.telemetry.metrics import MetricsRegistry


def sample_epoch(ts: float = 1.0, rate: float = 5e7) -> EpochClosed:
    return EpochClosed(
        ts=ts, source="test", epoch=0, start=0.0, end=ts,
        app_bytes=1000, app_rate=rate, level=1,
    )


class TestEventToDict:
    def test_includes_type_and_fields(self):
        d = event_to_dict(sample_epoch())
        assert d["type"] == "EpochClosed"
        assert d["source"] == "test"
        assert d["app_rate"] == 5e7

    def test_non_finite_floats_become_null(self):
        d = event_to_dict(sample_epoch(rate=float("inf")))
        assert d["app_rate"] is None
        json.dumps(d, allow_nan=False)

    def test_span_tags_become_mapping(self):
        event = SpanClosed(
            ts=1.0, name="s", start=0.0, end=1.0, depth=0,
            tags=(("level", 2), ("rate", float("nan"))),
        )
        d = event_to_dict(event)
        assert d["tags"] == {"level": 2, "rate": None}


class TestJsonlExporter:
    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        exporter = JsonlExporter(str(path)).attach(bus)
        bus.publish(sample_epoch(ts=1.0))
        bus.publish(sample_epoch(ts=2.0, rate=float("inf")))
        exporter.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["ts"] == 1.0
        assert parsed[1]["app_rate"] is None  # inf sanitised, not Infinity
        assert exporter.events_written == 2

    def test_file_like_target_not_closed(self):
        buf = io.StringIO()
        bus = EventBus()
        with JsonlExporter(buf).attach(bus):
            bus.publish(sample_epoch())
        assert not buf.closed
        assert json.loads(buf.getvalue())["type"] == "EpochClosed"

    def test_double_attach_rejected(self):
        exporter = InMemoryExporter().attach(EventBus())
        with pytest.raises(RuntimeError):
            exporter.attach(EventBus())


class TestInMemoryExporter:
    def test_capture_and_filter(self):
        bus = EventBus()
        exporter = InMemoryExporter().attach(bus)
        epoch = sample_epoch()
        block = BlockCompressed(
            ts=1.0, codec="zlib-1", direction="compress",
            uncompressed_bytes=100, compressed_bytes=10, seconds=0.001,
        )
        bus.publish(epoch)
        bus.publish(block)
        assert exporter.events == [epoch, block]
        assert exporter.of_type(BlockCompressed) == [block]
        exporter.detach()
        bus.publish(epoch)
        assert len(exporter.events) == 2
        exporter.clear()
        assert exporter.events == []


class TestPrometheusTextExporter:
    def test_render_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.counter("blocks.compress").inc(7)
        reg.gauge("level.current").set(2)
        hist = reg.histogram("codec.compress.seconds", buckets=[0.001, 0.01])
        hist.observe(0.0005)
        hist.observe(0.005)
        hist.observe(5.0)
        text = PrometheusTextExporter(reg).render()
        assert "# TYPE blocks_compress counter" in text
        assert "blocks_compress 7.0" in text
        assert "# TYPE level_current gauge" in text
        assert "level_current 2.0" in text
        assert '{le="0.001"} 1' in text
        assert '{le="0.01"} 2' in text
        assert '{le="+Inf"} 3' in text
        assert "codec_compress_seconds_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert PrometheusTextExporter(MetricsRegistry()).render() == ""
