"""Metrics: counters, gauges, histogram percentiles, bounded memory."""

from __future__ import annotations

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("bytes")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge("level")
        g.set(3)
        g.inc()
        g.dec(2)
        assert g.value == 2


class TestHistogram:
    def test_percentiles_against_known_uniform_distribution(self):
        # Uniform 1..100 into decade buckets: every percentile is known
        # exactly, and bucket interpolation must recover it.
        hist = Histogram("u", buckets=[10, 20, 30, 40, 50, 60, 70, 80, 90, 100])
        for v in range(1, 101):
            hist.observe(v)
        assert hist.count == 100
        assert hist.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert hist.percentile(90) == pytest.approx(90.0, abs=1.0)
        assert hist.percentile(99) == pytest.approx(99.0, abs=1.0)
        assert hist.percentile(10) == pytest.approx(10.0, abs=1.0)

    def test_percentile_interpolates_within_bucket(self):
        hist = Histogram("h", buckets=[10, 20])
        for _ in range(10):
            hist.observe(15)  # all samples in the (10, 20] bucket
        # Rank 5 of 10 in a bucket spanning 10..20 -> 15.
        assert hist.percentile(50) == pytest.approx(15.0)

    def test_overflow_bucket_reports_last_bound(self):
        hist = Histogram("h", buckets=[1.0])
        hist.observe(100.0)
        assert hist.percentile(99) == 1.0
        assert hist.count == 1

    def test_mean_and_sum(self):
        hist = Histogram("h", buckets=[10, 100])
        for v in (1, 2, 3):
            hist.observe(v)
        assert hist.sum == 6
        assert hist.mean == pytest.approx(2.0)

    def test_ring_buffer_is_bounded(self):
        hist = Histogram("h", buckets=[1000], ring_size=8)
        for v in range(100):
            hist.observe(float(v))
        recent = hist.recent()
        assert len(recent) == 8
        assert recent == [92.0, 93.0, 94.0, 95.0, 96.0, 97.0, 98.0, 99.0]

    def test_recent_before_wrap(self):
        hist = Histogram("h", buckets=[10], ring_size=8)
        hist.observe(1.0)
        hist.observe(2.0)
        assert hist.recent() == [1.0, 2.0]

    def test_empty_percentile_is_zero(self):
        assert Histogram("h", buckets=[1]).percentile(50) == 0.0

    def test_percentile_validation(self):
        hist = Histogram("h", buckets=[1])
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[1, 1])

    def test_summary_keys(self):
        hist = Histogram("h", buckets=[10])
        hist.observe(5)
        summary = hist.summary()
        assert set(summary) == {"count", "sum", "mean", "p50", "p90", "p99"}


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_plain_data(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=[1, 10]).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1
        json.dumps(snap, allow_nan=False)  # must be JSON-clean

    def test_reset_and_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg
        reg.reset()
        assert reg.names() == []
