"""Telemetry test fixtures: keep the process-wide bus pristine."""

from __future__ import annotations

import time

import pytest

from repro.telemetry.events import BUS


@pytest.fixture(autouse=True)
def clean_default_bus():
    """Reset the default bus (subscribers, counter, clock) around each test."""
    BUS.clear()
    BUS.clock = time.perf_counter
    yield
    BUS.clear()
    BUS.clock = time.perf_counter
