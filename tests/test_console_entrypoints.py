"""Subprocess tests of the installed console entry points."""

from __future__ import annotations

import subprocess
import sys

import pytest


def run_module(args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExperimentsEntrypoint:
    def test_list(self):
        proc = run_module(["repro.experiments", "--list"])
        assert proc.returncode == 0
        ids = proc.stdout.split()
        assert "table2" in ids
        assert "ext-memory" in ids
        assert len(ids) >= 14

    def test_help(self):
        proc = run_module(["repro.experiments", "--help"])
        assert proc.returncode == 0
        assert "--scale" in proc.stdout

    def test_unknown_id_exit_code(self):
        proc = run_module(["repro.experiments", "nonsense"])
        assert proc.returncode == 2
        assert "unknown experiment" in proc.stderr

    def test_tiny_run(self):
        proc = run_module(["repro.experiments", "fig4", "--scale", "0.05"])
        assert proc.returncode == 0
        assert "[OK" in proc.stdout


class TestCompressEntrypoint:
    def test_help(self):
        proc = run_module(["repro.io.cli", "--help"])
        assert proc.returncode == 0
        assert "pack" in proc.stdout
        assert "unpack" in proc.stdout

    def test_pack_unpack_info(self, tmp_path):
        src = tmp_path / "data.bin"
        src.write_bytes(b"entrypoint payload " * 4000)
        packed = tmp_path / "data.abc"
        restored = tmp_path / "data.out"

        proc = run_module(
            ["repro.io.cli", "pack", str(src), str(packed), "--level", "LIGHT"]
        )
        assert proc.returncode == 0, proc.stderr
        assert "ratio" in proc.stdout

        proc = run_module(["repro.io.cli", "info", str(packed)])
        assert proc.returncode == 0
        assert "zlib-1" in proc.stdout

        proc = run_module(["repro.io.cli", "unpack", str(packed), str(restored)])
        assert proc.returncode == 0
        assert restored.read_bytes() == src.read_bytes()
